//! Offline stand-in for `parking_lot`.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's ergonomics —
//! `lock()` / `read()` / `write()` return guards directly, with no
//! poisoning `Result` — implemented over `std::sync`.  A panic while a
//! guard is held simply clears the poison flag on the next access, which
//! matches parking_lot's "no poisoning" semantics closely enough for this
//! workspace's metrics and concurrency wrappers.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_see_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert!(l.try_read().is_some());
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }
}
