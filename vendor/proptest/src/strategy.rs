//! Value-generation strategies: the stand-in for `proptest::strategy`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a fresh value from the case's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.base.new_value(rng))
    }
}

/// Strategy over a type's full value domain, returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generate arbitrary values of `T` (the stand-in for `any::<T>()`).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_map_generate_in_domain() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 100 } else { n });
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }
}
