//! Collection strategies: the stand-in for `proptest::collection`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max_inclusive)
    }
}

/// Strategy for vectors with element strategy `S`, returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generate `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s, returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

/// Generate `BTreeMap`s with `size.pick()` target entries.  Duplicate
/// generated keys collapse, so like upstream proptest the result can be
/// smaller than the target when the key domain is narrow; extra draws are
/// attempted to honour the minimum size where possible.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        let max_attempts = target * 4 + 16;
        while map.len() < target && attempts < max_attempts {
            map.insert(self.keys.new_value(rng), self.values.new_value(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_band() {
        let mut rng = TestRng::seed_from_u64(9);
        let s = vec(any::<u32>(), 3..7);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_hits_target_when_domain_is_wide() {
        let mut rng = TestRng::seed_from_u64(10);
        let s = btree_map(0u32..1_000_000, any::<u32>(), 5..=5);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut rng).len(), 5);
        }
    }
}
