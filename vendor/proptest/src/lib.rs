//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so this vendored crate
//! implements the subset of proptest this workspace uses: the `proptest!`
//! macro, `Strategy` with `prop_map`, `any`, integer-range and tuple
//! strategies, `collection::{vec, btree_map}`, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases` and `TestCaseError`.
//!
//! Differences from the real crate:
//!
//! * **No shrinking.**  A failing case reports the RNG seed that produced
//!   it instead of a minimized input.
//! * **Deterministic by default.**  Case seeds derive from a fixed base
//!   seed, the test's full path, and the case index, so runs are
//!   reproducible; set `PROPTEST_SEED=<u64>` to explore a different part
//!   of the input space.
//! * **Failure persistence** appends `cc <test> <seed>` lines to
//!   `tests/proptest-regressions.txt` under the crate root (override with
//!   `PROPTEST_PERSISTENCE`); persisted seeds re-run first on the next
//!   invocation, like upstream proptest's regression files.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests over generated inputs.
///
/// Supports the upstream form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(xs in proptest::collection::vec(any::<u32>(), 0..100)) {
///         prop_assert!(xs.len() < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($p:pat_param in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $p = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                },
            );
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n  note: {}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l
            )));
        }
    }};
}
