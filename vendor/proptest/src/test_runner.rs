//! Case execution, seeding, and failure persistence.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

/// The RNG handed to strategies: the workspace's deterministic `StdRng`.
pub type TestRng = rand::rngs::StdRng;

/// Runner configuration (the stand-in for `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A property-case failure with a human-readable reason.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the case with `reason`.
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError(reason.to_string())
    }

    /// Alias for [`TestCaseError::fail`], matching upstream's `Fail` variant
    /// constructor usage.
    pub fn reject(reason: impl fmt::Display) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Base seed for deriving per-case seeds: `PROPTEST_SEED` env var if set,
/// otherwise a fixed default so runs are reproducible out of the box.
fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .or_else(|_| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => 0xA5A5_5EED_2026_1CC5,
    }
}

// Thread-local persistence-path override for this crate's own unit tests,
// so they never mutate the process environment (`set_var` racing other
// threads' `getenv` is undefined behaviour on glibc) and never write into
// the repository's regression file.
#[cfg(test)]
thread_local! {
    static TEST_PERSISTENCE_OVERRIDE: std::cell::RefCell<Option<PathBuf>> =
        const { std::cell::RefCell::new(None) };
}

/// Where failing seeds are persisted: `PROPTEST_PERSISTENCE` env var if
/// set, else `tests/proptest-regressions.txt` under the crate manifest
/// (falling back to the crate manifest root when `tests/` does not exist).
fn persistence_path() -> Option<PathBuf> {
    #[cfg(test)]
    if let Some(p) = TEST_PERSISTENCE_OVERRIDE.with(|o| o.borrow().clone()) {
        return Some(p);
    }
    if let Ok(p) = std::env::var("PROPTEST_PERSISTENCE") {
        return Some(PathBuf::from(p));
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let tests_dir = PathBuf::from(&manifest).join("tests");
    Some(if tests_dir.is_dir() {
        tests_dir.join("proptest-regressions.txt")
    } else {
        PathBuf::from(manifest).join("proptest-regressions.txt")
    })
}

/// Seeds previously persisted for `test_name` (lines `cc <name> <seed>`).
fn persisted_seeds(test_name: &str) -> Vec<u64> {
    let Some(path) = persistence_path() else {
        return Vec::new();
    };
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let mut fields = line.split_whitespace();
            (fields.next() == Some("cc") && fields.next() == Some(test_name))
                .then(|| fields.next()?.parse().ok())
                .flatten()
        })
        .collect()
}

fn persist_failure(test_name: &str, seed: u64) {
    let Some(path) = persistence_path() else {
        return;
    };
    if persisted_seeds(test_name).contains(&seed) {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "cc {test_name} {seed}"));
    if let Err(e) = result {
        eprintln!(
            "proptest: could not persist failing seed to {}: {e}",
            path.display()
        );
    }
}

/// FNV-1a over the test path, to decorrelate sibling tests' case seeds.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execute one property: persisted regression seeds first, then
/// `config.cases` fresh cases.  On failure the seed is persisted and the
/// test panics with a reproduction message.  Called by the `proptest!`
/// macro; not intended for direct use.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut run_one: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng as _;

    let base = base_seed();
    let name_hash = hash_name(test_name);

    let regression_seeds = persisted_seeds(test_name);
    let fresh_seeds = (0..config.cases as u64).map(|case| mix(base ^ name_hash ^ mix(case)));

    let total = regression_seeds.len() + config.cases as usize;
    for (i, seed) in regression_seeds.into_iter().chain(fresh_seeds).enumerate() {
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(&mut rng)));
        let reason = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(e)) => e.to_string(),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                format!("panicked: {msg}")
            }
        };
        persist_failure(test_name, seed);
        panic!(
            "property {test_name} failed at case {}/{total} (seed {seed}): {reason}\n\
             reproduce with the persisted seed, or rerun the whole property with \
             PROPTEST_SEED={base}",
            i + 1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runs = 0;
        run_proptest(
            &ProptestConfig::with_cases(10),
            "t::always_passes",
            |_rng| {
                runs += 1;
                Ok(())
            },
        );
        assert_eq!(runs, 10);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        // Keep the intentional failure out of the repo's regression file,
        // without touching the process environment (run_proptest invokes the
        // property — and any persistence — on this same thread).
        TEST_PERSISTENCE_OVERRIDE
            .with(|o| *o.borrow_mut() = Some("/tmp/proptest-stub-selftest.txt".into()));
        let result = std::panic::catch_unwind(|| {
            run_proptest(&ProptestConfig::with_cases(5), "t::always_fails", |rng| {
                let _ = rng.gen::<u32>();
                Err(TestCaseError::fail("nope"))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }

    #[test]
    fn case_seeds_are_deterministic_per_name() {
        let mut first = Vec::new();
        run_proptest(&ProptestConfig::with_cases(3), "t::det", |rng| {
            first.push(rng.gen::<u64>());
            Ok(())
        });
        let mut second = Vec::new();
        run_proptest(&ProptestConfig::with_cases(3), "t::det", |rng| {
            second.push(rng.gen::<u64>());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
