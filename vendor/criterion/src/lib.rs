//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.  Instead of criterion's
//! statistical machinery it runs a short warm-up plus a fixed sample of
//! timed iterations and prints the mean wall-clock time (and throughput,
//! when configured) per benchmark.  Good enough to smoke-test that the
//! bench harness links and runs; not a statistics engine.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured quantity a benchmark reports rates against.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// How `iter_batched` amortizes setup cost; advisory only in this stand-in.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Time `routine` over this bencher's sample budget.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        std::hint::black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is untimed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Shared measurement settings for a group or the top-level criterion.
#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            throughput: None,
        }
    }
}

fn run_benchmark(group: &str, id: &str, settings: &Settings, f: impl FnOnce(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher::new(settings.sample_size.max(1));
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<50} (no timed iterations)");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    let rate = settings.throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:>10.2} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Throughput::Bytes(n) => {
            format!(
                "  {:>10.2} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
    });
    println!("{label:<50} mean {mean:>12.3?}{}", rate.unwrap_or_default());
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this stand-in uses a fixed sample
    /// count rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Report throughput alongside mean time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into().id, &self.settings, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into().id, &self.settings, |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_benchmark("", &id.into().id, &self.settings.clone(), f);
        self
    }

    /// Set the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        assert!(runs >= 2);
        let mut batched = 0;
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter_batched(|| n, |x| batched += x, BatchSize::LargeInput)
        });
        assert!(batched >= 8);
        group.finish();
    }
}
