//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stand-in.  They emit marker-trait impls so `#[derive(Serialize,
//! Deserialize)]` in the workspace compiles without any real serialization
//! machinery (nothing in the workspace serializes through serde yet).

use proc_macro::TokenStream;

/// Extract the bare type identifier a `derive` input declares.
fn derived_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                if let Some(proc_macro::TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match derived_type_name(&input) {
        // Generic types would need bounds; the workspace only derives on
        // plain structs, so a bare impl suffices.
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// Derive the (empty) `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Derive the (empty) `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
