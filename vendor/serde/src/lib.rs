//! Offline stand-in for `serde`.
//!
//! The workspace only *marks* config types as `#[derive(Serialize,
//! Deserialize)]` — nothing serializes through serde yet (reports are
//! written as CSV by hand).  This crate therefore provides empty marker
//! traits plus no-op derive macros, so those annotations compile without
//! network access.  If a future PR needs real serialization, replace this
//! vendored crate with the real one.

#![warn(missing_docs)]

// Let the `::serde::…` paths emitted by the no-op derives resolve inside
// this crate's own tests.
extern crate self as serde;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided — the
/// workspace never names it explicitly).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe {
        _x: u32,
    }

    fn assert_markers<T: super::Serialize + super::Deserialize>() {}

    #[test]
    fn derive_emits_marker_impls() {
        assert_markers::<Probe>();
    }
}
