//! Offline stand-in for `rayon`, with real data parallelism.
//!
//! The build container has no network access, so this vendored crate
//! implements the subset of rayon's parallel-iterator API this workspace
//! uses.  It is not work-stealing: every consumer splits its (always
//! indexed) producer into one contiguous part per available core and runs
//! the parts to completion on a lazily-initialized **persistent worker
//! pool** (see `src/pool.rs`), preserving order when recombining.  For the
//! bulk-synchronous, evenly-tiled kernels of the GPU model this static
//! partitioning is a good fit, and the parked-worker pool keeps the
//! per-call dispatch cost to a queue push and a condvar wake instead of a
//! full `std::thread::scope` spawn/join cycle.
//!
//! Below an **adaptive sequential cutoff** a consumer runs inline: the
//! cutoff is calibrated once per process from the measured pool dispatch
//! overhead versus the measured per-item cost of a representative
//! streaming kernel (see [`sequential_cutoff`]), so small inputs never pay
//! for parallelism that cannot amortize.  Chunked producers report their
//! *element* count as the work estimate (`par_work`), so a slice cut into
//! a handful of large tiles still parallelizes.
//!
//! Supported surface: `par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter` (vectors and `Range<usize>`), the
//! adapters `map`, `enumerate`, `zip`, `copied`, `filter`, and the
//! consumers `for_each`, `collect`, `sum`, `min`, `max`, `count`,
//! `reduce`, plus [`current_num_threads`].

#![warn(missing_docs)]

mod pool;

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of threads a parallel consumer will use (workers plus the
/// participating caller).  Honours `RAYON_NUM_THREADS` when set to a
/// positive integer, like the real rayon.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Number of worker threads the persistent pool has spawned so far (0 until
/// the first above-cutoff consumer call, constant afterwards).  Exposed so
/// tests can assert that repeated consumer calls reuse the same pool.
pub fn pool_thread_count() -> usize {
    pool::spawned_workers()
}

/// Test-only override of the adaptive cutoff: a non-zero value replaces the
/// calibrated cutoff, `0` restores it.  Lets tests force parallel dispatch
/// on small inputs without depending on calibration results.
#[doc(hidden)]
pub fn set_sequential_cutoff(cutoff: usize) {
    CUTOFF_OVERRIDE.store(cutoff, Ordering::Relaxed);
}

static CUTOFF_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The work threshold (in items, as reported by `par_work`) below which a
/// consumer runs sequentially.
///
/// Calibrated once per process: the pool's round-trip dispatch latency is
/// measured directly (empty task sets through the live pool), the per-item
/// cost of a representative streaming kernel (an 8-bit histogram, the
/// radix sort's inner loop) is measured inline, and the cutoff is set where
/// the sequential work would be about four times the dispatch cost — below
/// that, splitting cannot win back its own overhead.  The result is clamped
/// to `[2^11, 2^18]` to stay sane on exotic hosts, and can be pinned with
/// the `LSM_PAR_CUTOFF` environment variable (useful for reproducing
/// measurements).
pub fn sequential_cutoff() -> usize {
    let overridden = CUTOFF_OVERRIDE.load(Ordering::Relaxed);
    if overridden != 0 {
        return overridden;
    }
    static CALIBRATED: OnceLock<usize> = OnceLock::new();
    *CALIBRATED.get_or_init(calibrate_cutoff)
}

/// Measure dispatch overhead vs. per-item work; see [`sequential_cutoff`].
fn calibrate_cutoff() -> usize {
    if let Ok(v) = std::env::var("LSM_PAR_CUTOFF") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    let empty_tasks = || -> Vec<Box<dyn FnOnce() + Send>> {
        (0..current_num_threads())
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send>)
            .collect()
    };
    // First dispatch spawns the workers; keep that out of the measurement.
    pool::global().run_scoped(empty_tasks());
    const ROUNDS: u32 = 16;
    let start = std::time::Instant::now();
    for _ in 0..ROUNDS {
        pool::global().run_scoped(empty_tasks());
    }
    let dispatch_ns = start.elapsed().as_nanos() as f64 / f64::from(ROUNDS);

    // Per-item cost of a histogram-style streaming pass, the cheapest kind
    // of work the sort/scan kernels hand to the pool.
    let keys: Vec<u32> = (0..1u32 << 15)
        .map(|i| i.wrapping_mul(2654435761))
        .collect();
    let mut counts = [0u32; 256];
    let start = std::time::Instant::now();
    for &k in std::hint::black_box(keys.as_slice()) {
        counts[(k & 0xFF) as usize] = counts[(k & 0xFF) as usize].wrapping_add(1);
    }
    std::hint::black_box(&mut counts);
    let per_item_ns = (start.elapsed().as_nanos() as f64 / keys.len() as f64).max(0.05);

    (((4.0 * dispatch_ns) / per_item_ns) as usize).clamp(1 << 11, 1 << 18)
}

/// An indexed parallel iterator: knows its exact length, can split itself
/// into two disjoint halves, and can drain one part sequentially.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator a part drains into.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items this iterator will produce (pre-`filter`).
    fn par_len(&self) -> usize;

    /// Estimated number of underlying *work items*, used only to decide
    /// sequential-vs-parallel against [`sequential_cutoff`].  Defaults to
    /// [`par_len`](Self::par_len); chunked producers override it to report
    /// elements rather than chunks, so a slice split into a few big tiles
    /// still counts its full work.
    fn par_work(&self) -> usize {
        self.par_len()
    }

    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Drain this iterator sequentially.
    fn into_seq(self) -> Self::Seq;

    /// Map each item through `f` (applied in parallel at the consumer).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterate two equal-length parallel iterators in lockstep.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Copy out of references.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Map each item to a sequential iterator and flatten, preserving
    /// order (rayon's `flat_map_iter`).
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> I + Sync + Send + Clone,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Keep only items matching `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send + Clone,
    {
        Filter { base: self, pred }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send + Clone,
    {
        run_parts(self, move |part| part.into_seq().for_each(&f));
    }

    /// Collect all items, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        let parts = run_parts(self, |part| part.into_seq().collect::<Vec<_>>());
        C::from_ordered_parts(parts)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        run_parts(self, |part| part.into_seq().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Minimum item, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_parts(self, |part| part.into_seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_parts(self, |part| part.into_seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Number of items produced (meaningful after `filter`).
    fn count(self) -> usize {
        run_parts(self, |part| part.into_seq().count())
            .into_iter()
            .sum()
    }

    /// Reduce with an identity and an associative operation.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send + Clone,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send + Clone,
    {
        run_parts(self, {
            let op = op.clone();
            let identity = identity.clone();
            move |part| part.into_seq().fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), op)
    }
}

/// Split `iter` into roughly even parts (one per thread), run `f` over each
/// part on the persistent worker pool, and return the per-part results in
/// order.  Runs sequentially when the estimated work is below the adaptive
/// cutoff or when called from a pool worker (nested parallelism).
fn run_parts<P, R, F>(iter: P, f: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync + Send + Clone,
{
    let len = iter.par_len();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 || iter.par_work() < sequential_cutoff() || pool::is_pool_worker() {
        return vec![f(iter)];
    }
    let num_parts = threads.min(len);
    let mut parts = Vec::with_capacity(num_parts);
    let mut rest = iter;
    let mut remaining = len;
    for i in 0..num_parts - 1 {
        let take = remaining / (num_parts - i);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
        remaining -= take;
    }
    parts.push(rest);

    // One result slot per part; each task owns a disjoint `&mut` into the
    // vector, so recombination is by construction in input order.
    let mut slots: Vec<Option<std::thread::Result<R>>> = Vec::new();
    slots.resize_with(num_parts, || None);
    {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
            .into_iter()
            .zip(slots.iter_mut())
            .map(|(part, slot)| {
                let f = f.clone();
                Box::new(move || {
                    *slot = Some(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || f(part),
                    )));
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool::global().run_scoped(tasks);
    }

    // Every slot is filled once run_scoped returns.  Surface results in
    // part order; if any part panicked, rethrow the first payload after all
    // siblings have completed (they have — the latch guarantees it).
    let mut results = Vec::with_capacity(num_parts);
    let mut first_panic = None;
    for slot in slots {
        match slot.expect("pool ran every part to completion") {
            Ok(value) => results.push(value),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    results
}

/// Collections a parallel iterator can be collected into.
pub trait FromParallelIterator<T>: Sized {
    /// Build from in-order per-part sequential results.
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (ParIter(a), ParIter(b))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T>(&'a mut [T]);

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(mid);
        (ParIterMut(a), ParIterMut(b))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

/// Parallel iterator over immutable chunks of a slice.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn par_work(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(cut);
        (
            ParChunks {
                slice: a,
                size: self.size,
            },
            ParChunks {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn par_work(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(cut);
        (
            ParChunksMut {
                slice: a,
                size: self.size,
            },
            ParChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

/// Parallel iterator over an owned `Vec<T>`.
///
/// `split_at` physically partitions with `Vec::split_off`, which copies the
/// tail once per split (one extra serial pass over the data in total).
/// Current call sites only feed small vectors or vectors of thin references,
/// where that memcpy is negligible; if a large owned `Vec` of big elements
/// ever lands on this path, rework this to carry `(Vec, Range)` bounds.
pub struct ParVec<T>(Vec<T>);

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type Seq = std::vec::IntoIter<T>;

    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let mut head = self.0;
        let tail = head.split_off(mid);
        (ParVec(head), ParVec(tail))
    }
    fn into_seq(self) -> Self::Seq {
        self.0.into_iter()
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange(Range<usize>);

impl ParallelIterator for ParRange {
    type Item = usize;
    type Seq = Range<usize>;

    fn par_len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = self.0.start + mid;
        (ParRange(self.0.start..cut), ParRange(cut..self.0.end))
    }
    fn into_seq(self) -> Self::Seq {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Lazy `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync + Send + Clone,
    R: Send,
{
    type Item = R;
    type Seq = std::iter::Map<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_work(&self) -> usize {
        self.base.par_work()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().map(self.f)
    }
}

/// Lazy `enumerate` adapter; `offset` tracks the index of the first item
/// after a split.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = EnumerateSeq<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_work(&self) -> usize {
        self.base.par_work()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + mid,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.base.into_seq(),
            next: self.offset,
        }
    }
}

/// Lazy `zip` adapter over two equal-length parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn par_work(&self) -> usize {
        self.a.par_work().max(self.b.par_work())
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Lazy `copied` adapter.
pub struct Copied<P> {
    base: P,
}

impl<'a, T, P> ParallelIterator for Copied<P>
where
    T: 'a + Copy + Send + Sync,
    P: ParallelIterator<Item = &'a T>,
{
    type Item = T;
    type Seq = std::iter::Copied<P::Seq>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_work(&self) -> usize {
        self.base.par_work()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (Copied { base: a }, Copied { base: b })
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().copied()
    }
}

/// Lazy `flat_map_iter` adapter.  `par_len` reports the outer length,
/// which is only used to balance the split.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, F, I> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> I + Sync + Send + Clone,
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Seq = std::iter::FlatMap<P::Seq, I, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_work(&self) -> usize {
        self.base.par_work()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            FlatMapIter {
                base: a,
                f: self.f.clone(),
            },
            FlatMapIter { base: b, f: self.f },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().flat_map(self.f)
    }
}

/// Lazy `filter` adapter.  `par_len` reports the pre-filter length, which
/// is only used to balance the split — consumers never rely on it as an
/// exact output count.
pub struct Filter<P, F> {
    base: P,
    pred: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send + Clone,
{
    type Item = P::Item;
    type Seq = std::iter::Filter<P::Seq, F>;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn par_work(&self) -> usize {
        self.base.par_work()
    }
    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            Filter {
                base: a,
                pred: self.pred.clone(),
            },
            Filter {
                base: b,
                pred: self.pred,
            },
        )
    }
    fn into_seq(self) -> Self::Seq {
        self.base.into_seq().filter(self.pred)
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `par_iter` on shared references.
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate the collection's elements by shared reference, in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        ParIter(self.as_slice())
    }
}

/// `par_iter_mut` on mutable references.
pub trait IntoParallelRefMutIterator<'a> {
    /// The parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate the collection's elements by mutable reference, in parallel.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        ParIterMut(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        ParIterMut(self.as_mut_slice())
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> Self::Iter {
        ParVec(self)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> Self::Iter {
        ParRange(self)
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> Self::Iter {
        let (start, end) = (*self.start(), *self.end());
        assert!(end < usize::MAX, "inclusive range end too large");
        ParRange(if start > end { 0..0 } else { start..end + 1 })
    }
}

/// `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks (last may be short).
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut { slice: self, size }
    }
}

/// Glob-import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Lock shared by every test that reads or overrides the cutoff.
    fn cutoff_lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serializes tests that override the adaptive cutoff and restores the
    /// calibrated value when dropped (even if the test body panics).
    struct ForcedParallelism(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    impl ForcedParallelism {
        fn new() -> Self {
            let lock = cutoff_lock();
            super::set_sequential_cutoff(1);
            ForcedParallelism(lock)
        }
    }

    impl Drop for ForcedParallelism {
        fn drop(&mut self) {
            super::set_sequential_cutoff(0);
        }
    }

    #[test]
    fn pool_thread_count_stays_constant_across_calls() {
        let _forced = ForcedParallelism::new();
        let v: Vec<u64> = (0..10_000u64).collect();
        let _: u64 = v.par_iter().copied().sum();
        let after_first = super::pool_thread_count();
        assert!(
            after_first > 0 || super::current_num_threads() == 1,
            "a parallel dispatch must have built the pool"
        );
        for _ in 0..16 {
            let _: u64 = v.par_iter().copied().sum();
        }
        assert_eq!(
            super::pool_thread_count(),
            after_first,
            "repeated consumer calls must reuse the persistent pool"
        );
        assert!(after_first < super::current_num_threads().max(2));
    }

    #[test]
    fn panics_propagate_and_leave_the_pool_usable() {
        let _forced = ForcedParallelism::new();
        let v: Vec<u32> = (0..10_000).collect();
        let result = std::panic::catch_unwind(|| {
            v.par_iter().for_each(|&x| {
                if x == 7_777 {
                    panic!("boom at {x}");
                }
            });
        });
        assert!(result.is_err(), "the part's panic must reach the caller");
        // The pool survives a panicking task and still computes correctly.
        let sum: u64 = v.par_iter().map(|&x| u64::from(x)).sum();
        assert_eq!(sum, 9_999 * 10_000 / 2);
    }

    #[test]
    fn collect_preserves_order_under_parallel_dispatch() {
        let _forced = ForcedParallelism::new();
        let v: Vec<u64> = (0..50_000u64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 3).collect();
        assert!(out.iter().enumerate().all(|(i, &x)| x == 3 * i as u64));
    }

    #[test]
    fn nested_consumer_calls_do_not_deadlock() {
        let _forced = ForcedParallelism::new();
        // Outer parallel loop; every iteration runs an inner parallel
        // consumer.  Inner calls on pool workers run inline; inner calls on
        // the helping caller may re-enter the pool.  Either way this must
        // terminate with correct results.
        let totals: Vec<u64> = (0..64usize)
            .into_par_iter()
            .map(|_| (0..1_000usize).into_par_iter().map(|i| i as u64).sum())
            .collect();
        assert_eq!(totals.len(), 64);
        assert!(totals.iter().all(|&t| t == 999 * 1_000 / 2));
    }

    #[test]
    fn calibrated_cutoff_is_within_clamp() {
        let _lock = cutoff_lock();
        let cutoff = super::sequential_cutoff();
        // An explicit LSM_PAR_CUTOFF pin (the forced-parallel CI jobs set 1)
        // bypasses the clamp by design; only the *calibrated* value is
        // required to land inside it.
        if let Some(pinned) = std::env::var("LSM_PAR_CUTOFF")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            assert_eq!(cutoff, pinned, "pinned cutoff must be honoured");
        } else {
            assert!((1 << 11..=1 << 18).contains(&cutoff), "cutoff {cutoff}");
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), v.len());
        assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn enumerate_indices_survive_splits() {
        let v = vec![7u32; 50_000];
        let idx: Vec<usize> = v.par_iter().enumerate().map(|(i, _)| i).collect();
        assert!(idx.iter().enumerate().all(|(i, &j)| i == j));
    }

    #[test]
    fn mutable_iteration_touches_every_element() {
        let mut v = vec![1u32; 30_000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x += i as u32);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 1 + i as u32));
    }

    #[test]
    fn chunks_and_zip() {
        let src: Vec<u32> = (0..40_000).collect();
        let mut dst = vec![0u32; 40_000];
        dst.par_chunks_mut(1024)
            .zip(src.par_chunks(1024))
            .for_each(|(d, s)| d.copy_from_slice(s));
        assert_eq!(dst, src);
    }

    #[test]
    fn sum_min_max_filter_count() {
        let v: Vec<u64> = (1..=100_000u64).collect();
        assert_eq!(
            v.par_iter().map(|&x| x).sum::<u64>(),
            100_000u64 * 100_001 / 2
        );
        assert_eq!(v.par_iter().copied().min(), Some(1));
        assert_eq!(v.par_iter().copied().max(), Some(100_000));
        assert_eq!(v.par_iter().filter(|&&x| x % 2 == 0).count(), 50_000);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * i).collect();
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn small_inputs_run_sequentially_and_correctly() {
        let v = vec![3u32, 1, 2];
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(
            empty.par_iter().map(|&x| x).collect::<Vec<_>>(),
            Vec::<u32>::new()
        );
    }
}
