//! The persistent worker pool behind every parallel consumer.
//!
//! The first above-cutoff consumer call lazily spawns `current_num_threads()
//! - 1` workers that park on a condvar; every later call only pays a queue
//! push and a wake-up (a few microseconds) instead of a full
//! `std::thread::scope` spawn/join cycle (tens of microseconds per call).
//!
//! Execution model, in the order the guarantees matter:
//!
//! * **Scoped borrows.**  [`WorkerPool::run_scoped`] accepts closures that
//!   borrow from the caller's stack.  Their lifetimes are erased before
//!   queueing, which is sound because the call does not return — not even by
//!   unwinding — until every queued task has finished (a completion latch,
//!   waited on from a drop guard).
//! * **Caller participation.**  The calling thread runs the first task
//!   itself and then helps drain the queue while it waits, so a dispatch
//!   never idles the caller and the pool needs one thread fewer than the
//!   target parallelism.
//! * **Panic containment.**  A panic inside a task is caught before it can
//!   kill a worker; the latch still completes (drop guard), and the caller
//!   (see `run_parts` in the crate root) rethrows the first payload after
//!   all sibling tasks have finished.
//! * **Nested calls.**  A task that itself invokes a parallel consumer runs
//!   that consumer sequentially ([`is_pool_worker`]), so workers never block
//!   waiting on other workers and the pool cannot deadlock on itself.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the submitting threads and the workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

/// Counts completed tasks of one `run_scoped` call and wakes the caller
/// when all of them are done.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        let mut remaining = lock(&self.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *lock(&self.remaining) == 0
    }

    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Completes a latch even when the guarded task panics, so a caller waiting
/// in [`WorkerPool::run_scoped`] can never be left hanging.
struct CompleteOnDrop(Arc<Latch>);

impl Drop for CompleteOnDrop {
    fn drop(&mut self) {
        self.0.complete_one();
    }
}

/// Lock a mutex, ignoring poisoning: the pool's own tasks catch panics
/// before they can unwind through a locked region, and the queue/latch state
/// stays consistent either way.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is one of the pool's workers.  Parallel
/// consumers invoked from a worker run sequentially instead of re-entering
/// the pool, which keeps nested calls deadlock-free.
pub(crate) fn is_pool_worker() -> bool {
    IS_POOL_WORKER.with(|flag| flag.get())
}

/// Total number of worker threads ever spawned by this process's pool.
/// Exposed (via [`crate::pool_thread_count`]) so tests can assert the pool
/// is persistent: the count must not grow with repeated consumer calls.
static SPAWNED_WORKERS: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn spawned_workers() -> usize {
    SPAWNED_WORKERS.load(Ordering::Relaxed)
}

/// The process-wide persistent pool.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The lazily-initialized global pool.
pub(crate) fn global() -> &'static WorkerPool {
    POOL.get_or_init(|| {
        // The caller participates in every dispatch, so `threads - 1`
        // workers give `threads`-way parallelism.
        WorkerPool::new(crate::current_num_threads().saturating_sub(1).max(1))
    })
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            // Count on the spawning thread, not inside the worker: readers
            // of `spawned_workers()` must see the final count as soon as
            // `new` returns, not whenever the OS schedules each thread.
            SPAWNED_WORKERS.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("lsm-par-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    worker_loop(&shared);
                })
                .expect("spawn pool worker");
        }
        WorkerPool { shared }
    }

    /// Run every task to completion, using the pool for all but the first
    /// task (which the caller runs itself).  Returns only after every task
    /// has finished, even if one of them panics — which is what makes the
    /// lifetime erasure below sound.
    pub(crate) fn run_scoped<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        let Some(queued) = tasks.len().checked_sub(1) else {
            return;
        };
        let latch = Arc::new(Latch::new(queued));
        let mut tasks = tasks.into_iter();
        let first = tasks.next().expect("non-empty task list");
        {
            let mut queue = lock(&self.shared.queue);
            for task in tasks {
                // SAFETY: the wait guard below blocks this call (on the
                // normal path and during unwinding alike) until the latch
                // reports every queued task finished, so the borrows inside
                // `task` strictly outlive its execution.
                let task: Job = unsafe { erase_lifetime(task) };
                let complete = CompleteOnDrop(Arc::clone(&latch));
                queue.push_back(Box::new(move || {
                    let _complete = complete;
                    task();
                }));
            }
        }
        self.shared.job_ready.notify_all();

        // Wait via a drop guard so that an unwinding first task still
        // blocks until the queue has drained our scope.
        let _wait = WaitScope {
            latch: &latch,
            shared: &self.shared,
        };
        first();
    }
}

/// Erase a scoped task's lifetime for queueing.  Callers must guarantee the
/// task finishes before the scope ends (see [`WorkerPool::run_scoped`]).
unsafe fn erase_lifetime<'scope>(
    task: Box<dyn FnOnce() + Send + 'scope>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
        task,
    )
}

/// Help-then-wait guard: on drop, the caller drains queued jobs (its own or
/// other scopes') until its latch completes, then parks on the latch.
struct WaitScope<'a> {
    latch: &'a Latch,
    shared: &'a Shared,
}

impl Drop for WaitScope<'_> {
    fn drop(&mut self) {
        while !self.latch.is_done() {
            let job = lock(&self.shared.queue).pop_front();
            match job {
                // Panics are contained exactly as in `worker_loop`; the
                // payload (if any) is carried through the task's own slot.
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => {
                    self.latch.wait();
                    break;
                }
            }
        }
    }
}

/// A worker: pop a job or park until one arrives.  Workers live for the
/// rest of the process; there is deliberately no shutdown path, since the
/// pool is a process-wide singleton.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // Contain panics: the task wrapper (run_parts) records the payload
        // in its result slot, and `CompleteOnDrop` keeps the latch honest,
        // so the worker itself must survive to serve the next caller.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}
