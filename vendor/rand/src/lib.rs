//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so this vendored crate
//! provides the subset of the `rand` 0.8 API this workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64 feeding xoshiro256++ — deterministic, fast,
//! and statistically strong enough for workload generation and tests.  It
//! is **not** the same stream as the real `rand::rngs::StdRng` (ChaCha12),
//! so seeds produce different sequences than upstream `rand`; everything in
//! this repository only relies on determinism, not on a particular stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it into a full seed state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain by
/// [`Rng::gen`] (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling, mirroring `rand::distributions::
/// uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform sampling of an unsigned span without modulo bias (Lemire's
/// multiply-shift rejection method over 64-bit words).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject the final partial block to keep the distribution exactly uniform.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly from its full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Fill a mutable byte/word buffer with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// Convenience re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn ranges_cover_endpoints_eventually() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
