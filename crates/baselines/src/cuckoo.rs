//! Bulk-built cuckoo hash table (Alcantara et al. (reference \[5\] of the paper), as packaged in CUDPP
//! and used by the paper as its hash-table baseline).
//!
//! The table stores each occupied slot as a packed 64-bit word
//! (`key << 32 | value`) so that the GPU build's atomic-exchange eviction
//! chains can be reproduced exactly with `AtomicU64::swap`: every element is
//! inserted by a thread that repeatedly swaps itself into one of its `H`
//! candidate slots and re-inserts whatever it evicted, bouncing between hash
//! functions until it lands in an empty slot or the chain exceeds the
//! iteration limit (in which case the whole build restarts with new hash
//! seeds, exactly like the original).
//!
//! As in the paper, the table supports **bulk build and lookup only** — no
//! deletion, no growth, no count/range — which is the trade-off Table I
//! summarises.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

/// Sentinel for an empty slot (no valid key can be `u32::MAX`, keys are
/// 31-bit as in the LSM).
const EMPTY: u64 = u64::MAX;

/// Number of hash functions, as in the CUDPP implementation.
const NUM_HASHES: usize = 4;

/// Maximum eviction-chain length before the build is declared failed and
/// restarted with fresh hash seeds.
const MAX_CHAIN: usize = 200;

/// Build-time configuration for the cuckoo table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuckooConfig {
    /// Target load factor (occupied fraction); the paper uses 0.8.
    pub load_factor: f64,
    /// Maximum number of whole-table rebuild attempts.
    pub max_rebuilds: usize,
    /// Seed for the hash-function constants.
    pub seed: u64,
}

impl Default for CuckooConfig {
    fn default() -> Self {
        CuckooConfig {
            load_factor: 0.8,
            max_rebuilds: 16,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// A bulk-built cuckoo hash table mapping 31-bit keys to 32-bit values.
#[derive(Debug)]
pub struct CuckooHashTable {
    device: Arc<Device>,
    slots: Vec<u64>,
    hash_consts: [(u32, u32); NUM_HASHES],
    num_elements: usize,
}

#[inline]
fn pack(key: u32, value: u32) -> u64 {
    ((key as u64) << 32) | value as u64
}

#[inline]
fn unpack(slot: u64) -> (u32, u32) {
    ((slot >> 32) as u32, slot as u32)
}

#[inline]
fn hash(consts: (u32, u32), key: u32, table_size: usize) -> usize {
    // Multiply-shift universal hashing (the CUDPP constants are random odd
    // multipliers); 64-bit arithmetic avoids overflow.
    let (a, b) = consts;
    let h = (a as u64).wrapping_mul(key as u64).wrapping_add(b as u64);
    ((h >> 16) % table_size as u64) as usize
}

impl CuckooHashTable {
    /// Bulk-build a table from key–value pairs with the default 80 % load
    /// factor.  Keys must be distinct (the paper's build workloads are).
    pub fn bulk_build(device: Arc<Device>, pairs: &[(u32, u32)]) -> Self {
        Self::bulk_build_with(device, pairs, CuckooConfig::default())
    }

    /// Bulk-build with an explicit configuration.
    pub fn bulk_build_with(
        device: Arc<Device>,
        pairs: &[(u32, u32)],
        config: CuckooConfig,
    ) -> Self {
        assert!(
            config.load_factor > 0.0 && config.load_factor < 1.0,
            "load factor must be in (0, 1)"
        );
        let table_size =
            ((pairs.len() as f64 / config.load_factor).ceil() as usize).max(NUM_HASHES * 2);
        let kernel = "cuckoo_build";
        device.metrics().record_launch(kernel);
        device
            .metrics()
            .record_read(kernel, (pairs.len() * 8) as u64, AccessPattern::Coalesced);

        let seed = config.seed;
        for attempt in 0..config.max_rebuilds {
            let hash_consts = Self::derive_hash_consts(seed.wrapping_add(attempt as u64));
            let slots: Vec<AtomicU64> = (0..table_size).map(|_| AtomicU64::new(EMPTY)).collect();
            let failed = AtomicBool::new(false);

            // Parallel build: each element follows its own eviction chain.
            // Every swap is a scattered global-memory transaction.
            device.metrics().record_scattered_probes(
                kernel,
                pairs.len() as u64 * 2,
                std::mem::size_of::<u64>() as u64,
            );
            device.timer().time("cuckoo::build_attempt", || {
                pairs.par_iter().for_each(|&(key, value)| {
                    if failed.load(Ordering::Relaxed) {
                        return;
                    }
                    let mut current = pack(key, value);
                    let mut h_index = 0usize;
                    for _ in 0..MAX_CHAIN {
                        let (k, _) = unpack(current);
                        let slot = hash(hash_consts[h_index], k, table_size);
                        let prev = slots[slot].swap(current, Ordering::Relaxed);
                        if prev == EMPTY {
                            return;
                        }
                        // We evicted `prev`: re-insert it with its next hash
                        // function (cycle through all of them).
                        let (pk, _) = unpack(prev);
                        let came_from = (0..NUM_HASHES)
                            .position(|i| hash(hash_consts[i], pk, table_size) == slot)
                            .unwrap_or(0);
                        h_index = (came_from + 1) % NUM_HASHES;
                        current = prev;
                    }
                    failed.store(true, Ordering::Relaxed);
                });
            });

            if !failed.load(Ordering::Relaxed) {
                return CuckooHashTable {
                    device,
                    slots: slots.into_iter().map(|s| s.into_inner()).collect(),
                    hash_consts,
                    num_elements: pairs.len(),
                };
            }
        }
        panic!(
            "cuckoo build failed after {} rebuild attempts (n = {}, table = {})",
            config.max_rebuilds,
            pairs.len(),
            table_size
        );
    }

    fn derive_hash_consts(seed: u64) -> [(u32, u32); NUM_HASHES] {
        // SplitMix64-style constant derivation; multipliers forced odd.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut consts = [(0u32, 0u32); NUM_HASHES];
        for c in consts.iter_mut() {
            *c = ((next() as u32) | 1, next() as u32);
        }
        consts
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.num_elements
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.num_elements == 0
    }

    /// Number of slots (capacity).
    pub fn table_size(&self) -> usize {
        self.slots.len()
    }

    /// Achieved load factor.
    pub fn load_factor(&self) -> f64 {
        self.num_elements as f64 / self.slots.len() as f64
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u64>()
    }

    /// Bulk lookup: each query probes at most `NUM_HASHES` slots.
    pub fn lookup(&self, queries: &[u32]) -> Vec<Option<u32>> {
        let kernel = "cuckoo_lookup";
        self.device.metrics().record_launch(kernel);
        self.device.metrics().record_read(
            kernel,
            (queries.len() * 4) as u64,
            AccessPattern::Coalesced,
        );
        self.device.metrics().record_scattered_probes(
            kernel,
            queries.len() as u64 * NUM_HASHES as u64 / 2,
            std::mem::size_of::<u64>() as u64,
        );
        self.device.timer().time("cuckoo::lookup", || {
            queries.par_iter().map(|&q| self.lookup_one(q)).collect()
        })
    }

    /// Look up a single key.
    pub fn lookup_one(&self, key: u32) -> Option<u32> {
        for consts in &self.hash_consts {
            let slot = self.slots[hash(*consts, key, self.slots.len())];
            if slot != EMPTY {
                let (k, v) = unpack(slot);
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn builds_and_finds_all_keys() {
        let pairs: Vec<(u32, u32)> = (0..10_000u32).map(|k| (k * 3, k)).collect();
        let table = CuckooHashTable::bulk_build(device(), &pairs);
        assert_eq!(table.len(), pairs.len());
        let queries: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let results = table.lookup(&queries);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, Some(pairs[i].1), "key {}", pairs[i].0);
        }
    }

    #[test]
    fn misses_absent_keys() {
        let pairs: Vec<(u32, u32)> = (0..1000u32).map(|k| (k * 2, k)).collect();
        let table = CuckooHashTable::bulk_build(device(), &pairs);
        let absent: Vec<u32> = (0..1000u32).map(|k| k * 2 + 1).collect();
        assert!(table.lookup(&absent).iter().all(|r| r.is_none()));
    }

    #[test]
    fn respects_load_factor() {
        let pairs: Vec<(u32, u32)> = (0..8000u32).map(|k| (k, k)).collect();
        let table = CuckooHashTable::bulk_build_with(
            device(),
            &pairs,
            CuckooConfig {
                load_factor: 0.5,
                ..CuckooConfig::default()
            },
        );
        assert!(table.table_size() >= 16_000);
        assert!(table.load_factor() <= 0.5 + 1e-9);
        assert!(table.memory_bytes() >= 16_000 * 8);
    }

    #[test]
    fn empty_build_and_lookup() {
        let table = CuckooHashTable::bulk_build(device(), &[]);
        assert!(table.is_empty());
        assert_eq!(table.lookup(&[1, 2, 3]), vec![None, None, None]);
    }

    #[test]
    fn high_load_factor_still_builds() {
        // 0.8 load factor with 4 hash functions should always succeed.
        let pairs: Vec<(u32, u32)> = (0..50_000u32).map(|k| (k * 7 + 1, k)).collect();
        let table = CuckooHashTable::bulk_build(device(), &pairs);
        assert_eq!(table.lookup_one(8), Some(1));
        assert_eq!(table.lookup_one(9), None);
        assert!((table.load_factor() - 0.8).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn invalid_load_factor_panics() {
        let _ = CuckooHashTable::bulk_build_with(
            device(),
            &[(1, 1)],
            CuckooConfig {
                load_factor: 1.5,
                ..CuckooConfig::default()
            },
        );
    }
}
