//! # gpu-baselines — the comparison data structures from the paper's
//! evaluation
//!
//! The GPU LSM paper compares against two immutable GPU data structures
//! (§V-A, Table I):
//!
//! * the **GPU sorted array (GPU SA)** — a single sorted level; insertion
//!   sorts the new batch and merges it with the *entire* array (O(n) work
//!   per batch), deletions remove elements and compact, and all queries are
//!   binary searches over one level ([`SortedArray`]);
//! * a **cuckoo hash table** — bulk build and O(1) lookups, but no deletion,
//!   no growth, and no ordered queries ([`CuckooHashTable`]).
//!
//! Both are implemented on the same [`gpu_sim`]/[`gpu_primitives`] substrate
//! as the LSM so that throughput comparisons measure the algorithms, not the
//! plumbing.

#![warn(missing_docs)]

pub mod cuckoo;
pub mod sorted_array;

pub use cuckoo::{CuckooConfig, CuckooHashTable};
pub use sorted_array::SortedArray;
