//! The GPU sorted array (GPU SA) baseline.
//!
//! A single sorted level holding every element.  Bulk build is one radix
//! sort; inserting a batch sorts the batch and merges it with the whole
//! array (so the per-batch cost grows linearly with `n`, the behaviour
//! Table II and Fig. 4b contrast with the LSM); deleting removes every
//! matching element with a flagged compaction.  Queries are the LSM's
//! queries restricted to one level, which is why they are somewhat faster
//! (Table III/IV): a single `O(log n)` search instead of one per occupied
//! level.
//!
//! Like the LSM, replaced keys are shadowed rather than overwritten on
//! insert (the newer element sorts first among equal keys), so lookups
//! return the newest value; count and range queries skip older duplicates
//! while scanning their candidate ranges.

use std::sync::Arc;

use gpu_primitives::compact::compact_pairs_by_flag;
use gpu_primitives::merge::merge_pairs_by;
use gpu_primitives::radix_sort::sort_pairs;
use gpu_primitives::search::{lower_bound_by, upper_bound_by};
use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

/// Maximum representable key (31 bits, matching the LSM's key domain).
pub const MAX_KEY: u32 = (1 << 31) - 1;

/// A GPU-maintained sorted array of key–value pairs.
#[derive(Debug, Clone)]
pub struct SortedArray {
    device: Arc<Device>,
    /// Original keys, ascending; equal keys ordered newest-first.
    keys: Vec<u32>,
    values: Vec<u32>,
}

impl SortedArray {
    /// Create an empty sorted array.
    pub fn new(device: Arc<Device>) -> Self {
        SortedArray {
            device,
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Bulk-build from arbitrary pairs with one radix sort (§V-B).
    pub fn bulk_build(device: Arc<Device>, pairs: &[(u32, u32)]) -> Self {
        let mut keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let mut values: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        sort_pairs(&device, &mut keys, &mut values);
        SortedArray {
            device,
            keys,
            values,
        }
    }

    /// Number of resident elements (including shadowed duplicates).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The modelled device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.keys.len() + self.values.len()) * std::mem::size_of::<u32>()
    }

    /// Insert a batch: sort it, then merge it with the entire array.  The
    /// new batch wins ties so its elements shadow older instances of the
    /// same key.
    pub fn insert_batch(&mut self, pairs: &[(u32, u32)]) {
        if pairs.is_empty() {
            return;
        }
        let mut batch_keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        let mut batch_values: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        self.device.timer().time("sa::sort_batch", || {
            sort_pairs(&self.device, &mut batch_keys, &mut batch_values);
        });
        let (keys, values) = self.device.timer().time("sa::merge_all", || {
            merge_pairs_by(
                &self.device,
                &batch_keys,
                &batch_values,
                &self.keys,
                &self.values,
                |a, b| a < b,
            )
        });
        self.keys = keys;
        self.values = values;
    }

    /// Insert a batch by fully re-sorting the array instead of merging —
    /// the "resort the whole data structure" alternative the paper mentions;
    /// used by the ablation benchmarks.
    pub fn insert_batch_resort(&mut self, pairs: &[(u32, u32)]) {
        self.keys.extend(pairs.iter().map(|&(k, _)| k));
        self.values.extend(pairs.iter().map(|&(_, v)| v));
        self.device.timer().time("sa::resort_all", || {
            sort_pairs(&self.device, &mut self.keys, &mut self.values);
        });
    }

    /// Delete every element whose key appears in `keys_to_delete`
    /// (flag + compact over the whole array).
    pub fn delete_batch(&mut self, keys_to_delete: &[u32]) {
        if keys_to_delete.is_empty() || self.is_empty() {
            return;
        }
        let mut sorted_deletes = keys_to_delete.to_vec();
        gpu_primitives::radix_sort::sort_keys(&self.device, &mut sorted_deletes);
        let keep_flags: Vec<bool> = self
            .keys
            .par_iter()
            .map(|k| {
                let idx = lower_bound_by(&sorted_deletes, k, |a, b| a < b);
                !(idx < sorted_deletes.len() && sorted_deletes[idx] == *k)
            })
            .collect();
        self.device.metrics().record_scattered_probes(
            "sa::delete_search",
            self.keys.len() as u64 * (usize::BITS - sorted_deletes.len().leading_zeros()) as u64,
            4,
        );
        let (keys, values) =
            compact_pairs_by_flag(&self.device, &self.keys, &self.values, &keep_flags);
        self.keys = keys;
        self.values = values;
    }

    /// Point lookups: one binary search per query, in parallel.
    pub fn lookup(&self, queries: &[u32]) -> Vec<Option<u32>> {
        let kernel = "sa_lookup";
        self.device.metrics().record_launch(kernel);
        self.device.metrics().record_read(
            kernel,
            (queries.len() * 4) as u64,
            AccessPattern::Coalesced,
        );
        self.device.metrics().record_scattered_probes(
            kernel,
            queries.len() as u64 * (usize::BITS - self.keys.len().leading_zeros()) as u64,
            4,
        );
        self.device.timer().time("sa::lookup", || {
            queries
                .par_iter()
                .map(|&q| {
                    let idx = lower_bound_by(&self.keys, &q, |a, b| a < b);
                    if idx < self.keys.len() && self.keys[idx] == q {
                        Some(self.values[idx])
                    } else {
                        None
                    }
                })
                .collect()
        })
    }

    /// Count queries: distinct keys in `[k1, k2]` per query.
    pub fn count(&self, queries: &[(u32, u32)]) -> Vec<u32> {
        let kernel = "sa_count";
        self.device.metrics().record_launch(kernel);
        self.device.metrics().record_scattered_probes(
            kernel,
            queries.len() as u64 * 2 * (usize::BITS - self.keys.len().leading_zeros()) as u64,
            4,
        );
        self.device.timer().time("sa::count", || {
            queries
                .par_iter()
                .map(|&(k1, k2)| {
                    let lo = lower_bound_by(&self.keys, &k1, |a, b| a < b);
                    let hi = upper_bound_by(&self.keys, &k2, |a, b| a < b);
                    // Count distinct keys in the candidate range (duplicates
                    // from shadowed insertions are skipped).
                    let mut count = 0u32;
                    let mut i = lo;
                    while i < hi {
                        count += 1;
                        let key = self.keys[i];
                        i += 1;
                        while i < hi && self.keys[i] == key {
                            i += 1;
                        }
                    }
                    count
                })
                .collect()
        })
    }

    /// Range queries: all distinct keys in `[k1, k2]` with their newest
    /// values, per query.  Returns per-query offsets plus flat key/value
    /// arrays (the same layout as the LSM's `RangeResult`).
    pub fn range(&self, queries: &[(u32, u32)]) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
        let kernel = "sa_range";
        self.device.metrics().record_launch(kernel);
        self.device.metrics().record_scattered_probes(
            kernel,
            queries.len() as u64 * 2 * (usize::BITS - self.keys.len().leading_zeros()) as u64,
            4,
        );
        let per_query: Vec<(Vec<u32>, Vec<u32>)> = self.device.timer().time("sa::range", || {
            queries
                .par_iter()
                .map(|&(k1, k2)| {
                    let lo = lower_bound_by(&self.keys, &k1, |a, b| a < b);
                    let hi = upper_bound_by(&self.keys, &k2, |a, b| a < b);
                    let mut keys = Vec::new();
                    let mut values = Vec::new();
                    let mut i = lo;
                    while i < hi {
                        let key = self.keys[i];
                        keys.push(key);
                        values.push(self.values[i]);
                        i += 1;
                        while i < hi && self.keys[i] == key {
                            i += 1;
                        }
                    }
                    (keys, values)
                })
                .collect()
        });
        let total: usize = per_query.iter().map(|(k, _)| k.len()).sum();
        self.device
            .metrics()
            .record_write(kernel, (total * 8) as u64, AccessPattern::Coalesced);
        let mut offsets = Vec::with_capacity(queries.len() + 1);
        let mut keys = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        offsets.push(0);
        for (k, v) in per_query {
            keys.extend_from_slice(&k);
            values.extend_from_slice(&v);
            offsets.push(keys.len());
        }
        (offsets, keys, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn bulk_build_sorts_pairs() {
        let sa = SortedArray::bulk_build(device(), &[(5, 50), (1, 10), (3, 30)]);
        assert_eq!(sa.len(), 3);
        assert_eq!(
            sa.lookup(&[1, 3, 5, 7]),
            vec![Some(10), Some(30), Some(50), None]
        );
        assert!(sa.memory_bytes() > 0);
    }

    #[test]
    fn insert_batch_merges_and_newest_wins() {
        let mut sa = SortedArray::bulk_build(device(), &[(1, 10), (2, 20), (3, 30)]);
        sa.insert_batch(&[(2, 21), (4, 40)]);
        assert_eq!(sa.len(), 5); // duplicate 2 is shadowed, not removed
        assert_eq!(sa.lookup(&[2, 4]), vec![Some(21), Some(40)]);
        assert_eq!(sa.count(&[(1, 4)]), vec![4]);
    }

    #[test]
    fn insert_batch_resort_matches_merge_semantics() {
        let mut a = SortedArray::bulk_build(device(), &[(1, 10), (5, 50)]);
        let mut b = a.clone();
        a.insert_batch(&[(3, 30)]);
        b.insert_batch_resort(&[(3, 30)]);
        assert_eq!(a.lookup(&[1, 3, 5]), b.lookup(&[1, 3, 5]));
    }

    #[test]
    fn delete_batch_removes_all_instances() {
        let mut sa = SortedArray::bulk_build(device(), &[(1, 10), (2, 20), (3, 30)]);
        sa.insert_batch(&[(2, 21)]);
        sa.delete_batch(&[2, 3]);
        assert_eq!(sa.len(), 1);
        assert_eq!(sa.lookup(&[1, 2, 3]), vec![Some(10), None, None]);
        assert_eq!(sa.count(&[(0, 10)]), vec![1]);
    }

    #[test]
    fn empty_array_queries() {
        let sa = SortedArray::new(device());
        assert!(sa.is_empty());
        assert_eq!(sa.lookup(&[1]), vec![None]);
        assert_eq!(sa.count(&[(0, 10)]), vec![0]);
        let (offsets, keys, _) = sa.range(&[(0, 10)]);
        assert_eq!(offsets, vec![0, 0]);
        assert!(keys.is_empty());
    }

    #[test]
    fn range_returns_sorted_distinct_pairs() {
        let mut sa =
            SortedArray::bulk_build(device(), &(0..100u32).map(|k| (k, k)).collect::<Vec<_>>());
        sa.insert_batch(&[(50, 999)]);
        let (offsets, keys, values) = sa.range(&[(45, 55), (90, 200)]);
        assert_eq!(offsets, vec![0, 11, 21]);
        assert_eq!(keys[..11].to_vec(), (45..=55).collect::<Vec<u32>>());
        assert_eq!(values[5], 999); // newest value for key 50
        assert_eq!(keys[11..].to_vec(), (90..100).collect::<Vec<u32>>());
    }

    #[test]
    fn large_build_and_query_roundtrip() {
        let pairs: Vec<(u32, u32)> = (0..50_000u32).map(|k| (k * 2, k)).collect();
        let sa = SortedArray::bulk_build(device(), &pairs);
        assert_eq!(
            sa.lookup(&[0, 2, 99_998]),
            vec![Some(0), Some(1), Some(49_999)]
        );
        assert_eq!(sa.count(&[(0, 99_998)]), vec![50_000]);
    }
}
