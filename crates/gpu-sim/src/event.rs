//! Phase timers: CUDA-event style wall-clock timing of named phases.
//!
//! The experiment harness needs to measure sub-operations (sort, merge
//! chain, validation) as well as whole operations, the same way CUDA events
//! bracket kernel sequences.  [`PhaseTimer`] accumulates wall-clock time per
//! named phase; repeated phases are summed and counted.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Accumulated statistics for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Total accumulated duration.
    pub total: Duration,
    /// Number of times the phase was recorded.
    pub count: u64,
}

impl PhaseStats {
    /// Mean duration per occurrence (zero if never recorded).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Accumulates wall-clock time for named phases.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Mutex<BTreeMap<String, PhaseStats>>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f` and add the elapsed duration to `phase`.
    pub fn time<R>(&self, phase: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(phase, start.elapsed());
        result
    }

    /// Record an externally measured duration for `phase`.
    pub fn record(&self, phase: &str, elapsed: Duration) {
        let mut phases = self.phases.lock();
        let entry = phases.entry(phase.to_string()).or_default();
        entry.total += elapsed;
        entry.count += 1;
    }

    /// Stats for a single phase, if it was ever recorded.
    pub fn stats(&self, phase: &str) -> Option<PhaseStats> {
        self.phases.lock().get(phase).copied()
    }

    /// Snapshot of every phase.
    pub fn snapshot(&self) -> BTreeMap<String, PhaseStats> {
        self.phases.lock().clone()
    }

    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.phases.lock().values().map(|s| s.total).sum()
    }

    /// Clear all recorded phases.
    pub fn reset(&self) {
        self.phases.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_phase() {
        let timer = PhaseTimer::new();
        let out = timer.time("work", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        let stats = timer.stats("work").unwrap();
        assert_eq!(stats.count, 1);
        assert!(stats.total >= Duration::from_millis(4));
    }

    #[test]
    fn repeated_phases_accumulate() {
        let timer = PhaseTimer::new();
        timer.record("sort", Duration::from_millis(10));
        timer.record("sort", Duration::from_millis(30));
        let stats = timer.stats("sort").unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total, Duration::from_millis(40));
        assert_eq!(stats.mean(), Duration::from_millis(20));
    }

    #[test]
    fn total_sums_all_phases() {
        let timer = PhaseTimer::new();
        timer.record("a", Duration::from_millis(1));
        timer.record("b", Duration::from_millis(2));
        assert_eq!(timer.total(), Duration::from_millis(3));
    }

    #[test]
    fn unknown_phase_is_none_and_reset_clears() {
        let timer = PhaseTimer::new();
        assert!(timer.stats("nothing").is_none());
        timer.record("x", Duration::from_millis(1));
        timer.reset();
        assert!(timer.snapshot().is_empty());
    }

    #[test]
    fn mean_of_empty_stats_is_zero() {
        assert_eq!(PhaseStats::default().mean(), Duration::ZERO);
    }
}
