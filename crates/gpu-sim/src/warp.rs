//! Warp-wide cooperative primitives.
//!
//! NVIDIA GPUs execute threads in SIMD groups of 32 ("warps") and expose
//! fast intra-warp communication: `__ballot`, `__any`, `__all`, shuffles and
//! warp scans.  The paper uses warp-wide ballots in the final validation
//! stage of count/range queries (§IV-C stage 5) and the two-bucket
//! multisplit (reference \[20\]) builds on ballot + population count.
//!
//! Here a *warp* is modelled as a group of `WARP_SIZE` lanes whose per-lane
//! values are materialised in small stack arrays; the cooperative operations
//! are then ordinary bit manipulation.  This keeps the lockstep semantics
//! (every lane sees the same ballot result) without simulating divergence.

/// Number of lanes in a warp on all modelled devices.
pub const WARP_SIZE: usize = 32;

/// Warp-wide operations over a group of at most [`WARP_SIZE`] lanes.
///
/// Lanes beyond the provided slice length behave as inactive (they contribute
/// `0`/`false`), matching how a partially filled warp behaves under a
/// predicated ballot.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarpOps;

impl WarpOps {
    /// `__ballot`: a bitmask with bit `i` set iff lane `i`'s predicate holds.
    pub fn ballot(predicates: &[bool]) -> u32 {
        debug_assert!(predicates.len() <= WARP_SIZE);
        predicates.iter().enumerate().fold(
            0u32,
            |mask, (lane, &p)| if p { mask | (1 << lane) } else { mask },
        )
    }

    /// `__any`: true iff any active lane's predicate holds.
    pub fn any(predicates: &[bool]) -> bool {
        Self::ballot(predicates) != 0
    }

    /// `__all`: true iff every active lane's predicate holds.
    pub fn all(predicates: &[bool]) -> bool {
        let active = if predicates.len() >= WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << predicates.len()) - 1
        };
        Self::ballot(predicates) == active && !predicates.is_empty()
    }

    /// Population count of a ballot mask restricted to lanes strictly below
    /// `lane` — the classic "rank within warp" idiom used by multisplit:
    /// a lane's output offset is the number of earlier lanes whose predicate
    /// also held.
    pub fn rank_below(ballot: u32, lane: usize) -> u32 {
        debug_assert!(lane <= WARP_SIZE);
        let mask = if lane == 0 { 0 } else { (1u64 << lane) - 1 } as u32;
        (ballot & mask).count_ones()
    }

    /// `__shfl_up`-style exclusive prefix sum of per-lane `values`.
    /// Returns (per-lane exclusive prefix, warp total).
    pub fn exclusive_scan(values: &[u32]) -> (Vec<u32>, u32) {
        debug_assert!(values.len() <= WARP_SIZE);
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0u32;
        for &v in values {
            out.push(acc);
            acc += v;
        }
        (out, acc)
    }

    /// Warp-wide reduction (sum) of per-lane values.
    pub fn reduce_sum(values: &[u32]) -> u32 {
        debug_assert!(values.len() <= WARP_SIZE);
        values.iter().sum()
    }

    /// `__shfl`: every lane reads the value held by `src_lane`.
    /// Returns `None` when `src_lane` is inactive (out of range).
    pub fn shuffle(values: &[u32], src_lane: usize) -> Option<u32> {
        values.get(src_lane).copied()
    }

    /// Lane index of the first set bit of a ballot (the "leader" lane), or
    /// `None` if no lane voted.
    pub fn leader(ballot: u32) -> Option<usize> {
        if ballot == 0 {
            None
        } else {
            Some(ballot.trailing_zeros() as usize)
        }
    }
}

/// Iterate a slice in warp-sized groups, yielding `(warp_start, warp_items)`.
///
/// This mirrors how a kernel assigns 32 consecutive queries to the 32 lanes
/// of a warp so they can cooperate on coalesced writes (paper §IV-C stages
/// 3 and 5).
pub fn warp_chunks<T>(items: &[T]) -> impl Iterator<Item = (usize, &[T])> {
    items
        .chunks(WARP_SIZE)
        .enumerate()
        .map(|(w, chunk)| (w * WARP_SIZE, chunk))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_sets_expected_bits() {
        let preds = [true, false, true, true];
        assert_eq!(WarpOps::ballot(&preds), 0b1101);
    }

    #[test]
    fn ballot_full_warp() {
        let preds = [true; WARP_SIZE];
        assert_eq!(WarpOps::ballot(&preds), u32::MAX);
    }

    #[test]
    fn any_and_all() {
        assert!(WarpOps::any(&[false, true]));
        assert!(!WarpOps::any(&[false, false]));
        assert!(WarpOps::all(&[true, true, true]));
        assert!(!WarpOps::all(&[true, false]));
        assert!(!WarpOps::all(&[]));
    }

    #[test]
    fn rank_below_counts_earlier_voters() {
        let ballot = 0b1011_0101u32;
        assert_eq!(WarpOps::rank_below(ballot, 0), 0);
        assert_eq!(WarpOps::rank_below(ballot, 1), 1);
        assert_eq!(WarpOps::rank_below(ballot, 3), 2);
        assert_eq!(WarpOps::rank_below(ballot, 8), 5);
        assert_eq!(WarpOps::rank_below(ballot, 32), 5);
    }

    #[test]
    fn exclusive_scan_matches_manual() {
        let (scan, total) = WarpOps::exclusive_scan(&[3, 1, 4, 1, 5]);
        assert_eq!(scan, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn reduce_and_shuffle() {
        assert_eq!(WarpOps::reduce_sum(&[1, 2, 3]), 6);
        assert_eq!(WarpOps::shuffle(&[10, 20, 30], 1), Some(20));
        assert_eq!(WarpOps::shuffle(&[10, 20, 30], 5), None);
    }

    #[test]
    fn leader_is_lowest_set_lane() {
        assert_eq!(WarpOps::leader(0), None);
        assert_eq!(WarpOps::leader(0b100), Some(2));
        assert_eq!(WarpOps::leader(u32::MAX), Some(0));
    }

    #[test]
    fn warp_chunks_cover_slice() {
        let items: Vec<u32> = (0..70).collect();
        let chunks: Vec<_> = warp_chunks(&items).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].0, 0);
        assert_eq!(chunks[1].0, 32);
        assert_eq!(chunks[2].0, 64);
        assert_eq!(chunks[2].1.len(), 6);
    }

    #[test]
    fn rank_consistent_with_ballot() {
        // Property-style check: rank_below(ballot, lane) equals the number of
        // true predicates among lanes < lane.
        let preds: Vec<bool> = (0..WARP_SIZE).map(|i| i % 3 == 0).collect();
        let ballot = WarpOps::ballot(&preds);
        for lane in 0..WARP_SIZE {
            let expected = preds[..lane].iter().filter(|&&p| p).count() as u32;
            assert_eq!(WarpOps::rank_below(ballot, lane), expected);
        }
    }
}
