//! Kernel-level memory-traffic metrics.
//!
//! Rather than instrumenting every element access (which would make the
//! simulation orders of magnitude slower than the algorithms it hosts), each
//! primitive *accounts analytically* for the global-memory traffic its kernel
//! performs — how many elements it reads and writes and whether the access
//! pattern is coalesced (streaming, neighbouring threads touch neighbouring
//! addresses) or scattered (random, e.g. binary-search probes).  The cost
//! model in [`crate::cost`] turns those counts into an estimated device time.
//!
//! All counters are lock-free atomics so kernels running across rayon worker
//! threads can record traffic concurrently.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// How a kernel touches global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Neighbouring threads access neighbouring addresses: the hardware
    /// coalesces a warp's accesses into a handful of wide transactions.
    Coalesced,
    /// Data-dependent / random accesses (binary search probes, hash probes):
    /// each access is its own transaction and is latency-bound.
    Scattered,
}

/// Traffic counters for a single named kernel.
#[derive(Debug, Default)]
pub struct KernelMetrics {
    /// Number of kernel launches recorded under this name.
    pub launches: AtomicU64,
    /// Bytes read from global memory with coalesced access.
    pub coalesced_read_bytes: AtomicU64,
    /// Bytes written to global memory with coalesced access.
    pub coalesced_write_bytes: AtomicU64,
    /// Bytes read from global memory with scattered access.
    pub scattered_read_bytes: AtomicU64,
    /// Bytes written to global memory with scattered access.
    pub scattered_write_bytes: AtomicU64,
    /// Number of scattered transactions (each pays latency).
    pub scattered_transactions: AtomicU64,
}

impl KernelMetrics {
    /// Total bytes moved to or from global memory.
    pub fn total_bytes(&self) -> u64 {
        self.coalesced_read_bytes.load(Ordering::Relaxed)
            + self.coalesced_write_bytes.load(Ordering::Relaxed)
            + self.scattered_read_bytes.load(Ordering::Relaxed)
            + self.scattered_write_bytes.load(Ordering::Relaxed)
    }

    /// Bytes moved with coalesced access.
    pub fn coalesced_bytes(&self) -> u64 {
        self.coalesced_read_bytes.load(Ordering::Relaxed)
            + self.coalesced_write_bytes.load(Ordering::Relaxed)
    }

    /// Bytes moved with scattered access.
    pub fn scattered_bytes(&self) -> u64 {
        self.scattered_read_bytes.load(Ordering::Relaxed)
            + self.scattered_write_bytes.load(Ordering::Relaxed)
    }

    /// Number of scattered (latency-bound) transactions.
    pub fn scattered_txn(&self) -> u64 {
        self.scattered_transactions.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> KernelMetricsSnapshot {
        KernelMetricsSnapshot {
            launches: self.launches.load(Ordering::Relaxed),
            coalesced_read_bytes: self.coalesced_read_bytes.load(Ordering::Relaxed),
            coalesced_write_bytes: self.coalesced_write_bytes.load(Ordering::Relaxed),
            scattered_read_bytes: self.scattered_read_bytes.load(Ordering::Relaxed),
            scattered_write_bytes: self.scattered_write_bytes.load(Ordering::Relaxed),
            scattered_transactions: self.scattered_transactions.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of [`KernelMetrics`] for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelMetricsSnapshot {
    /// Number of launches.
    pub launches: u64,
    /// Coalesced bytes read.
    pub coalesced_read_bytes: u64,
    /// Coalesced bytes written.
    pub coalesced_write_bytes: u64,
    /// Scattered bytes read.
    pub scattered_read_bytes: u64,
    /// Scattered bytes written.
    pub scattered_write_bytes: u64,
    /// Scattered transactions.
    pub scattered_transactions: u64,
}

impl KernelMetricsSnapshot {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.coalesced_read_bytes
            + self.coalesced_write_bytes
            + self.scattered_read_bytes
            + self.scattered_write_bytes
    }
}

/// Registry of per-kernel metrics, keyed by kernel name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    kernels: RwLock<BTreeMap<String, std::sync::Arc<KernelMetrics>>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the metrics entry for `kernel`.
    pub fn kernel(&self, kernel: &str) -> std::sync::Arc<KernelMetrics> {
        if let Some(m) = self.kernels.read().get(kernel) {
            return m.clone();
        }
        let mut w = self.kernels.write();
        w.entry(kernel.to_string())
            .or_insert_with(|| std::sync::Arc::new(KernelMetrics::default()))
            .clone()
    }

    /// Record a kernel launch.
    pub fn record_launch(&self, kernel: &str) {
        self.kernel(kernel).launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `bytes` read from global memory by `kernel` with the given
    /// access pattern.
    pub fn record_read(&self, kernel: &str, bytes: u64, pattern: AccessPattern) {
        let m = self.kernel(kernel);
        match pattern {
            AccessPattern::Coalesced => {
                m.coalesced_read_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            AccessPattern::Scattered => {
                m.scattered_read_bytes.fetch_add(bytes, Ordering::Relaxed);
                m.scattered_transactions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record `bytes` written to global memory by `kernel` with the given
    /// access pattern.
    pub fn record_write(&self, kernel: &str, bytes: u64, pattern: AccessPattern) {
        let m = self.kernel(kernel);
        match pattern {
            AccessPattern::Coalesced => {
                m.coalesced_write_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            AccessPattern::Scattered => {
                m.scattered_write_bytes.fetch_add(bytes, Ordering::Relaxed);
                m.scattered_transactions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a number of scattered probe transactions of `bytes_each`
    /// (convenience for binary searches: `count` probes, each latency-bound).
    pub fn record_scattered_probes(&self, kernel: &str, count: u64, bytes_each: u64) {
        let m = self.kernel(kernel);
        m.scattered_read_bytes
            .fetch_add(count * bytes_each, Ordering::Relaxed);
        m.scattered_transactions.fetch_add(count, Ordering::Relaxed);
    }

    /// Record `count` single-block reads of `block_bytes` each (convenience
    /// for blocked Bloom-filter probes: every membership test touches
    /// exactly one cache-line-aligned block, which a warp of queries reads
    /// as wide coalesced transactions rather than per-bit scattered ones —
    /// the access pattern the blocked layout exists to buy).
    pub fn record_block_reads(&self, kernel: &str, count: u64, block_bytes: u64) {
        if count == 0 {
            return;
        }
        self.kernel(kernel)
            .coalesced_read_bytes
            .fetch_add(count * block_bytes, Ordering::Relaxed);
    }

    /// Snapshot all per-kernel counters (for reports).
    pub fn snapshot(&self) -> BTreeMap<String, KernelMetricsSnapshot> {
        self.kernels
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Aggregate snapshot over every kernel.
    pub fn total(&self) -> KernelMetricsSnapshot {
        let mut total = KernelMetricsSnapshot::default();
        for snap in self.snapshot().values() {
            total.launches += snap.launches;
            total.coalesced_read_bytes += snap.coalesced_read_bytes;
            total.coalesced_write_bytes += snap.coalesced_write_bytes;
            total.scattered_read_bytes += snap.scattered_read_bytes;
            total.scattered_write_bytes += snap.scattered_write_bytes;
            total.scattered_transactions += snap.scattered_transactions;
        }
        total
    }

    /// Reset every counter (useful between experiment phases).
    pub fn reset(&self) {
        self.kernels.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_accumulate() {
        let reg = MetricsRegistry::new();
        reg.record_read("sort", 1024, AccessPattern::Coalesced);
        reg.record_write("sort", 1024, AccessPattern::Coalesced);
        reg.record_read("lookup", 4, AccessPattern::Scattered);
        let snap = reg.snapshot();
        assert_eq!(snap["sort"].coalesced_read_bytes, 1024);
        assert_eq!(snap["sort"].coalesced_write_bytes, 1024);
        assert_eq!(snap["lookup"].scattered_read_bytes, 4);
        assert_eq!(snap["lookup"].scattered_transactions, 1);
    }

    #[test]
    fn total_aggregates_all_kernels() {
        let reg = MetricsRegistry::new();
        reg.record_read("a", 100, AccessPattern::Coalesced);
        reg.record_read("b", 200, AccessPattern::Scattered);
        reg.record_write("b", 50, AccessPattern::Scattered);
        let total = reg.total();
        assert_eq!(total.total_bytes(), 350);
        assert_eq!(total.scattered_transactions, 2);
    }

    #[test]
    fn scattered_probes_counts_transactions() {
        let reg = MetricsRegistry::new();
        reg.record_scattered_probes("binary_search", 24, 8);
        let snap = reg.snapshot();
        assert_eq!(snap["binary_search"].scattered_read_bytes, 192);
        assert_eq!(snap["binary_search"].scattered_transactions, 24);
    }

    #[test]
    fn block_reads_are_coalesced_not_scattered() {
        let reg = MetricsRegistry::new();
        reg.record_block_reads("filter_probe", 10, 64);
        reg.record_block_reads("filter_probe", 0, 64); // no-op
        let snap = reg.snapshot();
        assert_eq!(snap["filter_probe"].coalesced_read_bytes, 640);
        assert_eq!(snap["filter_probe"].scattered_transactions, 0);
    }

    #[test]
    fn launches_counted() {
        let reg = MetricsRegistry::new();
        reg.record_launch("merge");
        reg.record_launch("merge");
        assert_eq!(reg.snapshot()["merge"].launches, 2);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.record_read("a", 10, AccessPattern::Coalesced);
        reg.reset();
        assert!(reg.snapshot().is_empty());
        assert_eq!(reg.total().total_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.record_read("k", 4, AccessPattern::Coalesced);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot()["k"].coalesced_read_bytes, 8 * 1000 * 4);
    }
}
