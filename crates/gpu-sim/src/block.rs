//! Thread-block abstractions: shared-memory tiles and block contexts.
//!
//! A CUDA thread block cooperates through a small, fast, programmer-managed
//! shared memory (48 KB per SM on the K40c).  The paper's sort and merge
//! primitives "aggressively use shared memory to achieve coalesced global
//! memory accesses" (§IV-A): each block stages a tile of input in shared
//! memory, works on it locally, and writes the finished tile back in one
//! streaming pass.
//!
//! In this model a [`SharedMemory`] is a bounded scratch allocation whose
//! capacity is checked against the device configuration, and a
//! [`BlockContext`] describes one block's slice of a grid launch.  The
//! primitives use [`tile_size_for`] to pick tile sizes that would actually
//! fit in shared memory on the modelled hardware, so the decomposition (and
//! hence the number of global-memory passes) matches the real implementation.

use crate::config::DeviceConfig;

/// A bounded shared-memory scratch area for one thread block.
#[derive(Debug)]
pub struct SharedMemory {
    capacity_bytes: usize,
    used_bytes: usize,
}

impl SharedMemory {
    /// Create a shared-memory arena with the device's per-SM capacity.
    pub fn for_device(config: &DeviceConfig) -> Self {
        SharedMemory {
            capacity_bytes: config.shared_mem_per_sm,
            used_bytes: 0,
        }
    }

    /// Create a shared-memory arena with an explicit capacity (tests).
    pub fn with_capacity(capacity_bytes: usize) -> Self {
        SharedMemory {
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// Allocate a typed scratch buffer of `len` elements, or `None` if it
    /// would exceed the block's shared-memory budget.
    pub fn alloc<T: Default + Clone>(&mut self, len: usize) -> Option<Vec<T>> {
        let bytes = len * std::mem::size_of::<T>();
        if self.used_bytes + bytes > self.capacity_bytes {
            return None;
        }
        self.used_bytes += bytes;
        Some(vec![T::default(); len])
    }

    /// Bytes currently allocated from this arena.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Remaining bytes.
    pub fn remaining_bytes(&self) -> usize {
        self.capacity_bytes - self.used_bytes
    }
}

/// Description of one thread block inside a grid launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockContext {
    /// Index of this block within the grid.
    pub block_id: usize,
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// First element index this block is responsible for.
    pub tile_start: usize,
    /// One past the last element index this block is responsible for.
    pub tile_end: usize,
}

impl BlockContext {
    /// Number of elements in this block's tile.
    pub fn tile_len(&self) -> usize {
        self.tile_end - self.tile_start
    }

    /// Global thread id of `lane` within this block.
    pub fn thread_id(&self, lane: usize) -> usize {
        self.block_id * self.block_dim + lane
    }
}

/// Split `n` elements into block tiles of `tile` elements each, producing one
/// [`BlockContext`] per tile.
pub fn make_blocks(n: usize, tile: usize, block_dim: usize) -> Vec<BlockContext> {
    assert!(tile > 0, "tile size must be positive");
    let grid_dim = n.div_ceil(tile).max(1);
    (0..grid_dim)
        .map(|block_id| {
            let tile_start = block_id * tile;
            let tile_end = ((block_id + 1) * tile).min(n);
            BlockContext {
                block_id,
                grid_dim,
                block_dim,
                tile_start,
                tile_end,
            }
        })
        .collect()
}

/// Choose a per-block tile size (in elements of `elem_bytes` each) such that
/// the tile plus a same-sized staging area fit in the device's shared
/// memory, rounded down to a multiple of the warp size.
///
/// This is how the real CUB/moderngpu kernels choose their VT×NT products;
/// keeping the same rule means our pass structure scales with the modelled
/// hardware the same way theirs does.
pub fn tile_size_for(config: &DeviceConfig, elem_bytes: usize) -> usize {
    let budget = config.shared_mem_per_sm / 2; // tile + staging area
    let raw = (budget / elem_bytes.max(1)).max(config.warp_size);
    (raw / config.warp_size) * config.warp_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_memory_enforces_capacity() {
        let mut sm = SharedMemory::with_capacity(1024);
        let a: Option<Vec<u32>> = sm.alloc(128); // 512 bytes
        assert!(a.is_some());
        assert_eq!(sm.used_bytes(), 512);
        let b: Option<Vec<u64>> = sm.alloc(128); // 1024 bytes > remaining 512
        assert!(b.is_none());
        assert_eq!(sm.remaining_bytes(), 512);
    }

    #[test]
    fn shared_memory_for_device_uses_config() {
        let cfg = DeviceConfig::k40c();
        let sm = SharedMemory::for_device(&cfg);
        assert_eq!(sm.capacity_bytes(), 48 * 1024);
    }

    #[test]
    fn make_blocks_covers_range_exactly() {
        let blocks = make_blocks(1000, 256, 128);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].tile_start, 0);
        assert_eq!(blocks[3].tile_end, 1000);
        let covered: usize = blocks.iter().map(|b| b.tile_len()).sum();
        assert_eq!(covered, 1000);
        // Tiles are contiguous and non-overlapping.
        for w in blocks.windows(2) {
            assert_eq!(w[0].tile_end, w[1].tile_start);
        }
    }

    #[test]
    fn make_blocks_handles_empty_input() {
        let blocks = make_blocks(0, 256, 128);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].tile_len(), 0);
    }

    #[test]
    fn thread_id_is_global() {
        let b = BlockContext {
            block_id: 2,
            grid_dim: 4,
            block_dim: 128,
            tile_start: 512,
            tile_end: 768,
        };
        assert_eq!(b.thread_id(0), 256);
        assert_eq!(b.thread_id(127), 383);
    }

    #[test]
    fn tile_size_is_warp_multiple_and_fits() {
        let cfg = DeviceConfig::k40c();
        let tile = tile_size_for(&cfg, 8);
        assert_eq!(tile % cfg.warp_size, 0);
        assert!(tile * 8 <= cfg.shared_mem_per_sm / 2);
        assert!(tile >= cfg.warp_size);
    }

    #[test]
    fn tile_size_never_below_warp() {
        let cfg = DeviceConfig::small();
        let tile = tile_size_for(&cfg, 4096);
        assert_eq!(tile, cfg.warp_size);
    }
}
