//! Cost model: converting recorded memory traffic into an estimated device
//! time.
//!
//! GPU bulk primitives such as radix sort, merge and scan are bandwidth
//! bound: their running time is essentially (bytes moved) / (sustained DRAM
//! bandwidth).  Pointer-chasing style work such as per-thread binary search
//! is latency bound: each probe is an independent, uncoalesced transaction,
//! and the device hides that latency across the resident warps.  The model
//! here is the classical roofline-style combination of the two:
//!
//! ```text
//! t_kernel = max( coalesced_bytes / BW_eff,
//!                 scattered_txns · latency / (warps_in_flight) ,
//!                 scattered_bytes / BW_scattered )
//! ```
//!
//! The absolute numbers are only as good as the configuration, but the
//! *ratios* between data structures — which is what the paper's tables
//! compare — depend on the traffic counts, which are exact.

use crate::config::DeviceConfig;
use crate::metrics::{KernelMetricsSnapshot, MetricsRegistry};

/// Estimated device time, broken into its bounding components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Seconds the kernel would spend if purely bandwidth bound.
    pub bandwidth_seconds: f64,
    /// Seconds the kernel would spend if purely latency bound.
    pub latency_seconds: f64,
    /// The modelled kernel time: the maximum of the components.
    pub total_seconds: f64,
}

impl CostEstimate {
    /// A zero-cost estimate.
    pub fn zero() -> Self {
        CostEstimate {
            bandwidth_seconds: 0.0,
            latency_seconds: 0.0,
            total_seconds: 0.0,
        }
    }

    /// Sum two estimates (sequential kernels).
    pub fn add(&self, other: &CostEstimate) -> CostEstimate {
        CostEstimate {
            bandwidth_seconds: self.bandwidth_seconds + other.bandwidth_seconds,
            latency_seconds: self.latency_seconds + other.latency_seconds,
            total_seconds: self.total_seconds + other.total_seconds,
        }
    }
}

/// Converts metric snapshots into [`CostEstimate`]s for a given device.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: DeviceConfig,
    /// Effective bandwidth for scattered traffic relative to coalesced; a
    /// warp whose 32 lanes each touch a different 128-byte segment wastes
    /// most of each transaction, so scattered traffic is charged at a
    /// fraction of streaming bandwidth.
    scattered_bandwidth_fraction: f64,
}

impl CostModel {
    /// Build a cost model for `config`.
    pub fn new(config: DeviceConfig) -> Self {
        CostModel {
            config,
            scattered_bandwidth_fraction: 0.125,
        }
    }

    /// The device configuration the model was built from.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Estimate the device time for a single kernel's traffic snapshot.
    pub fn estimate_kernel(&self, snap: &KernelMetricsSnapshot) -> CostEstimate {
        let bw = self.config.effective_bandwidth_bytes_per_sec();
        let coalesced = (snap.coalesced_read_bytes + snap.coalesced_write_bytes) as f64;
        let scattered = (snap.scattered_read_bytes + snap.scattered_write_bytes) as f64;

        let bandwidth_seconds =
            coalesced / bw + scattered / (bw * self.scattered_bandwidth_fraction);

        // Latency component: each scattered transaction pays DRAM latency,
        // hidden across all warps the device can keep in flight.
        let warps_in_flight = (self.config.num_sms * self.config.max_warps_per_sm) as f64;
        let latency_per_txn = self.config.dram_latency_cycles * self.config.cycle_seconds();
        let latency_seconds =
            snap.scattered_transactions as f64 * latency_per_txn / warps_in_flight;

        CostEstimate {
            bandwidth_seconds,
            latency_seconds,
            total_seconds: bandwidth_seconds.max(latency_seconds),
        }
    }

    /// Estimate the total device time across every kernel recorded in a
    /// registry (kernels are assumed to run back-to-back, as in the paper's
    /// bulk-synchronous phases).
    pub fn estimate_registry(&self, registry: &MetricsRegistry) -> CostEstimate {
        registry
            .snapshot()
            .values()
            .map(|s| self.estimate_kernel(s))
            .fold(CostEstimate::zero(), |acc, e| acc.add(&e))
    }

    /// Convenience: modelled throughput in million elements per second for a
    /// phase that processed `elements` elements.
    pub fn throughput_m_per_sec(&self, elements: usize, estimate: &CostEstimate) -> f64 {
        if estimate.total_seconds <= 0.0 {
            return f64::INFINITY;
        }
        elements as f64 / estimate.total_seconds / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::AccessPattern;

    fn snap(coalesced: u64, scattered: u64, txns: u64) -> KernelMetricsSnapshot {
        KernelMetricsSnapshot {
            launches: 1,
            coalesced_read_bytes: coalesced / 2,
            coalesced_write_bytes: coalesced - coalesced / 2,
            scattered_read_bytes: scattered,
            scattered_write_bytes: 0,
            scattered_transactions: txns,
        }
    }

    #[test]
    fn pure_streaming_is_bandwidth_bound() {
        let model = CostModel::new(DeviceConfig::k40c());
        let est = model.estimate_kernel(&snap(1 << 30, 0, 0));
        assert!(est.bandwidth_seconds > 0.0);
        assert_eq!(est.latency_seconds, 0.0);
        assert_eq!(est.total_seconds, est.bandwidth_seconds);
    }

    #[test]
    fn scattered_traffic_costs_more_per_byte() {
        let model = CostModel::new(DeviceConfig::k40c());
        let streaming = model.estimate_kernel(&snap(1 << 20, 0, 0));
        let scattered = model.estimate_kernel(&snap(0, 1 << 20, 1 << 14));
        assert!(scattered.total_seconds > streaming.total_seconds);
    }

    #[test]
    fn doubling_traffic_doubles_bandwidth_time() {
        let model = CostModel::new(DeviceConfig::k40c());
        let a = model.estimate_kernel(&snap(1 << 20, 0, 0));
        let b = model.estimate_kernel(&snap(1 << 21, 0, 0));
        assert!((b.bandwidth_seconds / a.bandwidth_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn registry_estimate_sums_kernels() {
        let model = CostModel::new(DeviceConfig::k40c());
        let reg = MetricsRegistry::new();
        reg.record_read("a", 1 << 20, AccessPattern::Coalesced);
        reg.record_write("b", 1 << 20, AccessPattern::Coalesced);
        let est = model.estimate_registry(&reg);
        let single = model.estimate_kernel(&snap(1 << 20, 0, 0));
        assert!((est.total_seconds - 2.0 * single.total_seconds).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_elements_over_time() {
        let model = CostModel::new(DeviceConfig::k40c());
        let est = CostEstimate {
            bandwidth_seconds: 1.0,
            latency_seconds: 0.0,
            total_seconds: 1.0,
        };
        let tp = model.throughput_m_per_sec(2_000_000, &est);
        assert!((tp - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_estimate_has_infinite_throughput() {
        let model = CostModel::new(DeviceConfig::k40c());
        assert!(model
            .throughput_m_per_sec(10, &CostEstimate::zero())
            .is_infinite());
    }
}
