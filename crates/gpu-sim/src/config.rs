//! Device configuration: the hardware parameters of the modelled GPU.
//!
//! The defaults mirror the NVIDIA Tesla K40c used in the paper's evaluation
//! (Kepler GK110B, 15 SMs, 12 GB GDDR5 at 288 GB/s, 1.5 MB L2, 48 KB shared
//! memory per SM).  All parameters are plain data so alternative devices can
//! be described for sensitivity studies.

use serde::{Deserialize, Serialize};

/// Hardware description of the modelled GPU device.
///
/// Only parameters that influence the cost model or the execution
/// decomposition are included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name (for reports).
    pub name: String,
    /// Number of streaming multiprocessors (SMs).
    pub num_sms: usize,
    /// SIMD width of a warp (32 on all NVIDIA architectures).
    pub warp_size: usize,
    /// Maximum number of threads per block supported by the device.
    pub max_threads_per_block: usize,
    /// Core clock in GHz (used to convert latency cycles to time).
    pub clock_ghz: f64,
    /// Peak global-memory (DRAM) bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Fraction of peak bandwidth achievable by well-coalesced streaming
    /// kernels in practice (the paper's radix sort sustains ~770 M 8-byte
    /// pairs/s ≈ 0.17 of peak on a K40c once read+write traffic per pass is
    /// accounted for; 0.75 is a typical streaming efficiency).
    pub streaming_efficiency: f64,
    /// Global-memory access latency in cycles (uncoalesced accesses pay this
    /// per transaction when latency-bound).
    pub dram_latency_cycles: f64,
    /// L2 cache capacity in bytes (1.5 MB on the K40c).
    pub l2_cache_bytes: usize,
    /// L1 cache capacity per SM in bytes (16 KB configuration on the K40c).
    pub l1_cache_bytes: usize,
    /// Shared-memory capacity per SM in bytes (48 KB on the K40c).
    pub shared_mem_per_sm: usize,
    /// Total device (global) memory in bytes.
    pub global_mem_bytes: usize,
    /// Size in bytes of a single memory transaction (cache line / segment).
    pub transaction_bytes: usize,
    /// Maximum number of resident warps per SM (used to model latency
    /// hiding: more resident warps hide more latency).
    pub max_warps_per_sm: usize,
}

impl DeviceConfig {
    /// The NVIDIA Tesla K40c configuration used in the paper's evaluation.
    pub fn k40c() -> Self {
        DeviceConfig {
            name: "NVIDIA Tesla K40c (modelled)".to_string(),
            num_sms: 15,
            warp_size: 32,
            max_threads_per_block: 1024,
            clock_ghz: 0.745,
            dram_bandwidth_gbps: 288.0,
            streaming_efficiency: 0.75,
            dram_latency_cycles: 350.0,
            l2_cache_bytes: 1_572_864,                 // 1.5 MB
            l1_cache_bytes: 16 * 1024,                 // 16 KB per SM
            shared_mem_per_sm: 48 * 1024,              // 48 KB
            global_mem_bytes: 12 * 1024 * 1024 * 1024, // 12 GB
            transaction_bytes: 128,
            max_warps_per_sm: 64,
        }
    }

    /// A small generic device useful for tests: few SMs, small caches, so
    /// cache-capacity effects show up at test-sized inputs.
    pub fn small() -> Self {
        DeviceConfig {
            name: "small-test-device".to_string(),
            num_sms: 2,
            warp_size: 32,
            max_threads_per_block: 256,
            clock_ghz: 1.0,
            dram_bandwidth_gbps: 32.0,
            streaming_efficiency: 0.75,
            dram_latency_cycles: 200.0,
            l2_cache_bytes: 64 * 1024,
            l1_cache_bytes: 8 * 1024,
            shared_mem_per_sm: 16 * 1024,
            global_mem_bytes: 256 * 1024 * 1024,
            transaction_bytes: 128,
            max_warps_per_sm: 32,
        }
    }

    /// Total number of hardware lanes (SMs × warps × warp size); an upper
    /// bound on useful thread-level parallelism for the cost model.
    pub fn total_lanes(&self) -> usize {
        self.num_sms * self.max_warps_per_sm * self.warp_size
    }

    /// Effective sustainable DRAM bandwidth in bytes per second.
    pub fn effective_bandwidth_bytes_per_sec(&self) -> f64 {
        self.dram_bandwidth_gbps * 1.0e9 * self.streaming_efficiency
    }

    /// Duration of one core clock cycle in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (self.clock_ghz * 1.0e9)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::k40c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_preset_matches_published_specs() {
        let cfg = DeviceConfig::k40c();
        assert_eq!(cfg.num_sms, 15);
        assert_eq!(cfg.warp_size, 32);
        assert_eq!(cfg.l2_cache_bytes, 1_572_864);
        assert_eq!(cfg.shared_mem_per_sm, 48 * 1024);
        assert!((cfg.dram_bandwidth_gbps - 288.0).abs() < f64::EPSILON);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        let cfg = DeviceConfig::k40c();
        assert!(cfg.effective_bandwidth_bytes_per_sec() < cfg.dram_bandwidth_gbps * 1e9);
        assert!(cfg.effective_bandwidth_bytes_per_sec() > 0.0);
    }

    #[test]
    fn cycle_time_is_reciprocal_of_clock() {
        let cfg = DeviceConfig::small();
        assert!((cfg.cycle_seconds() - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn total_lanes_is_product() {
        let cfg = DeviceConfig::small();
        assert_eq!(cfg.total_lanes(), 2 * 32 * 32);
    }

    #[test]
    fn default_is_k40c() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::k40c());
    }

    #[test]
    fn config_clone_is_equal() {
        let cfg = DeviceConfig::k40c();
        assert_eq!(cfg.clone(), cfg);
    }
}
