//! # gpu-sim — a bulk-synchronous GPU execution and cost model
//!
//! The GPU LSM paper (Ashkiani et al., IPDPS 2018) was evaluated on an NVIDIA
//! Tesla K40c with CUDA.  This reproduction runs on CPUs, so this crate
//! provides the *substrate* the rest of the workspace is built on: a model of
//! the GPU's bulk-synchronous execution style together with a memory/cost
//! model that lets higher layers report both CPU wall-clock time and an
//! estimate of what the same number of memory transactions would cost on the
//! modelled device.
//!
//! The crate deliberately models the aspects of the GPU that the paper's
//! algorithms actually exploit:
//!
//! * **Bulk synchrony** — work is issued as *kernels* over a grid of thread
//!   blocks; blocks are independent and are executed in parallel
//!   ([`Device::launch_blocks`], [`Device::launch_blocks_map`]).
//! * **The memory hierarchy** — global memory is allocated in
//!   [`DeviceBuffer`]s whose sizes are tracked; kernels account the global
//!   loads/stores they perform and whether accesses are coalesced
//!   ([`metrics`]), and the [`cost`] module converts those counts into an
//!   estimated device time using the configured DRAM bandwidth and latency.
//! * **Warp-wide cooperation** — `ballot`, `any`, `all`, shuffles and warp
//!   scans ([`warp`]) used by the multisplit and the query validation stages.
//! * **Shared-memory tiling** — block-level tiles bounded by the configured
//!   shared-memory size ([`block`]).
//!
//! The design goal is *shape preservation*: the relative costs of the GPU
//! LSM, the sorted-array baseline and the cuckoo hash table are governed by
//! how much data each one touches and in what pattern, which this model
//! captures, even though absolute throughput numbers are those of a CPU.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{Device, DeviceConfig};
//!
//! let device = Device::new(DeviceConfig::k40c());
//! let mut buf = device.alloc_from_slice("numbers", &[3u32, 1, 4, 1, 5]);
//! device.for_each_mut("double", buf.as_mut_slice(), |_i, x| *x *= 2);
//! assert_eq!(buf.as_slice(), &[6, 2, 8, 2, 10]);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod config;
pub mod cost;
pub mod device;
pub mod event;
pub mod memory;
pub mod metrics;
pub mod warp;

pub use block::{BlockContext, SharedMemory};
pub use config::DeviceConfig;
pub use cost::{CostEstimate, CostModel};
pub use device::Device;
pub use event::PhaseTimer;
pub use memory::{DeviceBuffer, DoubleBuffer, MemoryTracker};
pub use metrics::{AccessPattern, KernelMetrics, MetricsRegistry};
pub use warp::{WarpOps, WARP_SIZE};
