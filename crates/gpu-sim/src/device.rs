//! The [`Device`]: configuration, memory tracking, metrics and kernel launch
//! entry points, bundled the way a CUDA context bundles them.
//!
//! Kernels are expressed as data-parallel closures over element indices or
//! block tiles; they execute on a rayon thread pool, which stands in for the
//! GPU's block scheduler (blocks are independent, may run in any order, and
//! synchronise only at kernel boundaries — exactly the guarantees CUDA
//! gives).

use std::sync::Arc;

use rayon::prelude::*;

use crate::block::{make_blocks, tile_size_for, BlockContext};
use crate::config::DeviceConfig;
use crate::cost::{CostEstimate, CostModel};
use crate::event::PhaseTimer;
use crate::memory::{DeviceBuffer, MemoryTracker};
use crate::metrics::{AccessPattern, MetricsRegistry};

/// A modelled GPU device: the entry point of the simulation substrate.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    metrics: Arc<MetricsRegistry>,
    memory: Arc<MemoryTracker>,
    timer: Arc<PhaseTimer>,
    cost_model: CostModel,
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let cost_model = CostModel::new(config.clone());
        Device {
            config,
            metrics: Arc::new(MetricsRegistry::new()),
            memory: Arc::new(MemoryTracker::new()),
            timer: Arc::new(PhaseTimer::new()),
            cost_model,
        }
    }

    /// Create a device modelling the paper's Tesla K40c.
    pub fn k40c() -> Self {
        Self::new(DeviceConfig::k40c())
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The per-kernel traffic metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The device-memory tracker.
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// The phase timer shared by operations on this device.
    pub fn timer(&self) -> &PhaseTimer {
        &self.timer
    }

    /// The cost model for this device.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Estimate the modelled device time of all traffic recorded so far.
    pub fn estimated_time(&self) -> CostEstimate {
        self.cost_model.estimate_registry(&self.metrics)
    }

    /// Reset metrics and timers (between experiment phases).
    pub fn reset_counters(&self) {
        self.metrics.reset();
        self.timer.reset();
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocate a device buffer and copy `data` into it.
    pub fn alloc_from_slice<T: Clone>(&self, label: &str, data: &[T]) -> DeviceBuffer<T> {
        DeviceBuffer::from_vec(label, data.to_vec(), Some(self.memory.clone()))
    }

    /// Allocate a zero-initialised device buffer of `len` elements.
    pub fn alloc_zeroed<T: Default + Clone>(&self, label: &str, len: usize) -> DeviceBuffer<T> {
        DeviceBuffer::from_vec(label, vec![T::default(); len], Some(self.memory.clone()))
    }

    /// Take ownership of a host vector as a device buffer without copying.
    pub fn adopt_vec<T>(&self, label: &str, data: Vec<T>) -> DeviceBuffer<T> {
        DeviceBuffer::from_vec(label, data, Some(self.memory.clone()))
    }

    // ------------------------------------------------------------------
    // Kernel launches
    // ------------------------------------------------------------------

    /// Element-parallel kernel: apply `f(index, &mut element)` to every
    /// element of `data` in parallel.  Accounts one coalesced read and write
    /// per element.
    pub fn for_each_mut<T, F>(&self, kernel: &str, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.metrics.record_launch(kernel);
        let bytes = std::mem::size_of_val(data) as u64;
        self.metrics
            .record_read(kernel, bytes, AccessPattern::Coalesced);
        self.metrics
            .record_write(kernel, bytes, AccessPattern::Coalesced);
        data.par_iter_mut().enumerate().for_each(|(i, x)| f(i, x));
    }

    /// Map-parallel kernel: produce one output element per input element.
    /// Accounts coalesced reads of the input and coalesced writes of the
    /// output.
    pub fn map<T, U, F>(&self, kernel: &str, data: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.metrics.record_launch(kernel);
        self.metrics.record_read(
            kernel,
            std::mem::size_of_val(data) as u64,
            AccessPattern::Coalesced,
        );
        self.metrics.record_write(
            kernel,
            (data.len() * std::mem::size_of::<U>()) as u64,
            AccessPattern::Coalesced,
        );
        data.par_iter().enumerate().map(|(i, x)| f(i, x)).collect()
    }

    /// Block-parallel kernel over an index range: `n` items are split into
    /// block tiles of `tile` items, and `f(block)` runs once per block, with
    /// blocks executing in parallel.  No traffic is accounted automatically
    /// — the kernel body records what it actually touches.
    pub fn launch_blocks<F>(&self, kernel: &str, n: usize, tile: usize, f: F)
    where
        F: Fn(&BlockContext) + Sync,
    {
        self.metrics.record_launch(kernel);
        let blocks = make_blocks(n, tile, self.config.max_threads_per_block);
        blocks.par_iter().for_each(&f);
    }

    /// Block-parallel kernel that produces one result per block (e.g. a
    /// per-block histogram or partial reduction), returned in block order.
    pub fn launch_blocks_map<R, F>(&self, kernel: &str, n: usize, tile: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&BlockContext) -> R + Sync,
    {
        self.metrics.record_launch(kernel);
        let blocks = make_blocks(n, tile, self.config.max_threads_per_block);
        blocks.par_iter().map(&f).collect()
    }

    /// The tile size (in elements of `elem_bytes` bytes) that fits this
    /// device's shared memory; primitives use it to pick their block tiles.
    pub fn preferred_tile(&self, elem_bytes: usize) -> usize {
        tile_size_for(&self.config, elem_bytes)
    }

    /// Number of worker threads actually backing the block scheduler.
    pub fn worker_threads(&self) -> usize {
        rayon::current_num_threads()
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::k40c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_mut_applies_function_to_all_elements() {
        let device = Device::new(DeviceConfig::small());
        let mut buf = device.alloc_from_slice("v", &[1u32, 2, 3, 4]);
        device.for_each_mut("double", buf.as_mut_slice(), |_, x| *x *= 2);
        assert_eq!(buf.as_slice(), &[2, 4, 6, 8]);
    }

    #[test]
    fn map_produces_one_output_per_input() {
        let device = Device::new(DeviceConfig::small());
        let input: Vec<u32> = (0..1000).collect();
        let out = device.map("square", &input, |_, &x| (x as u64) * (x as u64));
        assert_eq!(out.len(), 1000);
        assert_eq!(out[31], 31 * 31);
    }

    #[test]
    fn kernel_launch_records_traffic() {
        let device = Device::new(DeviceConfig::small());
        let mut buf = device.alloc_zeroed::<u32>("zeros", 256);
        device.for_each_mut("touch", buf.as_mut_slice(), |i, x| *x = i as u32);
        let snap = device.metrics().snapshot();
        assert_eq!(snap["touch"].launches, 1);
        assert_eq!(snap["touch"].coalesced_read_bytes, 256 * 4);
        assert_eq!(snap["touch"].coalesced_write_bytes, 256 * 4);
    }

    #[test]
    fn launch_blocks_covers_all_tiles() {
        let device = Device::new(DeviceConfig::small());
        use std::sync::atomic::{AtomicUsize, Ordering};
        let covered = AtomicUsize::new(0);
        device.launch_blocks("tiles", 10_000, 1024, |b| {
            covered.fetch_add(b.tile_len(), Ordering::Relaxed);
        });
        assert_eq!(covered.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn launch_blocks_map_returns_in_block_order() {
        let device = Device::new(DeviceConfig::small());
        let starts = device.launch_blocks_map("starts", 1000, 300, |b| b.tile_start);
        assert_eq!(starts, vec![0, 300, 600, 900]);
    }

    #[test]
    fn allocation_tracked_by_device_memory() {
        let device = Device::new(DeviceConfig::small());
        let buf = device.alloc_zeroed::<u64>("big", 1024);
        assert!(device.memory().live_bytes() >= buf.size_bytes());
        drop(buf);
        assert_eq!(device.memory().live_bytes(), 0);
    }

    #[test]
    fn estimated_time_grows_with_traffic() {
        let device = Device::new(DeviceConfig::small());
        let mut buf = device.alloc_zeroed::<u64>("t", 1 << 16);
        device.for_each_mut("pass1", buf.as_mut_slice(), |i, x| *x = i as u64);
        let t1 = device.estimated_time().total_seconds;
        device.for_each_mut("pass2", buf.as_mut_slice(), |_, x| *x += 1);
        let t2 = device.estimated_time().total_seconds;
        assert!(t2 > t1);
        device.reset_counters();
        assert_eq!(device.estimated_time().total_seconds, 0.0);
    }

    #[test]
    fn preferred_tile_is_positive_warp_multiple() {
        let device = Device::k40c();
        let tile = device.preferred_tile(8);
        assert!(tile > 0);
        assert_eq!(tile % device.config().warp_size, 0);
    }
}
