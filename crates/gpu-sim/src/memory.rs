//! Device (global) memory: buffers, allocation tracking and the ping-pong
//! double buffer used by the LSM's out-of-place merges.
//!
//! On a real GPU the data structure lives in device DRAM and every kernel
//! reads and writes it there.  Here a [`DeviceBuffer`] owns its storage on
//! the host, but the [`MemoryTracker`] keeps the same accounting a GPU
//! allocator would: live bytes, peak bytes and allocation counts — the
//! numbers the paper's §IV discusses when motivating the ping-pong strategy
//! and the memory cost of stale elements.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tracks device-memory allocations (live bytes, peak bytes, counts).
#[derive(Debug, Default)]
pub struct MemoryTracker {
    live_bytes: AtomicU64,
    peak_bytes: AtomicU64,
    total_allocations: AtomicU64,
}

impl MemoryTracker {
    /// Create a tracker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation of `bytes`.
    pub fn record_alloc(&self, bytes: u64) {
        let live = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.total_allocations.fetch_add(1, Ordering::Relaxed);
        // Update the peak with a CAS loop (the value only ever increases).
        let mut peak = self.peak_bytes.load(Ordering::Relaxed);
        while live > peak {
            match self.peak_bytes.compare_exchange_weak(
                peak,
                live,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    /// Record that an allocation of `bytes` was freed.
    pub fn record_free(&self, bytes: u64) {
        self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Number of allocations performed.
    pub fn total_allocations(&self) -> u64 {
        self.total_allocations.load(Ordering::Relaxed)
    }
}

/// A buffer in the modelled device's global memory.
///
/// The buffer owns a `Vec<T>`; its allocation and deallocation are reported
/// to the owning [`MemoryTracker`] so that experiments can report device
/// memory usage (e.g. the memory overhead of stale elements before cleanup).
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    label: String,
    data: Vec<T>,
    tracker: Option<Arc<MemoryTracker>>,
}

impl<T> DeviceBuffer<T> {
    /// Wrap an existing vector as a device buffer tracked by `tracker`.
    pub fn from_vec(
        label: impl Into<String>,
        data: Vec<T>,
        tracker: Option<Arc<MemoryTracker>>,
    ) -> Self {
        let buf = DeviceBuffer {
            label: label.into(),
            data,
            tracker,
        };
        if let Some(t) = &buf.tracker {
            t.record_alloc(buf.size_bytes());
        }
        buf
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.data.capacity() * std::mem::size_of::<T>()) as u64
    }

    /// Debug label of the buffer.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Read-only view of the buffer contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the buffer contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy the buffer back to host memory (returns a clone of the data).
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.data.clone()
    }

    /// Consume the buffer and return the underlying vector without copying.
    pub fn into_vec(mut self) -> Vec<T> {
        if let Some(t) = self.tracker.take() {
            t.record_free((self.data.capacity() * std::mem::size_of::<T>()) as u64);
        }
        std::mem::take(&mut self.data)
    }

    /// Replace the contents with `data` (models a device-to-device copy into
    /// a reused allocation).
    pub fn replace(&mut self, data: Vec<T>) {
        let old = self.size_bytes();
        self.data = data;
        if let Some(t) = &self.tracker {
            t.record_free(old);
            t.record_alloc(self.size_bytes());
        }
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.record_free((self.data.capacity() * std::mem::size_of::<T>()) as u64);
        }
    }
}

impl<T: Clone> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        DeviceBuffer::from_vec(self.label.clone(), self.data.clone(), self.tracker.clone())
    }
}

/// A pair of equally sized buffers used for out-of-place (ping-pong)
/// operations, as the paper's merge chain requires (§IV-A: "Since our merge
/// is not an in-place operation, we use double buffers and a ping-pong
/// strategy between them").
#[derive(Debug)]
pub struct DoubleBuffer<T> {
    current: Vec<T>,
    alternate: Vec<T>,
}

impl<T: Default + Clone> DoubleBuffer<T> {
    /// Create a double buffer whose current side holds `data`.
    pub fn new(data: Vec<T>) -> Self {
        let alternate = Vec::with_capacity(data.len());
        DoubleBuffer {
            current: data,
            alternate,
        }
    }

    /// Current (valid) side.
    pub fn current(&self) -> &[T] {
        &self.current
    }

    /// Mutable access to the current side.
    pub fn current_mut(&mut self) -> &mut Vec<T> {
        &mut self.current
    }

    /// Mutable access to the alternate (scratch) side.
    pub fn alternate_mut(&mut self) -> &mut Vec<T> {
        &mut self.alternate
    }

    /// Swap the roles of the two sides (after an out-of-place pass wrote the
    /// new values into the alternate side).
    pub fn swap(&mut self) {
        std::mem::swap(&mut self.current, &mut self.alternate);
    }

    /// Consume the double buffer, returning the current side.
    pub fn into_current(self) -> Vec<T> {
        self.current
    }

    /// Length of the current side.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the current side is empty.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_alloc_and_free() {
        let tracker = Arc::new(MemoryTracker::new());
        {
            let buf = DeviceBuffer::from_vec("a", vec![0u64; 128], Some(tracker.clone()));
            assert_eq!(tracker.live_bytes(), buf.size_bytes());
            assert_eq!(tracker.total_allocations(), 1);
        }
        assert_eq!(tracker.live_bytes(), 0);
        assert!(tracker.peak_bytes() >= 128 * 8);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let tracker = Arc::new(MemoryTracker::new());
        let a = DeviceBuffer::from_vec("a", vec![0u32; 100], Some(tracker.clone()));
        let b = DeviceBuffer::from_vec("b", vec![0u32; 200], Some(tracker.clone()));
        let peak_with_both = tracker.live_bytes();
        drop(a);
        drop(b);
        assert_eq!(tracker.live_bytes(), 0);
        assert_eq!(tracker.peak_bytes(), peak_with_both);
    }

    #[test]
    fn buffer_roundtrip_to_host() {
        let buf = DeviceBuffer::from_vec("x", vec![1u32, 2, 3], None);
        assert_eq!(buf.to_host(), vec![1, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert_eq!(buf.label(), "x");
    }

    #[test]
    fn into_vec_releases_tracking() {
        let tracker = Arc::new(MemoryTracker::new());
        let buf = DeviceBuffer::from_vec("y", vec![7u8; 64], Some(tracker.clone()));
        let v = buf.into_vec();
        assert_eq!(v.len(), 64);
        assert_eq!(tracker.live_bytes(), 0);
    }

    #[test]
    fn replace_updates_accounting() {
        let tracker = Arc::new(MemoryTracker::new());
        let mut buf = DeviceBuffer::from_vec("z", vec![0u64; 10], Some(tracker.clone()));
        buf.replace(vec![0u64; 1000]);
        assert_eq!(tracker.live_bytes(), buf.size_bytes());
        assert_eq!(buf.len(), 1000);
    }

    #[test]
    fn double_buffer_swap_exchanges_sides() {
        let mut db = DoubleBuffer::new(vec![1, 2, 3]);
        db.alternate_mut().clear();
        db.alternate_mut().extend_from_slice(&[4, 5, 6, 7]);
        db.swap();
        assert_eq!(db.current(), &[4, 5, 6, 7]);
        assert_eq!(db.len(), 4);
        db.swap();
        assert_eq!(db.current(), &[1, 2, 3]);
    }

    #[test]
    fn double_buffer_into_current() {
        let db: DoubleBuffer<u32> = DoubleBuffer::new(vec![9, 8]);
        assert_eq!(db.into_current(), vec![9, 8]);
    }
}
