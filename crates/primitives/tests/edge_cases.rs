//! Edge-case tests for the bulk primitives: empty input, single element,
//! all-duplicate keys, and already-/reverse-sorted inputs, for each of
//! `radix_sort`, `merge`, `scan` and `compact`.  These are the degenerate
//! shapes the LSM produces at its boundaries (empty levels, one-element
//! batches, duplicate-heavy update streams), so the primitives must handle
//! them without special-casing upstream.

use gpu_primitives::compact::{compact_by_flag, compact_pairs_by_flag};
use gpu_primitives::merge::{merge_by, merge_pairs_by};
use gpu_primitives::radix_sort::{sort_keys, sort_pairs};
use gpu_primitives::scan::{exclusive_scan, inclusive_scan};
use gpu_sim::{Device, DeviceConfig};

fn device() -> Device {
    Device::new(DeviceConfig::small())
}

// ---------------------------------------------------------------- radix sort

#[test]
fn radix_sort_empty_input() {
    let device = device();
    let mut keys: Vec<u32> = vec![];
    sort_keys(&device, &mut keys);
    assert!(keys.is_empty());

    let mut values: Vec<u32> = vec![];
    sort_pairs(&device, &mut keys, &mut values);
    assert!(keys.is_empty() && values.is_empty());
}

#[test]
fn radix_sort_single_element() {
    let device = device();
    let mut keys = vec![u32::MAX];
    let mut values = vec![7u32];
    sort_pairs(&device, &mut keys, &mut values);
    assert_eq!(keys, vec![u32::MAX]);
    assert_eq!(values, vec![7]);
}

#[test]
fn radix_sort_all_duplicate_keys_is_stable() {
    let device = device();
    let n = 3000u32;
    let mut keys = vec![42u32; n as usize];
    // Values record the original position; stability requires the order to
    // survive all four passes untouched.
    let mut values: Vec<u32> = (0..n).collect();
    sort_pairs(&device, &mut keys, &mut values);
    assert!(keys.iter().all(|&k| k == 42));
    assert_eq!(values, (0..n).collect::<Vec<u32>>());
}

#[test]
fn radix_sort_already_sorted_and_reverse_sorted() {
    let device = device();
    let expected: Vec<u32> = (0..5000).collect();

    let mut asc = expected.clone();
    sort_keys(&device, &mut asc);
    assert_eq!(asc, expected);

    let mut desc: Vec<u32> = expected.iter().rev().copied().collect();
    sort_keys(&device, &mut desc);
    assert_eq!(desc, expected);
}

// --------------------------------------------------------------------- merge

#[test]
fn merge_empty_sides() {
    let device = device();
    let empty: Vec<u32> = vec![];
    let data = vec![1u32, 3, 5];
    assert_eq!(merge_by(&device, &empty, &empty, |a, b| a < b), empty);
    assert_eq!(merge_by(&device, &data, &empty, |a, b| a < b), data);
    assert_eq!(merge_by(&device, &empty, &data, |a, b| a < b), data);
}

#[test]
fn merge_single_elements() {
    let device = device();
    assert_eq!(
        merge_by(&device, &[2u32], &[1u32], |a, b| a < b),
        vec![1, 2]
    );
    assert_eq!(
        merge_by(&device, &[1u32], &[2u32], |a, b| a < b),
        vec![1, 2]
    );
    // Equal single elements: the first input must win the tie.
    let (k, v) = merge_pairs_by(&device, &[5], &[100], &[5], &[200], |a, b| a < b);
    assert_eq!(k, vec![5, 5]);
    assert_eq!(v, vec![100, 200]);
}

#[test]
fn merge_all_duplicate_keys_prefers_first_input() {
    let device = device();
    let n = 2500usize;
    let a_vals: Vec<u32> = (0..n as u32).collect();
    let b_vals: Vec<u32> = (n as u32..2 * n as u32).collect();
    let keys = vec![9u32; n];
    let (merged_keys, merged_vals) =
        merge_pairs_by(&device, &keys, &a_vals, &keys, &b_vals, |a, b| a < b);
    assert!(merged_keys.iter().all(|&k| k == 9));
    // Every element of `a` precedes every element of `b`, in order.
    assert_eq!(merged_vals[..n], a_vals[..]);
    assert_eq!(merged_vals[n..], b_vals[..]);
}

#[test]
fn merge_sorted_and_reverse_interleavings() {
    let device = device();
    // Already-sorted relative to each other: all of `a` below all of `b`,
    // and the reverse.
    let low: Vec<u32> = (0..2000).collect();
    let high: Vec<u32> = (2000..4000).collect();
    let expected: Vec<u32> = (0..4000).collect();
    assert_eq!(merge_by(&device, &low, &high, |a, b| a < b), expected);
    assert_eq!(merge_by(&device, &high, &low, |a, b| a < b), expected);
}

// ---------------------------------------------------------------------- scan

#[test]
fn scan_empty_input() {
    let device = device();
    let (prefix, total) = exclusive_scan::<u32>(&device, &[]);
    assert!(prefix.is_empty());
    assert_eq!(total, 0);
    assert!(inclusive_scan::<u32>(&device, &[]).is_empty());
}

#[test]
fn scan_single_element() {
    let device = device();
    let (prefix, total) = exclusive_scan(&device, &[41u32]);
    assert_eq!(prefix, vec![0]);
    assert_eq!(total, 41);
    assert_eq!(inclusive_scan(&device, &[41u32]), vec![41]);
}

#[test]
fn scan_all_equal_elements() {
    let device = device();
    let input = vec![3u32; 4000];
    let (prefix, total) = exclusive_scan(&device, &input);
    assert_eq!(total, 12_000);
    assert!(prefix.iter().enumerate().all(|(i, &p)| p == 3 * i as u32));
    let inc = inclusive_scan(&device, &input);
    assert!(inc
        .iter()
        .enumerate()
        .all(|(i, &p)| p == 3 * (i as u32 + 1)));
}

#[test]
fn scan_matches_reference_on_monotone_inputs() {
    let device = device();
    // Ascending and descending inputs cross block-tile boundaries; compare
    // against a sequential prefix sum.
    for input in [
        (0..3000u32).collect::<Vec<_>>(),
        (0..3000u32).rev().collect::<Vec<_>>(),
    ] {
        let (prefix, total) = exclusive_scan(&device, &input);
        let mut acc = 0u32;
        for (i, &x) in input.iter().enumerate() {
            assert_eq!(prefix[i], acc, "exclusive prefix at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }
}

// ------------------------------------------------------------------- compact

#[test]
fn compact_empty_input() {
    let device = device();
    let out: Vec<u32> = compact_by_flag(&device, &[], &[]);
    assert!(out.is_empty());
    let (k, v) = compact_pairs_by_flag(&device, &[], &[], &[]);
    assert!(k.is_empty() && v.is_empty());
}

#[test]
fn compact_single_element() {
    let device = device();
    assert_eq!(compact_by_flag(&device, &[7u32], &[true]), vec![7]);
    assert!(compact_by_flag(&device, &[7u32], &[false]).is_empty());
}

#[test]
fn compact_all_kept_and_all_dropped() {
    let device = device();
    let data: Vec<u32> = (0..3000).collect();
    assert_eq!(compact_by_flag(&device, &data, &vec![true; 3000]), data);
    assert!(compact_by_flag(&device, &data, &vec![false; 3000]).is_empty());
}

#[test]
fn compact_preserves_relative_order() {
    let device = device();
    // Keep every third element of a descending sequence; compaction must be
    // a stable filter.
    let data: Vec<u32> = (0..3000u32).rev().collect();
    let flags: Vec<bool> = (0..3000).map(|i| i % 3 == 0).collect();
    let expected: Vec<u32> = data
        .iter()
        .zip(&flags)
        .filter(|(_, &f)| f)
        .map(|(&d, _)| d)
        .collect();
    assert_eq!(compact_by_flag(&device, &data, &flags), expected);
}
