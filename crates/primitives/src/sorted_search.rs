//! Sorted search (moderngpu `SortedSearch` equivalent): find the lower bound
//! of every element of a *sorted* needle array within a sorted haystack in a
//! single merge-like pass.
//!
//! The paper describes two ways to run a batch of lookups (§IV-B): the
//! *individual* approach (each thread binary-searches on its own — random
//! accesses, no cooperation) and the *bulk* approach (sort all queries, then
//! run a sorted search against each level — streaming accesses, but the
//! query sort must be paid first).  The GPU LSM uses the individual
//! approach; this primitive exists so the trade-off can be reproduced and
//! measured (see the `ablation` benchmarks and
//! `GpuLsm::lookup_bulk_sorted`).
//!
//! The algorithm is the standard merge-path style decomposition: needles are
//! cut into tiles; each tile's first needle is located in the haystack with
//! one binary search, after which the whole tile is resolved with a linear
//! two-pointer walk — so the haystack is read sequentially (coalesced)
//! instead of being probed randomly.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

/// For each element of the sorted `needles`, the index of the first element
/// of the sorted `haystack` that is not less than it (lower bound).
///
/// `less` must be the ordering both inputs are sorted by.
pub fn sorted_lower_bound<T, F>(
    device: &Device,
    haystack: &[T],
    needles: &[T],
    less: F,
) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let kernel = "sorted_lower_bound";
    device.metrics().record_launch(kernel);
    debug_assert!(
        needles.windows(2).all(|w| !less(&w[1], &w[0])),
        "needles must be sorted"
    );

    if needles.is_empty() {
        return Vec::new();
    }
    let tile = device.preferred_tile(std::mem::size_of::<T>()).max(256);
    // Streaming traffic: every needle read once, haystack read at most once
    // per pass plus one binary search per tile.
    device.metrics().record_read(
        kernel,
        ((needles.len() + haystack.len()) * std::mem::size_of::<T>()) as u64,
        AccessPattern::Coalesced,
    );
    device.metrics().record_scattered_probes(
        kernel,
        (needles.len().div_ceil(tile) as u64)
            * (usize::BITS - haystack.len().leading_zeros()) as u64,
        std::mem::size_of::<T>() as u64,
    );

    let mut out = vec![0usize; needles.len()];
    out.par_chunks_mut(tile)
        .zip(needles.par_chunks(tile))
        .for_each(|(out_chunk, needle_chunk)| {
            // Locate the first needle of the tile with one binary search,
            // then walk forward for the rest of the tile.
            let mut pos = crate::search::lower_bound_by(haystack, &needle_chunk[0], &less);
            for (o, needle) in out_chunk.iter_mut().zip(needle_chunk.iter()) {
                while pos < haystack.len() && less(&haystack[pos], needle) {
                    pos += 1;
                }
                *o = pos;
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn lt(a: &u32, b: &u32) -> bool {
        a < b
    }

    #[test]
    fn matches_per_query_binary_search() {
        let device = device();
        let haystack: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let needles: Vec<u32> = (0..5_000).map(|i| i * 7 % 30_000).collect::<Vec<_>>();
        let mut sorted_needles = needles;
        sorted_needles.sort_unstable();
        let got = sorted_lower_bound(&device, &haystack, &sorted_needles, lt);
        for (i, n) in sorted_needles.iter().enumerate() {
            assert_eq!(got[i], haystack.partition_point(|x| x < n));
        }
    }

    #[test]
    fn handles_empty_inputs() {
        let device = device();
        assert!(sorted_lower_bound(&device, &[1u32, 2], &[], lt).is_empty());
        let out = sorted_lower_bound(&device, &[] as &[u32], &[1, 2], lt);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn needles_beyond_haystack_map_to_len() {
        let device = device();
        let haystack = vec![10u32, 20, 30];
        let needles = vec![0u32, 15, 30, 99];
        let out = sorted_lower_bound(&device, &haystack, &needles, lt);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_partition_point(
            mut haystack in proptest::collection::vec(0u32..1000, 0..600),
            mut needles in proptest::collection::vec(0u32..1000, 0..300)
        ) {
            let device = device();
            haystack.sort_unstable();
            needles.sort_unstable();
            let got = sorted_lower_bound(&device, &haystack, &needles, lt);
            for (i, n) in needles.iter().enumerate() {
                prop_assert_eq!(got[i], haystack.partition_point(|x| x < n));
            }
        }
    }
}
