//! Fence arrays: sparse samples over a sorted array that narrow every
//! binary search to one small window, plus the level's min/max keys.
//!
//! Each occupied LSM level is a sorted array of up to `b·2^i` keys; a
//! lookup's binary search over it is a chain of data-dependent scattered
//! reads (the paper's stated lookup bottleneck).  A fence array samples
//! every [`DEFAULT_FENCE_INTERVAL`]-th key and keeps the samples in
//! **Eytzinger (BFS) layout**: the top of the implicit tree occupies a few
//! contiguous cache lines, so the first probes of every search hit the same
//! hot lines instead of striding across the array.  Searching the fences
//! yields a window of at most one sample interval; only that window is then
//! binary-searched in the full array.
//!
//! The windows are exact, not probabilistic: for any probe `q`, the true
//! `lower_bound`/`upper_bound` position provably lies inside the returned
//! window, so fence-accelerated searches return bit-identical indices to
//! full-array searches.

use std::sync::Arc;

/// Default sampling interval: one fence per 256 keys, i.e. 0.4 % memory
/// overhead at 4-byte keys and a ≤ 256-element final search window.
pub const DEFAULT_FENCE_INTERVAL: usize = 256;

#[derive(Debug)]
struct FenceShared {
    /// Sampling interval (number of indexed elements per fence).
    interval: usize,
    /// Length of the indexed (full) array.
    len: usize,
    /// Smallest key of the indexed array (`key_at(0)`).
    min_key: u32,
    /// Largest key of the indexed array (`key_at(len - 1)`).
    max_key: u32,
    /// Sampled keys in 1-based Eytzinger order (`eytz[0]` unused).
    eytz: Vec<u32>,
    /// Sorted rank of the sample stored at each Eytzinger slot.
    ranks: Vec<u32>,
    /// Number of samples (`ceil(len / interval)`).
    num_samples: usize,
}

/// A fence array over a sorted sequence of `u32` keys.
///
/// Cloning is cheap (the samples are shared); the structure is immutable
/// once built.
#[derive(Debug, Clone)]
pub struct FenceArray {
    shared: Arc<FenceShared>,
}

/// Recursively lay `sorted` out in Eytzinger order rooted at slot `k`.
fn eytzinger_fill(sorted: &[u32], eytz: &mut [u32], ranks: &mut [u32], k: usize, next: &mut usize) {
    if k < eytz.len() {
        eytzinger_fill(sorted, eytz, ranks, 2 * k, next);
        eytz[k] = sorted[*next];
        ranks[k] = *next as u32;
        *next += 1;
        eytzinger_fill(sorted, eytz, ranks, 2 * k + 1, next);
    }
}

impl FenceArray {
    /// Build fences over a sorted array of `len` keys accessed through
    /// `key_at`, sampling every `interval`-th key (position 0 first).
    /// Returns `None` for an empty array or a zero interval.
    pub fn build_with(len: usize, interval: usize, key_at: impl Fn(usize) -> u32) -> Option<Self> {
        if len == 0 || interval == 0 {
            return None;
        }
        let sorted: Vec<u32> = (0..len).step_by(interval).map(&key_at).collect();
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "fence samples must be non-decreasing"
        );
        let num_samples = sorted.len();
        let mut eytz = vec![0u32; num_samples + 1];
        let mut ranks = vec![0u32; num_samples + 1];
        let mut next = 0usize;
        eytzinger_fill(&sorted, &mut eytz, &mut ranks, 1, &mut next);
        debug_assert_eq!(next, num_samples);
        Some(FenceArray {
            shared: Arc::new(FenceShared {
                interval,
                len,
                min_key: key_at(0),
                max_key: key_at(len - 1),
                eytz,
                ranks,
                num_samples,
            }),
        })
    }

    /// Build fences over a slice at the default interval.
    pub fn from_sorted(keys: &[u32]) -> Option<Self> {
        Self::build_with(keys.len(), DEFAULT_FENCE_INTERVAL, |i| keys[i])
    }

    /// Number of samples satisfying `pred` (a sorted-prefix predicate such
    /// as `< q` or `<= q`), found with a branch-light Eytzinger descent.
    #[inline]
    fn partition_point(&self, pred: impl Fn(u32) -> bool) -> usize {
        let s = &*self.shared;
        let n = s.num_samples;
        let mut k = 1usize;
        while k <= n {
            k = 2 * k + usize::from(pred(s.eytz[k]));
        }
        // Undo the descent: drop the trailing "went right" moves plus the
        // final step; slot 0 means every sample satisfied the predicate.
        k >>= k.trailing_ones() + 1;
        if k == 0 {
            n
        } else {
            s.ranks[k] as usize
        }
    }

    /// Window translation shared by the two bound searches: given `t`
    /// samples before the answer, the true bound position lies in
    /// `[lo, hi]`, so binary-searching `keys[lo..hi]` and adding `lo`
    /// reproduces the full-array result exactly.
    #[inline]
    fn window_from(&self, t: usize) -> (usize, usize) {
        let s = &*self.shared;
        let lo = if t == 0 { 0 } else { (t - 1) * s.interval + 1 };
        let hi = if t == s.num_samples {
            s.len
        } else {
            t * s.interval
        };
        (lo, hi)
    }

    /// Window `[lo, hi]` bracketing `lower_bound(q)` (the first index whose
    /// key is `>= q`); search `keys[lo..hi]` and add `lo`.
    #[inline]
    pub fn lower_bound_window(&self, q: u32) -> (usize, usize) {
        self.window_from(self.partition_point(|s| s < q))
    }

    /// Window `[lo, hi]` bracketing `upper_bound(q)` (the first index whose
    /// key is `> q`).
    #[inline]
    pub fn upper_bound_window(&self, q: u32) -> (usize, usize) {
        self.window_from(self.partition_point(|s| s <= q))
    }

    /// Smallest key of the indexed array.
    pub fn min_key(&self) -> u32 {
        self.shared.min_key
    }

    /// Largest key of the indexed array.
    pub fn max_key(&self) -> u32 {
        self.shared.max_key
    }

    /// The sampling interval.
    pub fn interval(&self) -> usize {
        self.shared.interval
    }

    /// Number of sampled fences.
    pub fn num_samples(&self) -> usize {
        self.shared.num_samples
    }

    /// Memory footprint of the samples (Eytzinger array + ranks).
    pub fn size_bytes(&self) -> usize {
        (self.shared.eytz.len() + self.shared.ranks.len()) * std::mem::size_of::<u32>()
    }

    /// Worst-case binary-search probes inside a fence window (the window
    /// never exceeds one interval), used for traffic accounting.
    pub fn window_probe_depth(&self) -> u32 {
        usize::BITS - self.shared.interval.leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_windows(keys: &[u32], fences: &FenceArray, probes: impl Iterator<Item = u32>) {
        for q in probes {
            let (lo, hi) = fences.lower_bound_window(q);
            assert!(lo <= hi && hi <= keys.len(), "bad window [{lo}, {hi})");
            let local = keys[lo..hi].partition_point(|&k| k < q);
            assert_eq!(
                lo + local,
                keys.partition_point(|&k| k < q),
                "lower_bound mismatch for probe {q}"
            );
            let (lo, hi) = fences.upper_bound_window(q);
            let local = keys[lo..hi].partition_point(|&k| k <= q);
            assert_eq!(
                lo + local,
                keys.partition_point(|&k| k <= q),
                "upper_bound mismatch for probe {q}"
            );
        }
    }

    #[test]
    fn windows_reproduce_full_array_bounds() {
        let keys: Vec<u32> = (0..10_000u32).map(|i| i * 3).collect();
        let fences = FenceArray::from_sorted(&keys).unwrap();
        check_windows(&keys, &fences, (0..30_050).step_by(7));
        assert_eq!(fences.min_key(), 0);
        assert_eq!(fences.max_key(), 29_997);
        assert_eq!(fences.interval(), DEFAULT_FENCE_INTERVAL);
        assert_eq!(fences.num_samples(), 10_000usize.div_ceil(256));
    }

    #[test]
    fn duplicate_runs_across_sample_boundaries_are_handled() {
        // Long runs of equal keys straddle many sample positions; bounds
        // must still match the full-array search on both sides of the run.
        let mut keys = vec![5u32; 1000];
        keys.extend(vec![9u32; 1000]);
        keys.extend((10..2000u32).collect::<Vec<_>>());
        let fences = FenceArray::build_with(keys.len(), 64, |i| keys[i]).unwrap();
        check_windows(
            &keys,
            &fences,
            [0, 4, 5, 6, 8, 9, 10, 1999, 2000, 3000].into_iter(),
        );
    }

    #[test]
    fn tiny_and_degenerate_inputs() {
        assert!(FenceArray::from_sorted(&[]).is_none());
        assert!(FenceArray::build_with(10, 0, |_| 0).is_none());
        let keys = vec![42u32];
        let fences = FenceArray::from_sorted(&keys).unwrap();
        check_windows(&keys, &fences, [0, 41, 42, 43].into_iter());
        assert_eq!(fences.min_key(), 42);
        assert_eq!(fences.max_key(), 42);
        assert_eq!(fences.num_samples(), 1);
    }

    #[test]
    fn interval_one_samples_everything() {
        let keys: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let fences = FenceArray::build_with(keys.len(), 1, |i| keys[i]).unwrap();
        assert_eq!(fences.num_samples(), 100);
        check_windows(&keys, &fences, 0..201);
    }

    #[test]
    fn exhaustive_small_arrays() {
        // Every length up to a few intervals, every probe in domain: the
        // window property must hold unconditionally.
        for len in 1..70usize {
            let keys: Vec<u32> = (0..len as u32).map(|i| i / 3 * 4).collect();
            for interval in [1, 2, 7, 16] {
                let fences = FenceArray::build_with(len, interval, |i| keys[i]).unwrap();
                check_windows(&keys, &fences, 0..keys[len - 1] + 3);
            }
        }
    }

    #[test]
    fn size_and_probe_depth_reporting() {
        let keys: Vec<u32> = (0..5000).collect();
        let fences = FenceArray::from_sorted(&keys).unwrap();
        assert!(fences.size_bytes() > 0);
        assert_eq!(fences.window_probe_depth(), 9); // log2(256) + 1
    }
}
