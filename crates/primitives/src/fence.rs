//! Fence arrays: sparse samples over a sorted array that narrow every
//! binary search to one small window, plus the level's min/max keys.
//!
//! Each occupied LSM level is a sorted array of up to `b·2^i` keys; a
//! lookup's binary search over it is a chain of data-dependent scattered
//! reads (the paper's stated lookup bottleneck).  A fence array samples
//! every [`DEFAULT_FENCE_INTERVAL`]-th key and keeps the samples in
//! **Eytzinger (BFS) layout**: the top of the implicit tree occupies a few
//! contiguous cache lines, so the first probes of every search hit the same
//! hot lines instead of striding across the array.  Searching the fences
//! yields a window of at most one sample interval; only that window is then
//! binary-searched in the full array.
//!
//! The windows are exact, not probabilistic: for any probe `q`, the true
//! `lower_bound`/`upper_bound` position provably lies inside the returned
//! window, so fence-accelerated searches return bit-identical indices to
//! full-array searches.
//!
//! ## Merging fences
//!
//! When two sorted runs are merged (the LSM carry chain), the output's
//! fences need not be resampled from the merged array: every input sample
//! lands at a computable position in the merged output (its own position
//! plus the count of the *other* run's elements placed before it), and the
//! union of the two sample sets — now at mildly irregular spacing — is a
//! valid fence array for the output.  [`FenceArray::merge_with`] implements
//! exactly that; samples therefore carry an explicit position array rather
//! than assuming uniform `t · interval` spacing.  Windows stay exact; their
//! worst-case width after a merge is the *sum* of the inputs' widths, which
//! callers bound by rebuilding when it grows past their tolerance.

use std::sync::Arc;

/// Default sampling interval: one fence per 256 keys, i.e. 0.4 % memory
/// overhead at 4-byte keys and a ≤ 256-element final search window.
pub const DEFAULT_FENCE_INTERVAL: usize = 256;

#[derive(Debug)]
struct FenceShared {
    /// Nominal sampling interval (for merged fences: the larger input's).
    interval: usize,
    /// Length of the indexed (full) array.
    len: usize,
    /// Smallest key of the indexed array (`key_at(0)`).
    min_key: u32,
    /// Largest key of the indexed array (`key_at(len - 1)`).
    max_key: u32,
    /// Sampled keys in 1-based Eytzinger order (`eytz[0]` unused).
    eytz: Vec<u32>,
    /// Sorted rank of the sample stored at each Eytzinger slot.
    ranks: Vec<u32>,
    /// Position in the indexed array of each sample, in sorted order
    /// (`positions[t]` is where the rank-`t` sample lives; strictly
    /// increasing, `positions[0]` need not be 0 only for merged fences).
    positions: Vec<u32>,
    /// Number of samples.
    num_samples: usize,
    /// Worst-case search-window width (uniform build: the interval;
    /// merged fences: the widest gap between adjacent samples).
    max_window: usize,
}

/// A fence array over a sorted sequence of `u32` keys.
///
/// Cloning is cheap (the samples are shared); the structure is immutable
/// once built.
#[derive(Debug, Clone)]
pub struct FenceArray {
    shared: Arc<FenceShared>,
}

/// Recursively lay `sorted` out in Eytzinger order rooted at slot `k`.
fn eytzinger_fill(sorted: &[u32], eytz: &mut [u32], ranks: &mut [u32], k: usize, next: &mut usize) {
    if k < eytz.len() {
        eytzinger_fill(sorted, eytz, ranks, 2 * k, next);
        eytz[k] = sorted[*next];
        ranks[k] = *next as u32;
        *next += 1;
        eytzinger_fill(sorted, eytz, ranks, 2 * k + 1, next);
    }
}

impl FenceArray {
    /// Build fences over a sorted array of `len` keys accessed through
    /// `key_at`, sampling every `interval`-th key (position 0 first).
    /// Returns `None` for an empty array or a zero interval.
    pub fn build_with(len: usize, interval: usize, key_at: impl Fn(usize) -> u32) -> Option<Self> {
        if len == 0 || interval == 0 {
            return None;
        }
        let sorted: Vec<u32> = (0..len).step_by(interval).map(&key_at).collect();
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "fence samples must be non-decreasing"
        );
        let positions: Vec<u32> = (0..len).step_by(interval).map(|p| p as u32).collect();
        Some(Self::assemble(
            sorted,
            positions,
            len,
            key_at(0),
            key_at(len - 1),
            interval,
        ))
    }

    /// Shared assembly: Eytzinger-fill the sorted samples, derive the
    /// worst-case window width from the (possibly irregular) positions.
    fn assemble(
        sorted: Vec<u32>,
        positions: Vec<u32>,
        len: usize,
        min_key: u32,
        max_key: u32,
        interval: usize,
    ) -> FenceArray {
        debug_assert_eq!(sorted.len(), positions.len());
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "fence sample positions must be strictly increasing"
        );
        let num_samples = sorted.len();
        // Widest window any bound search can be handed: before the first
        // sample, between adjacent samples, or after the last one.
        let mut max_window = positions[0] as usize;
        for w in positions.windows(2) {
            max_window = max_window.max((w[1] - w[0]) as usize);
        }
        max_window = max_window.max(len - positions[num_samples - 1] as usize);
        let mut eytz = vec![0u32; num_samples + 1];
        let mut ranks = vec![0u32; num_samples + 1];
        let mut next = 0usize;
        eytzinger_fill(&sorted, &mut eytz, &mut ranks, 1, &mut next);
        debug_assert_eq!(next, num_samples);
        FenceArray {
            shared: Arc::new(FenceShared {
                interval,
                len,
                min_key,
                max_key,
                eytz,
                ranks,
                positions,
                num_samples,
                max_window,
            }),
        }
    }

    /// Build fences over a slice at the default interval.
    pub fn from_sorted(keys: &[u32]) -> Option<Self> {
        Self::build_with(keys.len(), DEFAULT_FENCE_INTERVAL, |i| keys[i])
    }

    /// Number of samples satisfying `pred` (a sorted-prefix predicate such
    /// as `< q` or `<= q`), found with a branch-light Eytzinger descent.
    #[inline]
    fn partition_point(&self, pred: impl Fn(u32) -> bool) -> usize {
        let s = &*self.shared;
        let n = s.num_samples;
        let mut k = 1usize;
        while k <= n {
            k = 2 * k + usize::from(pred(s.eytz[k]));
        }
        // Undo the descent: drop the trailing "went right" moves plus the
        // final step; slot 0 means every sample satisfied the predicate.
        k >>= k.trailing_ones() + 1;
        if k == 0 {
            n
        } else {
            s.ranks[k] as usize
        }
    }

    /// Window translation shared by the two bound searches: given `t`
    /// samples before the answer, the true bound position lies in
    /// `[lo, hi]`, so binary-searching `keys[lo..hi]` and adding `lo`
    /// reproduces the full-array result exactly.
    #[inline]
    fn window_from(&self, t: usize) -> (usize, usize) {
        let s = &*self.shared;
        let lo = if t == 0 {
            0
        } else {
            s.positions[t - 1] as usize + 1
        };
        let hi = if t == s.num_samples {
            s.len
        } else {
            s.positions[t] as usize
        };
        (lo, hi)
    }

    /// Window `[lo, hi]` bracketing `lower_bound(q)` (the first index whose
    /// key is `>= q`); search `keys[lo..hi]` and add `lo`.
    #[inline]
    pub fn lower_bound_window(&self, q: u32) -> (usize, usize) {
        self.window_from(self.partition_point(|s| s < q))
    }

    /// Window `[lo, hi]` bracketing `upper_bound(q)` (the first index whose
    /// key is `> q`).
    #[inline]
    pub fn upper_bound_window(&self, q: u32) -> (usize, usize) {
        self.window_from(self.partition_point(|s| s <= q))
    }

    /// Smallest key of the indexed array.
    pub fn min_key(&self) -> u32 {
        self.shared.min_key
    }

    /// Largest key of the indexed array.
    pub fn max_key(&self) -> u32 {
        self.shared.max_key
    }

    /// The nominal sampling interval (for merged fences, the larger of the
    /// inputs' intervals; actual spacing may be irregular — see
    /// [`FenceArray::max_window`]).
    pub fn interval(&self) -> usize {
        self.shared.interval
    }

    /// Length of the indexed (full) array.
    pub fn indexed_len(&self) -> usize {
        self.shared.len
    }

    /// Number of sampled fences.
    pub fn num_samples(&self) -> usize {
        self.shared.num_samples
    }

    /// Worst-case width of a search window (uniform build: the interval).
    pub fn max_window(&self) -> usize {
        self.shared.max_window
    }

    /// Memory footprint of the samples (Eytzinger array + ranks +
    /// positions).
    pub fn size_bytes(&self) -> usize {
        (self.shared.eytz.len() + self.shared.ranks.len() + self.shared.positions.len())
            * std::mem::size_of::<u32>()
    }

    /// Worst-case binary-search probes inside a fence window, used for
    /// traffic accounting.
    pub fn window_probe_depth(&self) -> u32 {
        usize::BITS - self.shared.max_window.leading_zeros()
    }

    /// The samples in sorted order as `(key, position)` pairs — the raw
    /// material for [`FenceArray::merge_with`].
    pub fn sorted_samples(&self) -> Vec<(u32, u32)> {
        let s = &*self.shared;
        let mut out = vec![(0u32, 0u32); s.num_samples];
        for k in 1..=s.num_samples {
            let t = s.ranks[k] as usize;
            out[t] = (s.eytz[k], s.positions[t]);
        }
        out
    }

    /// Build the fence array of the sorted merge of two runs `A` and `B`
    /// **without touching the merged array**, from the inputs' fences alone
    /// plus two rank oracles into the pre-merge runs:
    ///
    /// * `b_rank_before(k)` — number of `B` elements with key `< k`
    ///   (a lower bound in `B`);
    /// * `a_rank_through(k)` — number of `A` elements with key `<= k`
    ///   (an upper bound in `A`).
    ///
    /// The merge is assumed stable with ties taken from `A` first (the LSM
    /// carry chain's newest-buffer-wins order): an `A` element at position
    /// `i` lands at `i + b_rank_before(key)` in the output, a `B` element
    /// at position `j` lands at `j + a_rank_through(key)`.  Every input
    /// sample is therefore a sample of the output at a known position, and
    /// the union of the two sample sets (merged by output position) is an
    /// exact fence array for the output: windows still provably bracket
    /// every bound, they are just up to `a.max_window() + b.max_window()`
    /// wide instead of one interval.
    pub fn merge_with(
        a: &FenceArray,
        b: &FenceArray,
        b_rank_before: impl Fn(u32) -> usize,
        a_rank_through: impl Fn(u32) -> usize,
    ) -> FenceArray {
        let sa = a.sorted_samples();
        let sb = b.sorted_samples();
        // Translate both sample lists into output positions, then merge by
        // position (positions are distinct: each sample is a distinct
        // element of the output).
        let ta: Vec<(u32, u32)> = sa
            .into_iter()
            .map(|(k, p)| (k, p + b_rank_before(k) as u32))
            .collect();
        let tb: Vec<(u32, u32)> = sb
            .into_iter()
            .map(|(k, p)| (k, p + a_rank_through(k) as u32))
            .collect();
        let mut keys = Vec::with_capacity(ta.len() + tb.len());
        let mut positions = Vec::with_capacity(ta.len() + tb.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < ta.len() || j < tb.len() {
            let take_a = j == tb.len() || (i < ta.len() && ta[i].1 < tb[j].1);
            let (k, p) = if take_a { ta[i] } else { tb[j] };
            i += usize::from(take_a);
            j += usize::from(!take_a);
            keys.push(k);
            positions.push(p);
        }
        Self::assemble(
            keys,
            positions,
            a.shared.len + b.shared.len,
            a.min_key().min(b.min_key()),
            a.max_key().max(b.max_key()),
            a.shared.interval.max(b.shared.interval),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_windows(keys: &[u32], fences: &FenceArray, probes: impl Iterator<Item = u32>) {
        for q in probes {
            let (lo, hi) = fences.lower_bound_window(q);
            assert!(lo <= hi && hi <= keys.len(), "bad window [{lo}, {hi})");
            let local = keys[lo..hi].partition_point(|&k| k < q);
            assert_eq!(
                lo + local,
                keys.partition_point(|&k| k < q),
                "lower_bound mismatch for probe {q}"
            );
            let (lo, hi) = fences.upper_bound_window(q);
            let local = keys[lo..hi].partition_point(|&k| k <= q);
            assert_eq!(
                lo + local,
                keys.partition_point(|&k| k <= q),
                "upper_bound mismatch for probe {q}"
            );
        }
    }

    #[test]
    fn windows_reproduce_full_array_bounds() {
        let keys: Vec<u32> = (0..10_000u32).map(|i| i * 3).collect();
        let fences = FenceArray::from_sorted(&keys).unwrap();
        check_windows(&keys, &fences, (0..30_050).step_by(7));
        assert_eq!(fences.min_key(), 0);
        assert_eq!(fences.max_key(), 29_997);
        assert_eq!(fences.interval(), DEFAULT_FENCE_INTERVAL);
        assert_eq!(fences.num_samples(), 10_000usize.div_ceil(256));
    }

    #[test]
    fn duplicate_runs_across_sample_boundaries_are_handled() {
        // Long runs of equal keys straddle many sample positions; bounds
        // must still match the full-array search on both sides of the run.
        let mut keys = vec![5u32; 1000];
        keys.extend(vec![9u32; 1000]);
        keys.extend((10..2000u32).collect::<Vec<_>>());
        let fences = FenceArray::build_with(keys.len(), 64, |i| keys[i]).unwrap();
        check_windows(
            &keys,
            &fences,
            [0, 4, 5, 6, 8, 9, 10, 1999, 2000, 3000].into_iter(),
        );
    }

    #[test]
    fn tiny_and_degenerate_inputs() {
        assert!(FenceArray::from_sorted(&[]).is_none());
        assert!(FenceArray::build_with(10, 0, |_| 0).is_none());
        let keys = vec![42u32];
        let fences = FenceArray::from_sorted(&keys).unwrap();
        check_windows(&keys, &fences, [0, 41, 42, 43].into_iter());
        assert_eq!(fences.min_key(), 42);
        assert_eq!(fences.max_key(), 42);
        assert_eq!(fences.num_samples(), 1);
    }

    #[test]
    fn interval_one_samples_everything() {
        let keys: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let fences = FenceArray::build_with(keys.len(), 1, |i| keys[i]).unwrap();
        assert_eq!(fences.num_samples(), 100);
        check_windows(&keys, &fences, 0..201);
    }

    #[test]
    fn exhaustive_small_arrays() {
        // Every length up to a few intervals, every probe in domain: the
        // window property must hold unconditionally.
        for len in 1..70usize {
            let keys: Vec<u32> = (0..len as u32).map(|i| i / 3 * 4).collect();
            for interval in [1, 2, 7, 16] {
                let fences = FenceArray::build_with(len, interval, |i| keys[i]).unwrap();
                check_windows(&keys, &fences, 0..keys[len - 1] + 3);
            }
        }
    }

    #[test]
    fn size_and_probe_depth_reporting() {
        let keys: Vec<u32> = (0..5000).collect();
        let fences = FenceArray::from_sorted(&keys).unwrap();
        assert!(fences.size_bytes() > 0);
        assert_eq!(fences.window_probe_depth(), 9); // log2(256) + 1
        assert_eq!(fences.max_window(), DEFAULT_FENCE_INTERVAL);
        assert_eq!(fences.indexed_len(), 5000);
    }

    #[test]
    fn sorted_samples_round_trip() {
        let keys: Vec<u32> = (0..1000u32).map(|i| i * 2).collect();
        let fences = FenceArray::build_with(keys.len(), 64, |i| keys[i]).unwrap();
        let samples = fences.sorted_samples();
        assert_eq!(samples.len(), fences.num_samples());
        for (t, &(k, p)) in samples.iter().enumerate() {
            assert_eq!(p as usize, t * 64);
            assert_eq!(k, keys[p as usize]);
        }
    }

    /// Stable merge with ties taken from `a` first — the carry chain's
    /// newest-buffer-wins order the rank oracles of `merge_with` assume.
    fn ref_merge(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            if j == b.len() || (i < a.len() && a[i] <= b[j]) {
                out.push(a[i]);
                i += 1;
            } else {
                out.push(b[j]);
                j += 1;
            }
        }
        out
    }

    fn check_merge(a: &[u32], b: &[u32], interval: usize) {
        let fa = FenceArray::build_with(a.len(), interval, |i| a[i]).unwrap();
        let fb = FenceArray::build_with(b.len(), interval, |i| b[i]).unwrap();
        let merged = ref_merge(a, b);
        let fences = FenceArray::merge_with(
            &fa,
            &fb,
            |k| b.partition_point(|&x| x < k),
            |k| a.partition_point(|&x| x <= k),
        );
        assert_eq!(fences.indexed_len(), merged.len());
        assert_eq!(fences.min_key(), merged[0]);
        assert_eq!(fences.max_key(), *merged.last().unwrap());
        assert!(fences.max_window() <= fa.max_window() + fb.max_window());
        // Every sample really is the key at its claimed position.
        for (k, p) in fences.sorted_samples() {
            assert_eq!(merged[p as usize], k, "sample at position {p}");
        }
        let max_probe = merged.last().unwrap().saturating_add(3);
        check_windows(&merged, &fences, (0..max_probe).step_by(7).chain([0]));
    }

    #[test]
    fn merged_fences_reproduce_full_array_bounds() {
        // Interleaved, disjoint, duplicate-heavy and skewed run pairs.
        let a: Vec<u32> = (0..3000u32).map(|i| i * 4).collect();
        let b: Vec<u32> = (0..2000u32).map(|i| i * 6 + 1).collect();
        check_merge(&a, &b, 256);
        check_merge(&a, &b, 64);
        let lo: Vec<u32> = (0..1500u32).collect();
        let hi: Vec<u32> = (5000..6000u32).collect();
        check_merge(&lo, &hi, 128);
        check_merge(&hi, &lo, 128);
        let dups_a = vec![7u32; 900];
        let mut dups_b = vec![7u32; 500];
        dups_b.extend((8..900u32).collect::<Vec<_>>());
        check_merge(&dups_a, &dups_b, 64);
        let tiny = vec![42u32];
        check_merge(&tiny, &a, 256);
        check_merge(&a, &tiny, 256);
    }

    #[test]
    fn chained_merges_stay_exact() {
        // Three carry steps: ((a + b) + c) with the intermediate fences
        // merged, never rebuilt — windows must stay exact throughout.
        let a: Vec<u32> = (0..500u32).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..500u32).map(|i| i * 3 + 1).collect();
        let c: Vec<u32> = (0..1000u32).map(|i| i * 2).collect();
        let fa = FenceArray::build_with(a.len(), 64, |i| a[i]).unwrap();
        let fb = FenceArray::build_with(b.len(), 64, |i| b[i]).unwrap();
        let ab = ref_merge(&a, &b);
        let fab = FenceArray::merge_with(
            &fa,
            &fb,
            |k| b.partition_point(|&x| x < k),
            |k| a.partition_point(|&x| x <= k),
        );
        let fc = FenceArray::build_with(c.len(), 64, |i| c[i]).unwrap();
        let abc = ref_merge(&ab, &c);
        let fabc = FenceArray::merge_with(
            &fab,
            &fc,
            |k| c.partition_point(|&x| x < k),
            |k| ab.partition_point(|&x| x <= k),
        );
        assert!(fabc.max_window() <= 3 * 64);
        check_windows(&abc, &fabc, (0..2010).step_by(3));
    }
}
