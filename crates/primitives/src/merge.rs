//! Stable parallel merge of two sorted sequences under a caller-supplied
//! comparator (moderngpu `Merge` equivalent).
//!
//! The LSM's insertion path repeatedly merges the incoming (sorted) buffer
//! with a full level (paper Fig. 3 line 14).  The comparator compares only
//! the original 31-bit key — the status bit is ignored — and the merge must
//! be stable in a specific sense: **on ties, elements of the first input
//! (the more recently inserted buffer) come first**, which preserves the
//! ordering invariants of §III-D.
//!
//! The implementation is the classical *merge path* decomposition: the
//! output is cut into tiles; for each tile boundary (a diagonal of the merge
//! grid) a binary search finds how many elements of `a` and `b` precede the
//! diagonal under the tie-breaking rule; each tile is then merged
//! sequentially and independently, so all tiles run in parallel.

use gpu_sim::Device;
use rayon::prelude::*;

use crate::util::SharedSlice;

/// Output size below which one sequential merge wins: under the pool's own
/// adaptive cutoff the tiled path cannot parallelize anyway, so its split
/// binary searches, per-tile scratch vectors and (for pairs) tuple round
/// trips are pure overhead.  Floored at 4Ki for hosts whose calibrated
/// cutoff is very low.
fn sequential_merge_cutoff() -> usize {
    rayon::sequential_cutoff().max(1 << 12)
}

/// Record one merge launch plus its streaming traffic.
fn record_merge_traffic(device: &Device, n: usize, elem_bytes: usize) {
    crate::util::record_streaming(device, "merge", n, elem_bytes);
}

/// Find the merge-path split for diagonal `diag`: the number of elements
/// taken from `a` when exactly `diag` output elements have been produced,
/// with ties favouring `a`.
///
/// `less(x, y)` must be a strict weak ordering ("x sorts before y").
fn merge_path<T, F>(a: &[T], b: &[T], diag: usize, less: &F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] vs b[diag - 1 - mid]: if b element is strictly smaller, the
        // split point must include fewer `a` elements after mid; otherwise
        // (a <= b, i.e. tie or a smaller) `a` wins and the split moves right.
        if less(&b[diag - 1 - mid], &a[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Sequentially merge `a` and `b` into `out`, ties favouring `a`.
fn serial_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j, mut o) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        // Take from b only if strictly smaller: ties go to a.  Selecting
        // with arithmetic instead of a branch lets the compiler emit
        // conditional moves; on random keys the branch is a coin flip, and
        // the mispredictions would otherwise dominate the loop.
        let take_b = less(&b[j], &a[i]);
        out[o] = if take_b { b[j] } else { a[i] };
        i += usize::from(!take_b);
        j += usize::from(take_b);
        o += 1;
    }
    // Exactly one of the tails is non-empty; bulk-copy it.
    out[o..o + (a.len() - i)].copy_from_slice(&a[i..]);
    o += a.len() - i;
    out[o..].copy_from_slice(&b[j..]);
}

/// Raw core of the sequential key/value merge, ties favouring `a`, for
/// unequal-length inputs: branchless take-a/take-b selection (on random
/// keys the branch is a coin flip and mispredictions would dominate) and
/// unchecked indexing (the loop conditions already bound `i` and `j`).
///
/// # Safety
/// `out_keys`/`out_vals` must each point at `a_keys.len() + b_keys.len()`
/// writable `u32` slots (initialized or not) that do not overlap any input.
/// `o = i + j` takes each value in `0..n` exactly once across the main loop
/// and the two tail copies (i ≤ a.len(), j ≤ b.len(), n = a.len() +
/// b.len()), so every output slot is written exactly once; all source reads
/// are bounded by the loop conditions / tail lengths.
unsafe fn seq_merge_pairs_raw<F>(
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    out_keys: *mut u32,
    out_vals: *mut u32,
    less: &F,
) where
    F: Fn(&u32, &u32) -> bool,
{
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < a_keys.len() && j < b_keys.len() {
        // Take from b only if strictly smaller: ties go to a.
        let take_b = less(b_keys.get_unchecked(j), a_keys.get_unchecked(i));
        *out_keys.add(o) = if take_b {
            *b_keys.get_unchecked(j)
        } else {
            *a_keys.get_unchecked(i)
        };
        *out_vals.add(o) = if take_b {
            *b_vals.get_unchecked(j)
        } else {
            *a_vals.get_unchecked(i)
        };
        i += usize::from(!take_b);
        j += usize::from(take_b);
        o += 1;
    }
    std::ptr::copy_nonoverlapping(a_keys.as_ptr().add(i), out_keys.add(o), a_keys.len() - i);
    std::ptr::copy_nonoverlapping(a_vals.as_ptr().add(i), out_vals.add(o), a_vals.len() - i);
    let o = o + (a_keys.len() - i);
    std::ptr::copy_nonoverlapping(b_keys.as_ptr().add(j), out_keys.add(o), b_keys.len() - j);
    std::ptr::copy_nonoverlapping(b_vals.as_ptr().add(j), out_vals.add(o), b_vals.len() - j);
}

/// Sequential key/value merge into fresh vectors: output written into
/// uninitialized capacity (a `vec![0; n]` zero-fill would be a pure extra
/// memory sweep per merge).
fn seq_merge_pairs<F>(
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    less: &F,
) -> (Vec<u32>, Vec<u32>)
where
    F: Fn(&u32, &u32) -> bool,
{
    let n = a_keys.len() + b_keys.len();
    let mut keys: Vec<u32> = Vec::with_capacity(n);
    let mut vals: Vec<u32> = Vec::with_capacity(n);
    // SAFETY: the freshly reserved capacity holds exactly `n` slots and the
    // raw core writes every one of them before `set_len(n)`.
    unsafe {
        seq_merge_pairs_raw(
            a_keys,
            a_vals,
            b_keys,
            b_vals,
            keys.as_mut_ptr(),
            vals.as_mut_ptr(),
            less,
        );
        keys.set_len(n);
        vals.set_len(n);
    }
    (keys, vals)
}

/// Parity merge for **equal-length** inputs: a forward chain produces the
/// first half of the output while an independent backward chain produces
/// the second half, doubling the instruction-level parallelism of the
/// dependency-bound merge loop.
///
/// Correctness: with `a.len() == b.len() == h`, the forward chain executes
/// the first `h` take-decisions of the unique stable tie-favouring-`a`
/// merge — within those steps neither input can run dry (`i + j = t < h`
/// bounds both indices), so no end-of-array fallback is needed.  The
/// backward chain symmetrically reproduces the *last* `h` decisions: it
/// takes the larger tail element, and on ties takes from `b`, which is
/// exactly the reverse of "ties favour `a`".  Both chains therefore emit
/// disjoint halves of the same merged sequence.
/// # Safety
/// `out_keys`/`out_vals` must each point at `2 * a_keys.len()` writable
/// `u32` slots (initialized or not) that do not overlap any input.  At
/// iteration t the forward chain has consumed i + j = t < h items, so
/// i < h and j < h bound its reads, and it writes o = t; the backward
/// chain has consumed (h - ib) + (h - jb) = t < h items, so ib ≥ 1 and
/// jb ≥ 1 bound its reads, and it writes n - 1 - t.  Over h iterations
/// the two chains write exactly 0..h and h..n, so every slot is written
/// exactly once.
unsafe fn parity_merge_pairs_raw<F>(
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    out_keys: *mut u32,
    out_vals: *mut u32,
    less: &F,
) where
    F: Fn(&u32, &u32) -> bool,
{
    let h = a_keys.len();
    debug_assert_eq!(h, b_keys.len());
    let n = 2 * h;
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    let (mut ib, mut jb, mut ob) = (h, h, n);
    for _ in 0..h {
        // Forward: take from b only if strictly smaller (ties go to a).
        let take_b = less(b_keys.get_unchecked(j), a_keys.get_unchecked(i));
        *out_keys.add(o) = if take_b {
            *b_keys.get_unchecked(j)
        } else {
            *a_keys.get_unchecked(i)
        };
        *out_vals.add(o) = if take_b {
            *b_vals.get_unchecked(j)
        } else {
            *a_vals.get_unchecked(i)
        };
        i += usize::from(!take_b);
        j += usize::from(take_b);
        o += 1;
        // Backward: take the larger tail element; ties go to b, the
        // mirror of the forward rule.
        let back_a = less(b_keys.get_unchecked(jb - 1), a_keys.get_unchecked(ib - 1));
        ob -= 1;
        *out_keys.add(ob) = if back_a {
            *a_keys.get_unchecked(ib - 1)
        } else {
            *b_keys.get_unchecked(jb - 1)
        };
        *out_vals.add(ob) = if back_a {
            *a_vals.get_unchecked(ib - 1)
        } else {
            *b_vals.get_unchecked(jb - 1)
        };
        ib -= usize::from(back_a);
        jb -= usize::from(!back_a);
    }
}

/// Parity merge into fresh vectors (uninitialized-capacity output, as in
/// [`seq_merge_pairs`]).
fn parity_merge_pairs<F>(
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    less: &F,
) -> (Vec<u32>, Vec<u32>)
where
    F: Fn(&u32, &u32) -> bool,
{
    let n = 2 * a_keys.len();
    let mut keys: Vec<u32> = Vec::with_capacity(n);
    let mut vals: Vec<u32> = Vec::with_capacity(n);
    // SAFETY: the freshly reserved capacity holds exactly `n` slots and the
    // raw core writes every one of them before `set_len(n)`.
    unsafe {
        parity_merge_pairs_raw(
            a_keys,
            a_vals,
            b_keys,
            b_vals,
            keys.as_mut_ptr(),
            vals.as_mut_ptr(),
            less,
        );
        keys.set_len(n);
        vals.set_len(n);
    }
    (keys, vals)
}

/// Merge two sorted slices into a new vector, ties favouring `a`, using the
/// comparator `less`.
pub fn merge_by<T, F>(device: &Device, a: &[T], b: &[T], less: F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> bool + Sync,
{
    let n = a.len() + b.len();
    record_merge_traffic(device, n, std::mem::size_of::<T>());

    let mut out = vec![T::default(); n];
    if n == 0 {
        return out;
    }
    if n <= sequential_merge_cutoff() {
        serial_merge_into(a, b, &mut out, &less);
        return out;
    }
    let tile = device.preferred_tile(std::mem::size_of::<T>()).max(1024);
    let num_tiles = n.div_ceil(tile);

    // Precompute merge-path splits at every tile boundary (scattered binary
    // searches — a handful per tile).
    let splits: Vec<usize> = (0..=num_tiles)
        .into_par_iter()
        .map(|t| merge_path(a, b, (t * tile).min(n), &less))
        .collect();
    device.metrics().record_scattered_probes(
        "merge",
        (num_tiles as u64 + 1) * 32,
        std::mem::size_of::<T>() as u64,
    );

    let shared = SharedSlice::new(&mut out);
    (0..num_tiles).into_par_iter().for_each(|t| {
        let out_start = t * tile;
        let out_end = ((t + 1) * tile).min(n);
        let a_start = splits[t];
        let a_end = splits[t + 1];
        let b_start = out_start - a_start;
        let b_end = out_end - a_end;
        let mut local = vec![T::default(); out_end - out_start];
        serial_merge_into(&a[a_start..a_end], &b[b_start..b_end], &mut local, &less);
        for (offset, v) in local.into_iter().enumerate() {
            // SAFETY: tiles cover disjoint output ranges.
            unsafe { shared.write(out_start + offset, v) };
        }
    });
    out
}

/// A raw output pointer that may cross thread boundaries; the tiled merge
/// guarantees disjoint write ranges per tile.
struct SendPtr(*mut u32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Pointer to slot `i`.
    ///
    /// # Safety
    /// `i` must be within the allocation the wrapped pointer addresses.
    unsafe fn at(&self, i: usize) -> *mut u32 {
        self.0.add(i)
    }
}

/// Tiled merge-path key/value merge writing into caller-provided output
/// pointers (the above-cutoff arm shared by [`merge_pairs_by`] and
/// [`merge_pairs_by_into`]).
///
/// # Safety
/// `out_keys`/`out_vals` must each point at `a_keys.len() + b_keys.len()`
/// writable `u32` slots that overlap no input; every slot is written
/// exactly once (tiles cover disjoint output ranges).
#[allow(clippy::too_many_arguments)]
unsafe fn par_merge_pairs_raw<F>(
    device: &Device,
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    out_keys: *mut u32,
    out_vals: *mut u32,
    less: &F,
) where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    let n = a_keys.len() + b_keys.len();
    let tile = device
        .preferred_tile(2 * std::mem::size_of::<u32>())
        .max(1024);
    let num_tiles = n.div_ceil(tile);

    // Precompute merge-path splits at every tile boundary (scattered binary
    // searches — a handful per tile).  The comparator only ever sees keys,
    // so the split runs on the key arrays alone and the values ride along
    // per tile — no (key, value) tuple round trip.
    let splits: Vec<usize> = (0..=num_tiles)
        .into_par_iter()
        .map(|t| merge_path(a_keys, b_keys, (t * tile).min(n), less))
        .collect();
    device.metrics().record_scattered_probes(
        "merge",
        (num_tiles as u64 + 1) * 32,
        std::mem::size_of::<u32>() as u64,
    );

    let shared_keys = SendPtr(out_keys);
    let shared_vals = SendPtr(out_vals);
    (0..num_tiles).into_par_iter().for_each(|t| {
        let out_start = t * tile;
        let out_end = ((t + 1) * tile).min(n);
        let a_start = splits[t];
        let a_end = splits[t + 1];
        let b_start = out_start - a_start;
        let b_end = out_end - a_end;
        // SAFETY: tiles cover disjoint output ranges [out_start, out_end).
        unsafe {
            seq_merge_pairs_raw(
                &a_keys[a_start..a_end],
                &a_vals[a_start..a_end],
                &b_keys[b_start..b_end],
                &b_vals[b_start..b_end],
                shared_keys.at(out_start),
                shared_vals.at(out_start),
                less,
            );
        }
    });
}

/// Merge two sorted key–value sequences by key, ties favouring `a`.
/// Returns the merged keys and values.
pub fn merge_pairs_by<F>(
    device: &Device,
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    less: F,
) -> (Vec<u32>, Vec<u32>)
where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    assert_eq!(a_keys.len(), a_vals.len());
    assert_eq!(b_keys.len(), b_vals.len());
    let n = a_keys.len() + b_keys.len();
    record_merge_traffic(device, n, 2 * std::mem::size_of::<u32>());
    // Small merges (the bottom of the LSM carry chain) go straight to a
    // sequential key/value merge: no tile splits, no zero-fill.
    if n <= sequential_merge_cutoff() {
        if a_keys.len() == b_keys.len() {
            // The LSM carry chain always merges a buffer of b·2^i elements
            // with a level of the same size, so the equal-length parity
            // merge applies on the hot path.
            return parity_merge_pairs(a_keys, a_vals, b_keys, b_vals, &less);
        }
        return seq_merge_pairs(a_keys, a_vals, b_keys, b_vals, &less);
    }
    let mut keys: Vec<u32> = Vec::with_capacity(n);
    let mut vals: Vec<u32> = Vec::with_capacity(n);
    // SAFETY: the freshly reserved capacity holds exactly `n` slots and the
    // tiled core writes every one of them before `set_len(n)`.
    unsafe {
        par_merge_pairs_raw(
            device,
            a_keys,
            a_vals,
            b_keys,
            b_vals,
            keys.as_mut_ptr(),
            vals.as_mut_ptr(),
            &less,
        );
        keys.set_len(n);
        vals.set_len(n);
    }
    (keys, vals)
}

/// Merge two sorted key–value sequences by key, ties favouring `a`, writing
/// into caller-provided output slices (`out_keys.len()` must equal
/// `a_keys.len() + b_keys.len()`).
///
/// This is the allocation-free twin of [`merge_pairs_by`]: the LSM's
/// carry chain merges into pre-reserved arena regions through it, so the
/// steady-state merge inner loop never touches the heap.
#[allow(clippy::too_many_arguments)]
pub fn merge_pairs_by_into<F>(
    device: &Device,
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    out_keys: &mut [u32],
    out_vals: &mut [u32],
    less: F,
) where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    assert_eq!(a_keys.len(), a_vals.len());
    assert_eq!(b_keys.len(), b_vals.len());
    let n = a_keys.len() + b_keys.len();
    assert_eq!(out_keys.len(), n, "output slice length mismatch");
    assert_eq!(out_vals.len(), n, "output slice length mismatch");
    record_merge_traffic(device, n, 2 * std::mem::size_of::<u32>());
    if n == 0 {
        return;
    }
    // SAFETY: the output slices hold exactly `n` writable slots, borrowed
    // mutably so they overlap no input.
    unsafe {
        if n <= sequential_merge_cutoff() {
            if a_keys.len() == b_keys.len() {
                parity_merge_pairs_raw(
                    a_keys,
                    a_vals,
                    b_keys,
                    b_vals,
                    out_keys.as_mut_ptr(),
                    out_vals.as_mut_ptr(),
                    &less,
                );
            } else {
                seq_merge_pairs_raw(
                    a_keys,
                    a_vals,
                    b_keys,
                    b_vals,
                    out_keys.as_mut_ptr(),
                    out_vals.as_mut_ptr(),
                    &less,
                );
            }
            return;
        }
        par_merge_pairs_raw(
            device,
            a_keys,
            a_vals,
            b_keys,
            b_vals,
            out_keys.as_mut_ptr(),
            out_vals.as_mut_ptr(),
            &less,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn lt(a: &u32, b: &u32) -> bool {
        a < b
    }

    #[test]
    fn merges_disjoint_ranges() {
        let device = device();
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        let out = merge_by(&device, &a, &b, lt);
        let expected: Vec<u32> = (0..200).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn merges_with_one_empty_side() {
        let device = device();
        let a: Vec<u32> = (0..50).collect();
        let out = merge_by(&device, &a, &[], lt);
        assert_eq!(out, a);
        let out = merge_by(&device, &[], &a, lt);
        assert_eq!(out, a);
        let out: Vec<u32> = merge_by(&device, &[], &[], lt);
        assert!(out.is_empty());
    }

    #[test]
    fn ties_favour_first_input() {
        let device = device();
        // Tag elements so we can see which input they came from: compare only
        // on the key part (high 16 bits).
        let a: Vec<u32> = vec![(1 << 16) | 0xA, (2 << 16) | 0xA, (2 << 16) | 0xB];
        let b: Vec<u32> = vec![(1 << 16) | 0xF, (2 << 16) | 0xF];
        let out = merge_by(&device, &a, &b, |x, y| (x >> 16) < (y >> 16));
        // For key 1: a's element first, then b's.  For key 2: both of a's
        // elements (in order) before b's.
        assert_eq!(
            out,
            vec![
                (1 << 16) | 0xA,
                (1 << 16) | 0xF,
                (2 << 16) | 0xA,
                (2 << 16) | 0xB,
                (2 << 16) | 0xF
            ]
        );
    }

    #[test]
    fn large_merge_matches_std() {
        let device = device();
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let mut a: Vec<u32> = (0..100_000).map(|_| rng.gen()).collect();
        let mut b: Vec<u32> = (0..63_001).map(|_| rng.gen()).collect();
        a.sort_unstable();
        b.sort_unstable();
        let out = merge_by(&device, &a, &b, lt);
        let mut expected = [a, b].concat();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn merge_pairs_moves_values() {
        let device = device();
        let (k, v) = merge_pairs_by(&device, &[10, 30], &[1, 3], &[20, 30], &[2, 9], |a, b| {
            a < b
        });
        assert_eq!(k, vec![10, 20, 30, 30]);
        assert_eq!(v, vec![1, 2, 3, 9]); // a's 30 precedes b's 30
    }

    #[test]
    fn merge_pairs_into_matches_alloc_version() {
        let device = device();
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(23);
        // Cover the sequential unequal, sequential parity and tiled-parallel
        // arms of the into-variant against the allocating reference.
        for (a_len, b_len) in [
            (100usize, 37usize),
            (512, 512),
            (70_000, 70_000),
            (80_000, 33),
        ] {
            let mut a_keys: Vec<u32> = (0..a_len).map(|_| rng.gen::<u32>() % 10_000).collect();
            let mut b_keys: Vec<u32> = (0..b_len).map(|_| rng.gen::<u32>() % 10_000).collect();
            a_keys.sort_unstable();
            b_keys.sort_unstable();
            let a_vals: Vec<u32> = (0..a_len as u32).collect();
            let b_vals: Vec<u32> = (0..b_len as u32).map(|i| 1 << 20 | i).collect();
            let (exp_keys, exp_vals) =
                merge_pairs_by(&device, &a_keys, &a_vals, &b_keys, &b_vals, lt);
            let mut out_keys = vec![0u32; a_len + b_len];
            let mut out_vals = vec![0u32; a_len + b_len];
            merge_pairs_by_into(
                &device,
                &a_keys,
                &a_vals,
                &b_keys,
                &b_vals,
                &mut out_keys,
                &mut out_vals,
                lt,
            );
            assert_eq!(out_keys, exp_keys, "a_len={a_len} b_len={b_len}");
            assert_eq!(out_vals, exp_vals, "a_len={a_len} b_len={b_len}");
        }
    }

    #[test]
    #[should_panic(expected = "output slice length mismatch")]
    fn merge_pairs_into_rejects_short_output() {
        let device = device();
        let mut out_keys = vec![0u32; 1];
        let mut out_vals = vec![0u32; 1];
        merge_pairs_by_into(
            &device,
            &[1, 2],
            &[0, 0],
            &[3],
            &[0],
            &mut out_keys,
            &mut out_vals,
            lt,
        );
    }

    #[test]
    fn merge_records_traffic() {
        let device = device();
        let a: Vec<u32> = (0..1000).collect();
        let b: Vec<u32> = (0..1000).collect();
        let _ = merge_by(&device, &a, &b, lt);
        assert!(device.metrics().snapshot().contains_key("merge"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_merge_is_sorted_and_permutation(
            mut a in proptest::collection::vec(0u32..5000, 0..800),
            mut b in proptest::collection::vec(0u32..5000, 0..800)
        ) {
            let device = device();
            a.sort_unstable();
            b.sort_unstable();
            let out = merge_by(&device, &a, &b, lt);
            prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
            let mut expected = [a, b].concat();
            expected.sort_unstable();
            prop_assert_eq!(out, expected);
        }

        #[test]
        fn prop_pairs_merge_matches_reference(
            a_len in 0usize..600,
            b_len_raw in 0usize..600,
            seed in any::<u32>()
        ) {
            // Exercises both sequential pair-merge paths.  Independent
            // lengths essentially never collide, so half the cases force
            // b_len == a_len to drive the parity merge (the LSM
            // carry-chain shape); the rest hit the unidirectional
            // fallback.  Duplicate-heavy keys probe the tie-favours-a
            // rule; values tag provenance and input order.
            let b_len = if seed % 2 == 0 { a_len } else { b_len_raw };
            let device = device();
            let mut a_keys: Vec<u32> = (0..a_len as u32)
                .map(|i| (i.wrapping_mul(seed | 1)) % 64)
                .collect();
            let mut b_keys: Vec<u32> = (0..b_len as u32)
                .map(|i| (i.wrapping_mul((seed >> 7) | 3)) % 64)
                .collect();
            a_keys.sort_unstable();
            b_keys.sort_unstable();
            let a_vals: Vec<u32> = (0..a_len as u32).collect();
            let b_vals: Vec<u32> = (0..b_len as u32).map(|i| 1_000_000 + i).collect();
            let (keys, vals) =
                merge_pairs_by(&device, &a_keys, &a_vals, &b_keys, &b_vals, lt);
            // Reference: sequential stable merge, ties favouring a.
            let (mut i, mut j) = (0, 0);
            let mut exp_keys = Vec::new();
            let mut exp_vals = Vec::new();
            while i < a_keys.len() || j < b_keys.len() {
                let take_a = j >= b_keys.len()
                    || (i < a_keys.len() && !lt(&b_keys[j], &a_keys[i]));
                if take_a {
                    exp_keys.push(a_keys[i]);
                    exp_vals.push(a_vals[i]);
                    i += 1;
                } else {
                    exp_keys.push(b_keys[j]);
                    exp_vals.push(b_vals[j]);
                    j += 1;
                }
            }
            prop_assert_eq!(keys, exp_keys);
            prop_assert_eq!(vals, exp_vals);
        }

        #[test]
        fn prop_tie_break_prefers_a(
            keys in proptest::collection::vec(0u32..50, 1..400)
        ) {
            // Both inputs share the same key population; tag provenance in the
            // low bit and compare on the upper bits only.
            let device = device();
            let mut a: Vec<u32> = keys.iter().map(|&k| k << 1).collect();
            let mut b: Vec<u32> = keys.iter().map(|&k| (k << 1) | 1).collect();
            a.sort_unstable();
            b.sort_unstable();
            let out = merge_by(&device, &a, &b, |x, y| (x >> 1) < (y >> 1));
            // Within every run of equal keys, all a-elements (low bit 0) must
            // precede all b-elements (low bit 1).
            let mut i = 0;
            while i < out.len() {
                let key = out[i] >> 1;
                let mut seen_b = false;
                while i < out.len() && out[i] >> 1 == key {
                    if out[i] & 1 == 1 {
                        seen_b = true;
                    } else {
                        prop_assert!(!seen_b, "a-element after b-element for key {}", key);
                    }
                    i += 1;
                }
            }
        }
    }
}
