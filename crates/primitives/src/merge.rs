//! Stable parallel merge of two sorted sequences under a caller-supplied
//! comparator (moderngpu `Merge` equivalent).
//!
//! The LSM's insertion path repeatedly merges the incoming (sorted) buffer
//! with a full level (paper Fig. 3 line 14).  The comparator compares only
//! the original 31-bit key — the status bit is ignored — and the merge must
//! be stable in a specific sense: **on ties, elements of the first input
//! (the more recently inserted buffer) come first**, which preserves the
//! ordering invariants of §III-D.
//!
//! The implementation is the classical *merge path* decomposition: the
//! output is cut into tiles; for each tile boundary (a diagonal of the merge
//! grid) a binary search finds how many elements of `a` and `b` precede the
//! diagonal under the tie-breaking rule; each tile is then merged
//! sequentially and independently, so all tiles run in parallel.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

use crate::util::SharedSlice;

/// Find the merge-path split for diagonal `diag`: the number of elements
/// taken from `a` when exactly `diag` output elements have been produced,
/// with ties favouring `a`.
///
/// `less(x, y)` must be a strict weak ordering ("x sorts before y").
fn merge_path<T, F>(a: &[T], b: &[T], diag: usize, less: &F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] vs b[diag - 1 - mid]: if b element is strictly smaller, the
        // split point must include fewer `a` elements after mid; otherwise
        // (a <= b, i.e. tie or a smaller) `a` wins and the split moves right.
        if less(&b[diag - 1 - mid], &a[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Sequentially merge `a` and `b` into `out`, ties favouring `a`.
fn serial_merge_into<T, F>(a: &[T], b: &[T], out: &mut [T], less: &F)
where
    T: Copy,
    F: Fn(&T, &T) -> bool,
{
    debug_assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        let take_a = if i >= a.len() {
            false
        } else if j >= b.len() {
            true
        } else {
            // Take from b only if strictly smaller: ties go to a.
            !less(&b[j], &a[i])
        };
        if take_a {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

/// Merge two sorted slices into a new vector, ties favouring `a`, using the
/// comparator `less`.
pub fn merge_by<T, F>(device: &Device, a: &[T], b: &[T], less: F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> bool + Sync,
{
    let n = a.len() + b.len();
    let kernel = "merge";
    device.metrics().record_launch(kernel);
    let bytes = (n * std::mem::size_of::<T>()) as u64;
    device
        .metrics()
        .record_read(kernel, bytes, AccessPattern::Coalesced);
    device
        .metrics()
        .record_write(kernel, bytes, AccessPattern::Coalesced);

    let mut out = vec![T::default(); n];
    if n == 0 {
        return out;
    }
    let tile = device.preferred_tile(std::mem::size_of::<T>()).max(1024);
    let num_tiles = n.div_ceil(tile);

    // Precompute merge-path splits at every tile boundary (scattered binary
    // searches — a handful per tile).
    let splits: Vec<usize> = (0..=num_tiles)
        .into_par_iter()
        .map(|t| merge_path(a, b, (t * tile).min(n), &less))
        .collect();
    device.metrics().record_scattered_probes(
        kernel,
        (num_tiles as u64 + 1) * 32,
        std::mem::size_of::<T>() as u64,
    );

    let shared = SharedSlice::new(&mut out);
    (0..num_tiles).into_par_iter().for_each(|t| {
        let out_start = t * tile;
        let out_end = ((t + 1) * tile).min(n);
        let a_start = splits[t];
        let a_end = splits[t + 1];
        let b_start = out_start - a_start;
        let b_end = out_end - a_end;
        let mut local = vec![T::default(); out_end - out_start];
        serial_merge_into(&a[a_start..a_end], &b[b_start..b_end], &mut local, &less);
        for (offset, v) in local.into_iter().enumerate() {
            // SAFETY: tiles cover disjoint output ranges.
            unsafe { shared.write(out_start + offset, v) };
        }
    });
    out
}

/// Merge two sorted key–value sequences by key, ties favouring `a`.
/// Returns the merged keys and values.
pub fn merge_pairs_by<F>(
    device: &Device,
    a_keys: &[u32],
    a_vals: &[u32],
    b_keys: &[u32],
    b_vals: &[u32],
    less: F,
) -> (Vec<u32>, Vec<u32>)
where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    assert_eq!(a_keys.len(), a_vals.len());
    assert_eq!(b_keys.len(), b_vals.len());
    // Merge (key, value) tuples so values travel with their keys; the
    // comparator only ever sees keys.
    let a: Vec<(u32, u32)> = a_keys.iter().copied().zip(a_vals.iter().copied()).collect();
    let b: Vec<(u32, u32)> = b_keys.iter().copied().zip(b_vals.iter().copied()).collect();
    let merged = merge_by(device, &a, &b, |x, y| less(&x.0, &y.0));
    let mut keys = Vec::with_capacity(merged.len());
    let mut vals = Vec::with_capacity(merged.len());
    for (k, v) in merged {
        keys.push(k);
        vals.push(v);
    }
    (keys, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn lt(a: &u32, b: &u32) -> bool {
        a < b
    }

    #[test]
    fn merges_disjoint_ranges() {
        let device = device();
        let a: Vec<u32> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..100).map(|i| i * 2 + 1).collect();
        let out = merge_by(&device, &a, &b, lt);
        let expected: Vec<u32> = (0..200).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn merges_with_one_empty_side() {
        let device = device();
        let a: Vec<u32> = (0..50).collect();
        let out = merge_by(&device, &a, &[], lt);
        assert_eq!(out, a);
        let out = merge_by(&device, &[], &a, lt);
        assert_eq!(out, a);
        let out: Vec<u32> = merge_by(&device, &[], &[], lt);
        assert!(out.is_empty());
    }

    #[test]
    fn ties_favour_first_input() {
        let device = device();
        // Tag elements so we can see which input they came from: compare only
        // on the key part (high 16 bits).
        let a: Vec<u32> = vec![(1 << 16) | 0xA, (2 << 16) | 0xA, (2 << 16) | 0xB];
        let b: Vec<u32> = vec![(1 << 16) | 0xF, (2 << 16) | 0xF];
        let out = merge_by(&device, &a, &b, |x, y| (x >> 16) < (y >> 16));
        // For key 1: a's element first, then b's.  For key 2: both of a's
        // elements (in order) before b's.
        assert_eq!(
            out,
            vec![
                (1 << 16) | 0xA,
                (1 << 16) | 0xF,
                (2 << 16) | 0xA,
                (2 << 16) | 0xB,
                (2 << 16) | 0xF
            ]
        );
    }

    #[test]
    fn large_merge_matches_std() {
        let device = device();
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        let mut a: Vec<u32> = (0..100_000).map(|_| rng.gen()).collect();
        let mut b: Vec<u32> = (0..63_001).map(|_| rng.gen()).collect();
        a.sort_unstable();
        b.sort_unstable();
        let out = merge_by(&device, &a, &b, lt);
        let mut expected = [a, b].concat();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn merge_pairs_moves_values() {
        let device = device();
        let (k, v) = merge_pairs_by(&device, &[10, 30], &[1, 3], &[20, 30], &[2, 9], |a, b| {
            a < b
        });
        assert_eq!(k, vec![10, 20, 30, 30]);
        assert_eq!(v, vec![1, 2, 3, 9]); // a's 30 precedes b's 30
    }

    #[test]
    fn merge_records_traffic() {
        let device = device();
        let a: Vec<u32> = (0..1000).collect();
        let b: Vec<u32> = (0..1000).collect();
        let _ = merge_by(&device, &a, &b, lt);
        assert!(device.metrics().snapshot().contains_key("merge"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_merge_is_sorted_and_permutation(
            mut a in proptest::collection::vec(0u32..5000, 0..800),
            mut b in proptest::collection::vec(0u32..5000, 0..800)
        ) {
            let device = device();
            a.sort_unstable();
            b.sort_unstable();
            let out = merge_by(&device, &a, &b, lt);
            prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
            let mut expected = [a, b].concat();
            expected.sort_unstable();
            prop_assert_eq!(out, expected);
        }

        #[test]
        fn prop_tie_break_prefers_a(
            keys in proptest::collection::vec(0u32..50, 1..400)
        ) {
            // Both inputs share the same key population; tag provenance in the
            // low bit and compare on the upper bits only.
            let device = device();
            let mut a: Vec<u32> = keys.iter().map(|&k| k << 1).collect();
            let mut b: Vec<u32> = keys.iter().map(|&k| (k << 1) | 1).collect();
            a.sort_unstable();
            b.sort_unstable();
            let out = merge_by(&device, &a, &b, |x, y| (x >> 1) < (y >> 1));
            // Within every run of equal keys, all a-elements (low bit 0) must
            // precede all b-elements (low bit 1).
            let mut i = 0;
            while i < out.len() {
                let key = out[i] >> 1;
                let mut seen_b = false;
                while i < out.len() && out[i] >> 1 == key {
                    if out[i] & 1 == 1 {
                        seen_b = true;
                    } else {
                        prop_assert!(!seen_b, "a-element after b-element for key {}", key);
                    }
                    i += 1;
                }
            }
        }
    }
}
