//! Per-block digit histograms, the first phase of every radix-sort pass.
//!
//! Each thread block counts how many of its tile's keys fall into each of
//! the 256 digit buckets of the current pass.  On the GPU this is a
//! shared-memory histogram with atomics; here each block produces its own
//! counts array (no sharing needed) and the pass-level scan combines them.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

/// Number of buckets per radix-sort digit (8-bit digits).
pub const RADIX: usize = 256;

/// Number of bits per digit.
pub const RADIX_BITS: u32 = 8;

/// Extract the `pass`-th 8-bit digit of `key`.
#[inline]
pub fn digit(key: u32, pass: u32) -> usize {
    ((key >> (pass * RADIX_BITS)) & (RADIX as u32 - 1)) as usize
}

/// Compute per-block digit histograms for one radix pass.
///
/// Returns one `[u64; RADIX]`-equivalent `Vec<u32>` per block, in block
/// order.  `tile` is the number of keys per block.
pub fn block_histograms(device: &Device, keys: &[u32], pass: u32, tile: usize) -> Vec<Vec<u32>> {
    let kernel = "radix_histogram";
    device.metrics().record_launch(kernel);
    device.metrics().record_read(
        kernel,
        std::mem::size_of_val(keys) as u64,
        AccessPattern::Coalesced,
    );
    keys.par_chunks(tile)
        .map(|chunk| {
            let mut counts = vec![0u32; RADIX];
            for &k in chunk {
                counts[digit(k, pass)] += 1;
            }
            counts
        })
        .collect()
}

/// Device-wide histogram over all keys for one pass (sums of the per-block
/// histograms); exposed for tests and for the multisplit bucket counts.
pub fn global_histogram(device: &Device, keys: &[u32], pass: u32) -> Vec<u64> {
    let tile = device.preferred_tile(std::mem::size_of::<u32>()).max(1024);
    let blocks = block_histograms(device, keys, pass, tile);
    let mut total = vec![0u64; RADIX];
    for block in &blocks {
        for (t, &c) in total.iter_mut().zip(block.iter()) {
            *t += c as u64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn digit_extraction() {
        let key = 0xAABBCCDDu32;
        assert_eq!(digit(key, 0), 0xDD);
        assert_eq!(digit(key, 1), 0xCC);
        assert_eq!(digit(key, 2), 0xBB);
        assert_eq!(digit(key, 3), 0xAA);
    }

    #[test]
    fn block_histograms_count_every_key_once() {
        let device = device();
        let keys: Vec<u32> = (0..10_000).map(|i| i * 7 + 3).collect();
        let blocks = block_histograms(&device, &keys, 0, 1024);
        let total: u64 = blocks.iter().flatten().map(|&c| c as u64).sum();
        assert_eq!(total, keys.len() as u64);
    }

    #[test]
    fn global_histogram_matches_sequential_count() {
        let device = device();
        let keys: Vec<u32> = (0..5000).map(|i| (i * 31) ^ 0x5A5A).collect();
        let hist = global_histogram(&device, &keys, 1);
        let mut expected = vec![0u64; RADIX];
        for &k in &keys {
            expected[digit(k, 1)] += 1;
        }
        assert_eq!(hist, expected);
    }

    #[test]
    fn empty_input_gives_empty_histogram() {
        let device = device();
        let hist = global_histogram(&device, &[], 0);
        assert!(hist.iter().all(|&c| c == 0));
    }

    #[test]
    fn histogram_records_traffic() {
        let device = device();
        let keys = vec![1u32; 4096];
        let _ = block_histograms(&device, &keys, 0, 512);
        let snap = device.metrics().snapshot();
        assert_eq!(snap["radix_histogram"].coalesced_read_bytes, 4096 * 4);
    }
}
