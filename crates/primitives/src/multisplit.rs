//! Two-bucket stable multisplit (Ashkiani et al., "GPU multisplit",
//! PPoPP 2016 — reference \[20\] of the GPU LSM paper).
//!
//! The cleanup operation collects all unmarked valid elements with "a
//! two-bucket multisplit" (paper §IV-E step 3): elements whose predicate is
//! true move to the front, the rest to the back, and the order *within each
//! bucket* is preserved.  The warp-level formulation is ballot + rank (each
//! lane's offset within the warp is the popcount of earlier lanes in the
//! same bucket) followed by a scan of per-warp bucket counts; this module
//! follows that structure so the warp primitives of [`gpu_sim::warp`] are
//! exercised the same way the GPU kernel would.

use gpu_sim::{Device, WarpOps, WARP_SIZE};
use rayon::prelude::*;

use crate::scan::exclusive_scan;
use crate::util::SharedSlice;

/// Below this many elements the warp-ballot pipeline's fixed costs (two
/// device-wide scans, three auxiliary vectors) dominate; a sequential
/// stable partition wins.
const SEQUENTIAL_MULTISPLIT_CUTOFF: usize = 1 << 11;

/// Stable two-bucket partition of `data` by `pred`.  Elements with
/// `pred == true` end up first (order preserved), the rest follow (order
/// preserved).  Returns the number of elements in the first bucket.
pub fn multisplit_in_place<T, F>(device: &Device, data: &mut [T], pred: F) -> usize
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T) -> bool + Sync,
{
    let n = data.len();
    if n == 0 {
        return 0;
    }
    crate::util::record_streaming(device, "multisplit", n, std::mem::size_of::<T>());

    // Small inputs: one sequential stable pass.  The ballot/scan/scatter
    // pipeline below records two extra scan launches and walks the data
    // four times, all pure overhead when everything fits in cache.
    // Pred-true elements compact toward the front in place (reads are
    // always at or ahead of writes); only the back bucket needs a buffer.
    if n <= SEQUENTIAL_MULTISPLIT_CUTOFF {
        let mut back = Vec::with_capacity(n);
        let mut split = 0usize;
        for i in 0..n {
            let v = data[i];
            if pred(&v) {
                data[split] = v;
                split += 1;
            } else {
                back.push(v);
            }
        }
        data[split..].copy_from_slice(&back);
        return split;
    }

    // Stage 1: warp-level ballots.  For each warp-sized group record the
    // ballot mask and the per-warp count of bucket-0 (pred true) elements.
    let warp_ballots: Vec<u32> = data
        .par_chunks(WARP_SIZE)
        .map(|chunk| {
            let preds: Vec<bool> = chunk.iter().map(&pred).collect();
            WarpOps::ballot(&preds)
        })
        .collect();
    let warp_true_counts: Vec<u32> = warp_ballots.par_iter().map(|b| b.count_ones()).collect();
    let warp_sizes: Vec<u32> = data
        .par_chunks(WARP_SIZE)
        .map(|chunk| chunk.len() as u32)
        .collect();

    // Stage 2: scan the per-warp counts to get every warp's base offset in
    // each bucket.
    let (true_offsets, total_true) = exclusive_scan(device, &warp_true_counts);
    let false_counts: Vec<u32> = warp_true_counts
        .iter()
        .zip(warp_sizes.iter())
        .map(|(&t, &s)| s - t)
        .collect();
    let (false_offsets, _total_false) = exclusive_scan(device, &false_counts);
    let split = total_true as usize;

    // Stage 3: scatter.  Each lane's destination is its bucket base plus its
    // rank among earlier lanes of the same bucket (popcount of the ballot
    // below its lane), which is exactly the GPU multisplit formulation.
    let mut out = vec![T::default(); n];
    {
        let shared = SharedSlice::new(&mut out);
        data.par_chunks(WARP_SIZE)
            .enumerate()
            .for_each(|(w, chunk)| {
                let ballot = warp_ballots[w];
                for (lane, &v) in chunk.iter().enumerate() {
                    let in_first = (ballot >> lane) & 1 == 1;
                    let dst = if in_first {
                        true_offsets[w] as usize + WarpOps::rank_below(ballot, lane) as usize
                    } else {
                        split
                            + false_offsets[w] as usize
                            + (lane as u32 - WarpOps::rank_below(ballot, lane)) as usize
                    };
                    // SAFETY: destinations are unique: bucket bases are the
                    // exclusive scans of per-warp counts and ranks are unique
                    // within a warp and bucket.
                    unsafe { shared.write(dst, v) };
                }
            });
    }
    data.copy_from_slice(&out);
    split
}

/// Stable two-bucket partition of parallel key and value arrays by a
/// predicate over the keys.  Returns the size of the first bucket.
pub fn multisplit_pairs_in_place<F>(
    device: &Device,
    keys: &mut [u32],
    values: &mut [u32],
    pred: F,
) -> usize
where
    F: Fn(&u32) -> bool + Sync,
{
    assert_eq!(keys.len(), values.len());
    let n = keys.len();
    // Small inputs: partition the two arrays directly, skipping the tuple
    // round trip (three extra allocations and copies) entirely.
    if n <= SEQUENTIAL_MULTISPLIT_CUTOFF {
        crate::util::record_streaming(device, "multisplit", n, 2 * std::mem::size_of::<u32>());
        let mut back_keys = Vec::with_capacity(n);
        let mut back_vals = Vec::with_capacity(n);
        let mut split = 0usize;
        for i in 0..n {
            if pred(&keys[i]) {
                keys[split] = keys[i];
                values[split] = values[i];
                split += 1;
            } else {
                back_keys.push(keys[i]);
                back_vals.push(values[i]);
            }
        }
        keys[split..].copy_from_slice(&back_keys);
        values[split..].copy_from_slice(&back_vals);
        return split;
    }
    let mut pairs: Vec<(u32, u32)> = keys.iter().copied().zip(values.iter().copied()).collect();
    let split = multisplit_in_place(device, &mut pairs, |p| pred(&p.0));
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        keys[i] = k;
        values[i] = v;
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn partitions_evens_before_odds_stably() {
        let device = device();
        let mut data: Vec<u32> = (0..1000).collect();
        let split = multisplit_in_place(&device, &mut data, |x| x % 2 == 0);
        assert_eq!(split, 500);
        let expected_front: Vec<u32> = (0..1000).filter(|x| x % 2 == 0).collect();
        let expected_back: Vec<u32> = (0..1000).filter(|x| x % 2 == 1).collect();
        assert_eq!(&data[..500], expected_front.as_slice());
        assert_eq!(&data[500..], expected_back.as_slice());
    }

    #[test]
    fn all_true_and_all_false() {
        let device = device();
        let mut data: Vec<u32> = (0..100).collect();
        let split = multisplit_in_place(&device, &mut data, |_| true);
        assert_eq!(split, 100);
        assert_eq!(data, (0..100).collect::<Vec<_>>());
        let split = multisplit_in_place(&device, &mut data, |_| false);
        assert_eq!(split, 0);
        assert_eq!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let device = device();
        let mut data: Vec<u32> = vec![];
        assert_eq!(multisplit_in_place(&device, &mut data, |_| true), 0);
    }

    #[test]
    fn non_warp_multiple_length() {
        let device = device();
        let mut data: Vec<u32> = (0..77).collect();
        let split = multisplit_in_place(&device, &mut data, |x| *x < 10);
        assert_eq!(split, 10);
        assert_eq!(&data[..10], (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(&data[10..], (10..77).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn pairs_stay_associated() {
        let device = device();
        let mut keys = vec![5u32, 2, 8, 1, 9, 4];
        let mut vals = vec![50u32, 20, 80, 10, 90, 40];
        let split = multisplit_pairs_in_place(&device, &mut keys, &mut vals, |k| *k < 5);
        assert_eq!(split, 3);
        assert_eq!(&keys[..3], &[2, 1, 4]);
        assert_eq!(&vals[..3], &[20, 10, 40]);
        assert_eq!(&keys[3..], &[5, 8, 9]);
        assert_eq!(&vals[3..], &[50, 80, 90]);
    }

    #[test]
    fn records_traffic() {
        let device = device();
        let mut data: Vec<u32> = (0..4096).collect();
        let _ = multisplit_in_place(&device, &mut data, |x| x % 3 == 0);
        assert!(device.metrics().snapshot().contains_key("multisplit"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_multisplit_is_stable_partition(
            data in proptest::collection::vec(0u32..1000, 0..600),
            threshold in 0u32..1000
        ) {
            let device = device();
            let mut ours = data.clone();
            let split = multisplit_in_place(&device, &mut ours, |x| *x < threshold);
            let front: Vec<u32> = data.iter().copied().filter(|x| *x < threshold).collect();
            let back: Vec<u32> = data.iter().copied().filter(|x| *x >= threshold).collect();
            prop_assert_eq!(split, front.len());
            prop_assert_eq!(&ours[..split], front.as_slice());
            prop_assert_eq!(&ours[split..], back.as_slice());
        }
    }
}
