//! Device-wide reductions (CUB `DeviceReduce` equivalent).
//!
//! Used by the count pipeline's final tally, by structure statistics, and by
//! tests that cross-check other primitives.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

fn record<T>(device: &Device, kernel: &str, n: usize) {
    device.metrics().record_launch(kernel);
    device.metrics().record_read(
        kernel,
        (n * std::mem::size_of::<T>()) as u64,
        AccessPattern::Coalesced,
    );
}

/// Sum of all elements.
pub fn reduce_sum(device: &Device, data: &[u64]) -> u64 {
    record::<u64>(device, "reduce_sum", data.len());
    data.par_iter().sum()
}

/// Sum of u32 elements, accumulated in u64 to avoid overflow.
pub fn reduce_sum_u32(device: &Device, data: &[u32]) -> u64 {
    record::<u32>(device, "reduce_sum", data.len());
    data.par_iter().map(|&x| x as u64).sum()
}

/// Minimum element, or `None` for an empty buffer.
pub fn reduce_min(device: &Device, data: &[u32]) -> Option<u32> {
    record::<u32>(device, "reduce_min", data.len());
    data.par_iter().copied().min()
}

/// Maximum element, or `None` for an empty buffer.
pub fn reduce_max(device: &Device, data: &[u32]) -> Option<u32> {
    record::<u32>(device, "reduce_max", data.len());
    data.par_iter().copied().max()
}

/// Count elements satisfying a predicate.
pub fn count_if<T, F>(device: &Device, data: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    record::<T>(device, "count_if", data.len());
    data.par_iter().filter(|x| pred(x)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn sums_match() {
        let device = device();
        let data: Vec<u64> = (1..=1000).collect();
        assert_eq!(reduce_sum(&device, &data), 500_500);
        let data32: Vec<u32> = (1..=1000).collect();
        assert_eq!(reduce_sum_u32(&device, &data32), 500_500);
    }

    #[test]
    fn sum_u32_does_not_overflow() {
        let device = device();
        let data = vec![u32::MAX; 4];
        assert_eq!(reduce_sum_u32(&device, &data), 4 * u32::MAX as u64);
    }

    #[test]
    fn min_max_and_empty() {
        let device = device();
        let data = vec![5u32, 3, 9, 1];
        assert_eq!(reduce_min(&device, &data), Some(1));
        assert_eq!(reduce_max(&device, &data), Some(9));
        assert_eq!(reduce_min(&device, &[]), None);
        assert_eq!(reduce_max(&device, &[]), None);
    }

    #[test]
    fn count_if_counts() {
        let device = device();
        let data: Vec<u32> = (0..100).collect();
        assert_eq!(count_if(&device, &data, |x| x % 10 == 0), 10);
        assert_eq!(count_if(&device, &data, |_| false), 0);
    }

    #[test]
    fn reductions_record_traffic() {
        let device = device();
        let _ = reduce_sum(&device, &[1, 2, 3]);
        assert!(device.metrics().snapshot().contains_key("reduce_sum"));
    }
}
