//! Device-wide exclusive and inclusive prefix sums (CUB `ExclusiveSum`
//! equivalent).
//!
//! The GPU LSM uses an exclusive scan to turn per-query per-level result
//! estimates into output offsets (paper §IV-C stage 2).  The implementation
//! is the classical three-phase decomposition: per-block partial sums in
//! parallel, a scan of the block sums, then a parallel down-sweep that adds
//! each block's offset to its local prefix.

use gpu_sim::Device;
use rayon::prelude::*;

/// Elements that can be prefix-summed.
pub trait ScanElem: Copy + Send + Sync + Default {
    /// Addition for the scan.
    fn add(self, other: Self) -> Self;
}

macro_rules! impl_scan_elem {
    ($($t:ty),*) => {
        $(impl ScanElem for $t {
            #[inline]
            fn add(self, other: Self) -> Self {
                self + other
            }
        })*
    };
}
impl_scan_elem!(u32, u64, usize, i64);

fn record_scan_traffic<T>(device: &Device, kernel: &str, n: usize) {
    crate::util::record_streaming(device, kernel, n, std::mem::size_of::<T>());
}

/// Exclusive prefix sum: `out[i] = sum(input[..i])`.  Returns the scanned
/// vector and the total sum of all elements.
pub fn exclusive_scan<T: ScanElem>(device: &Device, input: &[T]) -> (Vec<T>, T) {
    let mut out = input.to_vec();
    let total = exclusive_scan_in_place(device, &mut out);
    (out, total)
}

/// Below this many elements the three-phase decomposition (two parallel
/// sweeps plus the block-totals round trip) is pure fixed cost; a single
/// sequential sweep touches the data once and stays in cache.
const SEQUENTIAL_SCAN_CUTOFF: usize = 1 << 10;

/// Exclusive prefix sum in place; returns the total sum.
pub fn exclusive_scan_in_place<T: ScanElem>(device: &Device, data: &mut [T]) -> T {
    record_scan_traffic::<T>(device, "exclusive_scan", data.len());
    let n = data.len();
    if n == 0 {
        return T::default();
    }
    if n <= SEQUENTIAL_SCAN_CUTOFF {
        let mut acc = T::default();
        for v in data.iter_mut() {
            let old = *v;
            *v = acc;
            acc = acc.add(old);
        }
        return acc;
    }
    let tile = device.preferred_tile(std::mem::size_of::<T>()).max(1024);

    // Phase 1: per-block inclusive scan, collecting each block's total.
    let block_totals: Vec<T> = data
        .par_chunks_mut(tile)
        .map(|chunk| {
            let mut acc = T::default();
            for v in chunk.iter_mut() {
                let old = *v;
                *v = acc;
                acc = acc.add(old);
            }
            acc
        })
        .collect();

    // Phase 2: scan the block totals sequentially (few blocks).
    let mut block_offsets = Vec::with_capacity(block_totals.len());
    let mut acc = T::default();
    for &t in &block_totals {
        block_offsets.push(acc);
        acc = acc.add(t);
    }
    let total = acc;

    // Phase 3: add each block's offset to its elements.
    data.par_chunks_mut(tile)
        .zip(block_offsets.par_iter())
        .for_each(|(chunk, &offset)| {
            for v in chunk.iter_mut() {
                *v = v.add(offset);
            }
        });

    total
}

/// Inclusive prefix sum: `out[i] = sum(input[..=i])`.
pub fn inclusive_scan<T: ScanElem>(device: &Device, input: &[T]) -> Vec<T> {
    let (mut out, _) = exclusive_scan(device, input);
    out.par_iter_mut()
        .zip(input.par_iter())
        .for_each(|(o, &i)| *o = o.add(i));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn reference_exclusive(input: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0;
        for &v in input {
            out.push(acc);
            acc += v;
        }
        out
    }

    #[test]
    fn exclusive_scan_matches_reference_small() {
        let device = device();
        let input = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let (scanned, total) = exclusive_scan(&device, &input);
        assert_eq!(scanned, reference_exclusive(&input));
        assert_eq!(total, 31);
    }

    #[test]
    fn exclusive_scan_matches_reference_large() {
        let device = device();
        let input: Vec<u64> = (0..100_000).map(|i| (i * 37 + 11) % 101).collect();
        let (scanned, total) = exclusive_scan(&device, &input);
        assert_eq!(scanned, reference_exclusive(&input));
        assert_eq!(total, input.iter().sum::<u64>());
    }

    #[test]
    fn inclusive_scan_last_is_total() {
        let device = device();
        let input: Vec<u32> = (1..=1000).collect();
        let scanned = inclusive_scan(&device, &input);
        assert_eq!(*scanned.last().unwrap(), 500_500);
        assert_eq!(scanned[0], 1);
    }

    #[test]
    fn empty_scan() {
        let device = device();
        let (scanned, total) = exclusive_scan::<u64>(&device, &[]);
        assert!(scanned.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_element_scan() {
        let device = device();
        let (scanned, total) = exclusive_scan(&device, &[42u32]);
        assert_eq!(scanned, vec![0]);
        assert_eq!(total, 42);
    }

    #[test]
    fn scan_records_traffic() {
        let device = device();
        let mut data = vec![1u32; 2048];
        let _ = exclusive_scan_in_place(&device, &mut data);
        assert!(device.metrics().snapshot().contains_key("exclusive_scan"));
    }

    #[test]
    fn usize_and_i64_scans_compile_and_work() {
        let device = device();
        let (s, t) = exclusive_scan(&device, &[1usize, 2, 3]);
        assert_eq!((s, t), (vec![0, 1, 3], 6));
        let (s, t) = exclusive_scan(&device, &[-1i64, 5, -2]);
        assert_eq!((s, t), (vec![0, -1, 4], 2));
    }
}
