//! Stream compaction: keep the flagged elements of a buffer, preserving
//! their relative order (CUB `DeviceSelect::Flagged` equivalent).
//!
//! Range queries compact each query's validated candidates down to the valid
//! ones (paper §IV-D stage 5), and cleanup compacts all valid elements after
//! stale marking (§IV-E step 3).  The implementation is scan + scatter: an
//! exclusive scan of the 0/1 flags yields each surviving element's output
//! position, and a parallel scatter moves them.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

use crate::scan::exclusive_scan;
use crate::util::SharedSlice;

/// Return the elements of `data` whose flag is `true`, preserving order.
pub fn compact_by_flag<T>(device: &Device, data: &[T], flags: &[bool]) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
{
    assert_eq!(
        data.len(),
        flags.len(),
        "data and flags must have equal length"
    );
    let kernel = "compact";
    device.metrics().record_launch(kernel);
    let bytes = std::mem::size_of_val(data) as u64;
    device
        .metrics()
        .record_read(kernel, bytes, AccessPattern::Coalesced);

    let flags01: Vec<u32> = flags.par_iter().map(|&f| f as u32).collect();
    let (offsets, total) = exclusive_scan(device, &flags01);
    let mut out = vec![T::default(); total as usize];
    device.metrics().record_write(
        kernel,
        (out.len() * std::mem::size_of::<T>()) as u64,
        AccessPattern::Coalesced,
    );
    {
        let shared = SharedSlice::new(&mut out);
        data.par_iter()
            .zip(flags.par_iter())
            .zip(offsets.par_iter())
            .for_each(|((&v, &flag), &dst)| {
                if flag {
                    // SAFETY: output positions of flagged elements are the
                    // exclusive scan of the flags, hence unique.
                    unsafe { shared.write(dst as usize, v) };
                }
            });
    }
    out
}

/// Compact parallel key and value arrays by a shared flag array.
pub fn compact_pairs_by_flag(
    device: &Device,
    keys: &[u32],
    values: &[u32],
    flags: &[bool],
) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(keys.len(), values.len());
    assert_eq!(keys.len(), flags.len());
    let pairs: Vec<(u32, u32)> = keys.iter().copied().zip(values.iter().copied()).collect();
    let kept = compact_by_flag(device, &pairs, flags);
    let mut k = Vec::with_capacity(kept.len());
    let mut v = Vec::with_capacity(kept.len());
    for (a, b) in kept {
        k.push(a);
        v.push(b);
    }
    (k, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn keeps_flagged_elements_in_order() {
        let device = device();
        let data = vec![10u32, 20, 30, 40, 50];
        let flags = vec![true, false, true, false, true];
        assert_eq!(compact_by_flag(&device, &data, &flags), vec![10, 30, 50]);
    }

    #[test]
    fn all_false_gives_empty() {
        let device = device();
        let data = vec![1u32, 2, 3];
        assert!(compact_by_flag(&device, &data, &[false; 3]).is_empty());
    }

    #[test]
    fn all_true_copies_everything() {
        let device = device();
        let data: Vec<u32> = (0..10_000).collect();
        let flags = vec![true; data.len()];
        assert_eq!(compact_by_flag(&device, &data, &flags), data);
    }

    #[test]
    fn empty_input() {
        let device = device();
        let out: Vec<u32> = compact_by_flag(&device, &[], &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn large_compaction_matches_filter() {
        let device = device();
        let data: Vec<u32> = (0..100_000).collect();
        let flags: Vec<bool> = data.iter().map(|&x| x % 7 == 0).collect();
        let expected: Vec<u32> = data.iter().copied().filter(|&x| x % 7 == 0).collect();
        assert_eq!(compact_by_flag(&device, &data, &flags), expected);
    }

    #[test]
    fn pair_compaction_keeps_association() {
        let device = device();
        let keys = vec![1u32, 2, 3, 4];
        let vals = vec![10u32, 20, 30, 40];
        let flags = vec![false, true, true, false];
        let (k, v) = compact_pairs_by_flag(&device, &keys, &vals, &flags);
        assert_eq!(k, vec![2, 3]);
        assert_eq!(v, vec![20, 30]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let device = device();
        let _ = compact_by_flag(&device, &[1u32, 2], &[true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_compact_equals_filter(
            data in proptest::collection::vec(any::<u32>(), 0..800),
            seed in any::<u64>()
        ) {
            let device = device();
            let flags: Vec<bool> = data
                .iter()
                .enumerate()
                .map(|(i, _)| (seed.wrapping_mul(i as u64 + 1) >> 7) & 1 == 1)
                .collect();
            let expected: Vec<u32> = data
                .iter()
                .zip(flags.iter())
                .filter(|(_, &f)| f)
                .map(|(&v, _)| v)
                .collect();
            prop_assert_eq!(compact_by_flag(&device, &data, &flags), expected);
        }
    }
}
