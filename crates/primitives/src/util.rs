//! Internal helpers shared by the primitives.

use std::cell::UnsafeCell;

use gpu_sim::{AccessPattern, Device};

/// Record one kernel launch that streams `n` elements of `elem_bytes` each
/// through global memory (one coalesced read plus one coalesced write of
/// the whole input) — the accounting shape shared by every bulk primitive.
pub(crate) fn record_streaming(device: &Device, kernel: &str, n: usize, elem_bytes: usize) {
    device.metrics().record_launch(kernel);
    let bytes = (n * elem_bytes) as u64;
    device
        .metrics()
        .record_read(kernel, bytes, AccessPattern::Coalesced);
    device
        .metrics()
        .record_write(kernel, bytes, AccessPattern::Coalesced);
}

/// A shared, mutable slice that can be written from multiple rayon workers
/// when the caller guarantees the written index ranges are disjoint.
///
/// Scatter phases (radix sort, compaction, multisplit) compute, per block, a
/// set of destination indices that are provably disjoint across blocks
/// (each destination is `bucket_base + rank`, and ranks partition the bucket
/// range block by block).  Rust cannot see that disjointness through a plain
/// `&mut [T]`, so this wrapper provides the unsafe escape hatch with the
/// invariant documented in one place.
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Sync for SharedSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice for disjoint parallel writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` and `&[UnsafeCell<T>]` have the same layout and
        // the exclusive borrow is held for the lifetime of the wrapper.
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        SharedSlice { data }
    }

    /// Number of elements.
    #[allow(dead_code)] // exercised by tests; kept for symmetry with slices
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Write `value` at `index`.
    ///
    /// # Safety
    /// Callers must guarantee no other thread reads or writes `index`
    /// concurrently (disjoint destination ranges).
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.data.len(), "scatter index out of bounds");
        *self.data[index].get() = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn shared_slice_disjoint_parallel_writes() {
        let mut data = vec![0u32; 1024];
        {
            let shared = SharedSlice::new(&mut data);
            (0..1024usize).into_par_iter().for_each(|i| {
                // Each index written exactly once: disjoint by construction.
                unsafe { shared.write(i, i as u32 * 3) };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 3));
    }

    #[test]
    fn shared_slice_len_matches() {
        let mut data = vec![0u8; 17];
        let shared = SharedSlice::new(&mut data);
        assert_eq!(shared.len(), 17);
    }
}
