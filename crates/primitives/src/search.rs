//! Vectorized binary searches: per-query `lower_bound` / `upper_bound`
//! against sorted device buffers.
//!
//! Lookups, counts and range queries all start by binary-searching every
//! occupied level (paper §III-D, §III-E).  Each probe of a binary search is
//! a data-dependent global-memory access — the paper calls the resulting
//! random accesses the main bottleneck of its lookups — so the bulk variants
//! here account their probes as scattered traffic.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

/// Index of the first element of the sorted slice `data` for which
/// `less(element, probe)` is false (i.e. the first element `>= probe` under
/// the ordering induced by `less`).
pub fn lower_bound_by<T, F>(data: &[T], probe: &T, less: F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if less(&data[mid], probe) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Index of the first element of the sorted slice `data` for which
/// `less(probe, element)` is true (i.e. the first element `> probe`).
pub fn upper_bound_by<T, F>(data: &[T], probe: &T, less: F) -> usize
where
    F: Fn(&T, &T) -> bool,
{
    let mut lo = 0usize;
    let mut hi = data.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if less(probe, &data[mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Number of binary-search probes for a slice of length `n` (used for
/// traffic accounting).
fn probes_for(n: usize) -> u64 {
    (usize::BITS - n.leading_zeros()) as u64
}

/// Bulk lower bound: one query per thread, all queries in parallel
/// (moderngpu `SortedSearch` style).  Returns one index per query.
pub fn bulk_lower_bound<T, F>(device: &Device, data: &[T], queries: &[T], less: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let kernel = "bulk_lower_bound";
    device.metrics().record_launch(kernel);
    device.metrics().record_read(
        kernel,
        std::mem::size_of_val(queries) as u64,
        AccessPattern::Coalesced,
    );
    device.metrics().record_scattered_probes(
        kernel,
        queries.len() as u64 * probes_for(data.len()),
        std::mem::size_of::<T>() as u64,
    );
    queries
        .par_iter()
        .map(|q| lower_bound_by(data, q, &less))
        .collect()
}

/// Bulk upper bound: one query per thread, all queries in parallel.
pub fn bulk_upper_bound<T, F>(device: &Device, data: &[T], queries: &[T], less: F) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T, &T) -> bool + Sync,
{
    let kernel = "bulk_upper_bound";
    device.metrics().record_launch(kernel);
    device.metrics().record_read(
        kernel,
        std::mem::size_of_val(queries) as u64,
        AccessPattern::Coalesced,
    );
    device.metrics().record_scattered_probes(
        kernel,
        queries.len() as u64 * probes_for(data.len()),
        std::mem::size_of::<T>() as u64,
    );
    queries
        .par_iter()
        .map(|q| upper_bound_by(data, q, &less))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn lt(a: &u32, b: &u32) -> bool {
        a < b
    }

    #[test]
    fn lower_bound_basic() {
        let data = vec![1u32, 3, 3, 5, 7];
        assert_eq!(lower_bound_by(&data, &0, lt), 0);
        assert_eq!(lower_bound_by(&data, &3, lt), 1);
        assert_eq!(lower_bound_by(&data, &4, lt), 3);
        assert_eq!(lower_bound_by(&data, &8, lt), 5);
    }

    #[test]
    fn upper_bound_basic() {
        let data = vec![1u32, 3, 3, 5, 7];
        assert_eq!(upper_bound_by(&data, &0, lt), 0);
        assert_eq!(upper_bound_by(&data, &3, lt), 3);
        assert_eq!(upper_bound_by(&data, &7, lt), 5);
    }

    #[test]
    fn bounds_on_empty_slice() {
        let data: Vec<u32> = vec![];
        assert_eq!(lower_bound_by(&data, &5, lt), 0);
        assert_eq!(upper_bound_by(&data, &5, lt), 0);
    }

    #[test]
    fn bulk_search_matches_scalar() {
        let device = device();
        let data: Vec<u32> = (0..10_000).map(|i| i * 3).collect();
        let queries: Vec<u32> = (0..5000).map(|i| i * 7 % 30_000).collect();
        let lb = bulk_lower_bound(&device, &data, &queries, lt);
        let ub = bulk_upper_bound(&device, &data, &queries, lt);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(lb[i], data.partition_point(|x| x < q));
            assert_eq!(ub[i], data.partition_point(|x| x <= q));
        }
    }

    #[test]
    fn bulk_search_records_scattered_traffic() {
        let device = device();
        let data: Vec<u32> = (0..1024).collect();
        let queries: Vec<u32> = (0..100).collect();
        let _ = bulk_lower_bound(&device, &data, &queries, lt);
        let snap = device.metrics().snapshot();
        assert!(snap["bulk_lower_bound"].scattered_transactions > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_bounds_match_partition_point(
            mut data in proptest::collection::vec(0u32..1000, 0..500),
            probe in 0u32..1000
        ) {
            data.sort_unstable();
            prop_assert_eq!(lower_bound_by(&data, &probe, lt), data.partition_point(|x| *x < probe));
            prop_assert_eq!(upper_bound_by(&data, &probe, lt), data.partition_point(|x| *x <= probe));
        }

        #[test]
        fn prop_lower_le_upper(
            mut data in proptest::collection::vec(0u32..100, 0..300),
            probe in 0u32..100
        ) {
            data.sort_unstable();
            let lb = lower_bound_by(&data, &probe, lt);
            let ub = upper_bound_by(&data, &probe, lt);
            prop_assert!(lb <= ub);
            prop_assert_eq!(ub - lb, data.iter().filter(|&&x| x == probe).count());
        }
    }
}
