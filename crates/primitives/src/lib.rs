//! # gpu-primitives — bulk parallel primitives for the GPU LSM
//!
//! The paper builds the GPU LSM out of a small set of bulk primitives taken
//! from CUB and moderngpu: radix sort, merge, exclusive scan, segmented sort,
//! stream compaction and the authors' two-bucket multisplit.  This crate
//! provides those primitives, implemented from scratch on top of the
//! [`gpu_sim`] substrate: every primitive decomposes its input into block
//! tiles (sized for the modelled device's shared memory), runs the blocks in
//! parallel, and records the global-memory traffic it would generate so the
//! cost model can estimate device time.
//!
//! Semantics the GPU LSM depends on:
//!
//! * [`radix_sort`] is **stable** and sorts by the full 32-bit key (including
//!   the status bit), exactly like CUB's radix sort.
//! * [`merge`] is **stable** under an arbitrary comparator, and "stable"
//!   additionally means *the first input wins ties*, which is how the LSM
//!   keeps more recent elements ahead of older ones (§IV-A).
//! * [`segmented_sort`] sorts each query's candidate segment by key while
//!   preserving the temporal (index) order of equal keys.
//! * [`multisplit`] is a stable two-bucket partition (valid/stale) used by
//!   cleanup and range compaction.
//! * [`filter`] and [`fence`] are the query-acceleration structures built
//!   once per level on the insert path: a blocked Bloom filter (one
//!   cache-line block per membership test) and a fence array (sparse sorted
//!   samples in Eytzinger layout) that let queries skip levels or narrow
//!   their binary searches without ever changing results.
//!
//! ```
//! use gpu_sim::Device;
//! use gpu_primitives::radix_sort;
//!
//! let device = Device::k40c();
//! let mut keys = vec![5u32, 1, 4, 1, 3];
//! let mut vals = vec![50u32, 10, 40, 11, 30];
//! radix_sort::sort_pairs(&device, &mut keys, &mut vals);
//! assert_eq!(keys, vec![1, 1, 3, 4, 5]);
//! assert_eq!(vals, vec![10, 11, 30, 40, 50]); // stable: first 1 kept first
//! ```

#![warn(missing_docs)]

pub mod compact;
pub mod fence;
pub mod filter;
pub mod histogram;
pub mod merge;
pub mod multisplit;
pub mod radix_sort;
pub mod reduce;
pub mod scan;
pub mod search;
pub mod segmented_sort;
pub mod sorted_search;
pub(crate) mod util;

pub use compact::{compact_by_flag, compact_pairs_by_flag};
pub use fence::FenceArray;
pub use filter::BloomFilter;
pub use merge::{merge_by, merge_pairs_by, merge_pairs_by_into};
pub use multisplit::{multisplit_in_place, multisplit_pairs_in_place};
pub use radix_sort::{sort_keys, sort_pairs};
pub use scan::{exclusive_scan, exclusive_scan_in_place, inclusive_scan};
pub use search::{lower_bound_by, upper_bound_by};
