//! Blocked Bloom filter for per-level membership pre-tests.
//!
//! The paper's lookup probes every occupied level with a binary search, so a
//! miss pays `O(levels · log n)` random accesses; §VI names per-level
//! filters as the natural remedy it leaves unexplored.  This module provides
//! the GPU-friendly variant: a **blocked** Bloom filter (Putze, Sanders &
//! Singler's "cache-, hash- and space-efficient Bloom filters"), where every
//! key hashes to exactly **one cache-line-sized block** and all of its probe
//! bits live inside that block.  A membership test therefore costs a single
//! 64-byte read — on the modelled GPU, one coalesced memory transaction per
//! warp of queries — instead of `k` scattered ones.
//!
//! Sizing is controlled by the `LSM_BLOOM_BITS` environment variable (bits
//! per key; `0` disables filters entirely, the default is
//! [`DEFAULT_BITS_PER_KEY`]).  The false-positive rate at the default sizing
//! is pinned below 5 % by a unit test; filters are *conservative by
//! construction* — a negative answer is definitive, a positive answer only
//! means "search the level" — so enabling or disabling them can never change
//! query results, only query cost.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};

/// Words per filter block: 8 × `u64` = 64 bytes = 512 bits, one cache line
/// (and one coalesced transaction on the modelled device).
pub const BLOCK_WORDS: usize = 8;

/// Bytes per filter block.
pub const BLOCK_BYTES: usize = BLOCK_WORDS * 8;

/// Bits per filter block.
const BLOCK_BITS: u32 = (BLOCK_BYTES * 8) as u32;

/// Default filter sizing in bits per key (≈ 3–4 % false positives with the
/// derived probe count; see [`probes_for_bits`]).
pub const DEFAULT_BITS_PER_KEY: u32 = 8;

/// `-1` = no override; `>= 0` replaces the environment-derived sizing.
static BITS_OVERRIDE: AtomicI64 = AtomicI64::new(-1);

/// The `LSM_BLOOM_BITS` environment knob, read once per process: bits per
/// key used when a level builds its filter.  `0` disables filter
/// construction entirely.
pub fn env_bits_per_key() -> u32 {
    static ENV: OnceLock<u32> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("LSM_BLOOM_BITS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .map_or(DEFAULT_BITS_PER_KEY, |bits| bits.min(64))
    })
}

/// The effective bits-per-key configuration: a test override if one is set,
/// otherwise the `LSM_BLOOM_BITS` environment value (default
/// [`DEFAULT_BITS_PER_KEY`]).
pub fn config_bits_per_key() -> u32 {
    let o = BITS_OVERRIDE.load(Ordering::Relaxed);
    if o >= 0 {
        o as u32
    } else {
        env_bits_per_key()
    }
}

/// Test-only override of the filter sizing: `Some(0)` disables filters for
/// subsequently built levels, `Some(bits)` pins the sizing, `None` restores
/// the environment-derived configuration.  Lets a differential test build
/// filters-on and filters-off structures in the same process.
#[doc(hidden)]
pub fn set_bloom_bits_override(bits: Option<u32>) {
    BITS_OVERRIDE.store(bits.map_or(-1, i64::from), Ordering::Relaxed);
}

/// Number of probe bits per key for a given bits-per-key sizing.  Smaller
/// than the information-theoretic optimum (`ln 2 · bits`) on purpose: filter
/// construction rides the insert path's merge pass, and below ~4 probes the
/// marginal false-positive improvement stops paying for the extra hashing.
pub fn probes_for_bits(bits_per_key: u32) -> u32 {
    ((bits_per_key * 35).div_ceil(100)).clamp(1, 6)
}

/// A blocked Bloom filter over 32-bit keys.
///
/// Immutable once built; cloning shares the bit array (levels are cloned
/// whenever the owning structure is, and the filter is read-only after
/// construction).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    blocks: Arc<[u64]>,
    num_blocks: u64,
    probes: u32,
    bits_per_key: u32,
    /// Number of keys hashed into the bit array over the filter's whole
    /// history (build + unions + insertions) — the denominator of
    /// [`BloomFilter::effective_bits_per_key`].
    keys_covered: u64,
}

/// Mix a key into 64 well-distributed bits (splitmix64 finalizer).
#[inline]
fn mix(key: u32) -> u64 {
    let mut h = u64::from(key).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl BloomFilter {
    /// Build a filter sized at `bits_per_key` over `keys`.  Returns `None`
    /// when the sizing is zero (filters disabled) or the key set is empty.
    ///
    /// Construction cost is what the insert path pays, so the per-key work
    /// is kept minimal: one 64-bit mix, one block pick, and the probe bits
    /// sliced straight out of disjoint hash fields (no second hash, no
    /// modulo loop).
    pub fn build(keys: impl ExactSizeIterator<Item = u32>, bits_per_key: u32) -> Option<Self> {
        let n = keys.len();
        if bits_per_key == 0 || n == 0 {
            return None;
        }
        let num_blocks =
            ((n as u64 * u64::from(bits_per_key)).div_ceil(u64::from(BLOCK_BITS))).max(1);
        let probes = probes_for_bits(bits_per_key);
        let mut blocks = vec![0u64; num_blocks as usize * BLOCK_WORDS];
        for key in keys {
            Self::set_bits(&mut blocks, num_blocks, probes, key);
        }
        Some(BloomFilter {
            blocks: blocks.into(),
            num_blocks,
            probes,
            bits_per_key,
            keys_covered: n as u64,
        })
    }

    /// Set one key's probe bits in a mutable block array (the build /
    /// insertion kernel body).
    #[inline]
    fn set_bits(blocks: &mut [u64], num_blocks: u64, probes: u32, key: u32) {
        let h = mix(key);
        let base = Self::block_of(h, num_blocks) * BLOCK_WORDS;
        let block: &mut [u64; BLOCK_WORDS] = (&mut blocks[base..base + BLOCK_WORDS])
            .try_into()
            .expect("block slice has BLOCK_WORDS words");
        for i in 0..probes {
            let bit = Self::probe_bit(h, i);
            block[(bit >> 6) as usize] |= 1u64 << (bit & 63);
        }
    }

    /// Union two filters of **identical geometry** (same block count and
    /// probe count) by OR-ing their bit arrays: the result answers `true`
    /// for every key either input covered — exactly the filter the union
    /// key set would hash to at this size, i.e. still no false negatives.
    ///
    /// Returns `None` when the geometries differ (the bit patterns are not
    /// compatible; callers fall back to a rebuild).  The union's false
    /// positive rate is that of the doubled load: check
    /// [`BloomFilter::effective_bits_per_key`] before accepting it.
    pub fn try_union(&self, other: &Self) -> Option<Self> {
        if self.num_blocks != other.num_blocks || self.probes != other.probes {
            return None;
        }
        let blocks: Vec<u64> = self
            .blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(&a, &b)| a | b)
            .collect();
        Some(BloomFilter {
            blocks: blocks.into(),
            num_blocks: self.num_blocks,
            probes: self.probes,
            bits_per_key: self.bits_per_key.min(other.bits_per_key),
            keys_covered: self.keys_covered + other.keys_covered,
        })
    }

    /// A copy of this filter with `keys` additionally hashed in (the
    /// one-sided *re-hash* merge: when only one of two merged runs carries
    /// a filter, cloning it and inserting the other run's keys hashes half
    /// the keys a full rebuild would).  Geometry is unchanged, so the load
    /// — and the false-positive rate — grows with every key added; callers
    /// police [`BloomFilter::effective_bits_per_key`].
    pub fn with_keys_inserted(&self, keys: impl ExactSizeIterator<Item = u32>) -> Self {
        let mut blocks: Vec<u64> = self.blocks.to_vec();
        let added = keys.len() as u64;
        for key in keys {
            Self::set_bits(&mut blocks, self.num_blocks, self.probes, key);
        }
        BloomFilter {
            blocks: blocks.into(),
            num_blocks: self.num_blocks,
            probes: self.probes,
            bits_per_key: self.bits_per_key,
            keys_covered: self.keys_covered + added,
        }
    }

    /// Bits of filter memory per covered key — the quantity that actually
    /// governs the false-positive rate after unions and insertions have
    /// raised the load beyond the build-time sizing.
    pub fn effective_bits_per_key(&self) -> f64 {
        let total_bits = (self.blocks.len() * 64) as f64;
        total_bits / self.keys_covered.max(1) as f64
    }

    /// Number of keys hashed into the filter over its whole history.
    pub fn keys_covered(&self) -> u64 {
        self.keys_covered
    }

    /// Fast unbiased-enough range reduction of the hash's high half.
    #[inline]
    fn block_of(h: u64, num_blocks: u64) -> usize {
        (((h >> 32) * num_blocks) >> 32) as usize
    }

    /// The `i`-th probe's bit position within the 512-bit block: disjoint
    /// 9-bit fields of the hash's low half for the first three probes
    /// (independent of the block-selecting high half), then odd-stride
    /// steps off the first field for the rare larger-`k` sizings.
    #[inline]
    fn probe_bit(h: u64, i: u32) -> u32 {
        if i < 3 {
            ((h >> (9 * i)) as u32) & (BLOCK_BITS - 1)
        } else {
            let step = (((h >> 27) as u32) & (BLOCK_BITS - 1)) | 1;
            ((h as u32).wrapping_add(i.wrapping_mul(step))) & (BLOCK_BITS - 1)
        }
    }

    /// Membership test.  `false` is definitive (the key was *not* in the
    /// build set); `true` may be a false positive.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        let h = mix(key);
        let base = Self::block_of(h, self.num_blocks) * BLOCK_WORDS;
        let block: &[u64; BLOCK_WORDS] = self.blocks[base..base + BLOCK_WORDS]
            .try_into()
            .expect("block slice has BLOCK_WORDS words");
        for i in 0..self.probes {
            let bit = Self::probe_bit(h, i);
            if block[(bit >> 6) as usize] & (1u64 << (bit & 63)) == 0 {
                return false;
            }
        }
        true
    }

    /// Size of the bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks.len() * std::mem::size_of::<u64>()
    }

    /// The bits-per-key sizing this filter was built with.
    pub fn bits_per_key(&self) -> u32 {
        self.bits_per_key
    }

    /// Number of probe bits checked per membership test.
    pub fn num_probes(&self) -> u32 {
        self.probes
    }

    /// Number of cache-line blocks in the bit array.
    pub fn num_blocks(&self) -> u64 {
        self.num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32, seed: u32) -> Vec<u32> {
        // Distinct pseudo-random 31-bit keys (odd-multiplier permutation).
        (0..n)
            .map(|i| (i ^ seed).wrapping_mul(2_654_435_761) & 0x7FFF_FFFF)
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let members = keys(10_000, 7);
        let filter = BloomFilter::build(members.iter().copied(), DEFAULT_BITS_PER_KEY).unwrap();
        assert!(members.iter().all(|&k| filter.contains(k)));
    }

    #[test]
    fn false_positive_rate_under_five_percent_at_default_sizing() {
        let members = keys(20_000, 1);
        let member_set: std::collections::HashSet<u32> = members.iter().copied().collect();
        let filter = BloomFilter::build(members.iter().copied(), DEFAULT_BITS_PER_KEY).unwrap();
        let absent: Vec<u32> = keys(60_000, 999)
            .into_iter()
            .filter(|k| !member_set.contains(k))
            .take(40_000)
            .collect();
        let fp = absent.iter().filter(|&&k| filter.contains(k)).count();
        let rate = fp as f64 / absent.len() as f64;
        assert!(
            rate < 0.05,
            "false-positive rate {rate:.4} exceeds 5% at {DEFAULT_BITS_PER_KEY} bits/key"
        );
        // And the filter is not degenerate (everything-positive).
        assert!(rate >= 0.0);
    }

    #[test]
    fn zero_bits_or_empty_keys_build_nothing() {
        assert!(BloomFilter::build([1u32, 2].into_iter(), 0).is_none());
        assert!(BloomFilter::build(std::iter::empty(), 8).is_none());
    }

    #[test]
    fn size_follows_bits_per_key() {
        let members = keys(4_096, 3);
        let small = BloomFilter::build(members.iter().copied(), 4).unwrap();
        let large = BloomFilter::build(members.iter().copied(), 16).unwrap();
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(small.size_bytes() % BLOCK_BYTES, 0);
        assert!(large.num_probes() >= small.num_probes());
        assert_eq!(small.bits_per_key(), 4);
    }

    #[test]
    fn probe_count_is_clamped() {
        assert_eq!(probes_for_bits(1), 1);
        assert_eq!(probes_for_bits(8), 3);
        assert!(probes_for_bits(64) <= 6);
    }

    #[test]
    fn union_covers_both_key_sets_and_tracks_load() {
        let a = keys(8_192, 11);
        let b = keys(8_192, 77);
        let fa = BloomFilter::build(a.iter().copied(), DEFAULT_BITS_PER_KEY).unwrap();
        let fb = BloomFilter::build(b.iter().copied(), DEFAULT_BITS_PER_KEY).unwrap();
        let union = fa.try_union(&fb).expect("same geometry");
        assert!(a.iter().chain(b.iter()).all(|&k| union.contains(k)));
        assert_eq!(union.keys_covered(), fa.keys_covered() + fb.keys_covered());
        assert_eq!(union.num_blocks(), fa.num_blocks());
        // The load doubled, so the effective sizing halved.
        assert!(union.effective_bits_per_key() <= fa.effective_bits_per_key() / 2.0 + 0.01);
        // Mismatched geometry is refused, not silently mangled.
        let small = BloomFilter::build(a.iter().take(100).copied(), DEFAULT_BITS_PER_KEY).unwrap();
        assert!(fa.try_union(&small).is_none());
        let other_probes = BloomFilter::build(a.iter().copied(), 16).unwrap();
        assert!(fa.try_union(&other_probes).is_none());
    }

    #[test]
    fn inserting_keys_preserves_membership_of_both_sides() {
        let old = keys(4_096, 5);
        let new = keys(4_096, 123);
        let filter = BloomFilter::build(old.iter().copied(), DEFAULT_BITS_PER_KEY).unwrap();
        let grown = filter.with_keys_inserted(new.iter().copied());
        assert!(old.iter().chain(new.iter()).all(|&k| grown.contains(k)));
        assert_eq!(grown.keys_covered(), 8_192);
        assert_eq!(grown.num_blocks(), filter.num_blocks());
        // The original is untouched (copy-on-write semantics).
        assert_eq!(filter.keys_covered(), 4_096);
    }

    #[test]
    fn override_controls_config() {
        // Serialised via the override itself being process-global: restore
        // no-override state before leaving.
        set_bloom_bits_override(Some(0));
        assert_eq!(config_bits_per_key(), 0);
        set_bloom_bits_override(Some(12));
        assert_eq!(config_bits_per_key(), 12);
        set_bloom_bits_override(None);
        assert_eq!(config_bits_per_key(), env_bits_per_key());
    }
}
