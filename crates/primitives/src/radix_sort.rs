//! Stable LSD radix sort for 32-bit keys and key–value pairs (CUB
//! `DeviceRadixSort` equivalent).
//!
//! The GPU LSM sorts every incoming batch by the full 32-bit encoded key
//! (31-bit key plus the tombstone status bit) before merging it into the
//! levels (paper §IV-A, Fig. 3 line 9).  Stability matters: a tombstone has
//! status bit 0 and therefore sorts *before* a regular element with the same
//! key, which is exactly the within-batch ordering the deletion semantics
//! need; and equal encoded keys must keep their batch order so that rule 4
//! ("an arbitrary one is chosen", implemented as "the first one wins") is
//! deterministic.
//!
//! The implementation is a classical four-pass (8 bits per pass) LSD radix
//! sort.  Each pass runs three phases, all block-parallel:
//!
//! 1. per-block digit histograms ([`crate::histogram`]),
//! 2. an exclusive scan producing, for every (digit, block) pair, the global
//!    base offset of that block's elements within that digit bucket —
//!    digit-major, block-minor order, which is what makes the scatter stable,
//! 3. a scatter in which each block walks its tile in order and writes every
//!    element to `bucket_base[digit][block] + rank_within_block`.
//!
//! Destination index ranges are disjoint across blocks by construction, so
//! the scatter uses [`crate::util::SharedSlice`] for the parallel writes.

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

use crate::histogram::{block_histograms, digit, RADIX};
use crate::util::SharedSlice;

/// Number of passes needed for a full 32-bit key with 8-bit digits.
const PASSES: u32 = 4;

/// Sort `keys` ascending by the full 32-bit key.  Stable.
pub fn sort_keys(device: &Device, keys: &mut Vec<u32>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut scratch_keys = vec![0u32; n];
    for pass in 0..PASSES {
        scatter_pass(device, keys, None, &mut scratch_keys, None, pass);
        std::mem::swap(keys, &mut scratch_keys);
    }
    // PASSES is even, so the sorted data ends up back in `keys`.
}

/// Sort `(keys, values)` pairs ascending by key, moving values along with
/// their keys.  Stable: pairs with equal keys keep their input order.
pub fn sort_pairs(device: &Device, keys: &mut Vec<u32>, values: &mut Vec<u32>) {
    assert_eq!(
        keys.len(),
        values.len(),
        "keys and values must have equal length"
    );
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let mut scratch_keys = vec![0u32; n];
    let mut scratch_vals = vec![0u32; n];
    for pass in 0..PASSES {
        scatter_pass(
            device,
            keys,
            Some(values.as_slice()),
            &mut scratch_keys,
            Some(&mut scratch_vals),
            pass,
        );
        std::mem::swap(keys, &mut scratch_keys);
        std::mem::swap(values, &mut scratch_vals);
    }
}

/// One stable counting pass: scatter `keys` (and optionally `values`) into
/// the scratch buffers ordered by the `pass`-th digit.
fn scatter_pass(
    device: &Device,
    keys: &[u32],
    values: Option<&[u32]>,
    out_keys: &mut [u32],
    out_values: Option<&mut [u32]>,
    pass: u32,
) {
    let n = keys.len();
    let tile = device
        .preferred_tile(std::mem::size_of::<u32>() * 2)
        .max(1024);
    let kernel = "radix_scatter";
    device.metrics().record_launch(kernel);
    let elem_bytes = if values.is_some() { 8 } else { 4 };
    device
        .metrics()
        .record_read(kernel, (n * elem_bytes) as u64, AccessPattern::Coalesced);
    device
        .metrics()
        .record_write(kernel, (n * elem_bytes) as u64, AccessPattern::Coalesced);

    // Phase 1: per-block histograms.
    let histograms = block_histograms(device, keys, pass, tile);
    let num_blocks = histograms.len();

    // Phase 2: digit-major / block-minor exclusive scan of the counts.
    // offsets[block][digit] = start index of (digit, block) group in output.
    let mut offsets = vec![vec![0u32; RADIX]; num_blocks];
    let mut running = 0u32;
    for d in 0..RADIX {
        for (b, hist) in histograms.iter().enumerate() {
            offsets[b][d] = running;
            running += hist[d];
        }
    }
    debug_assert_eq!(running as usize, n);

    // Phase 3: stable scatter, one block at a time in parallel.
    let shared_keys = SharedSlice::new(out_keys);
    let shared_vals = out_values.map(SharedSlice::new);
    keys.par_chunks(tile)
        .enumerate()
        .for_each(|(block, chunk)| {
            let mut cursor = offsets[block].clone();
            let base = block * tile;
            for (i, &k) in chunk.iter().enumerate() {
                let d = digit(k, pass);
                let dst = cursor[d] as usize;
                cursor[d] += 1;
                // SAFETY: destination ranges are disjoint across blocks and
                // within a block each destination is produced exactly once.
                unsafe {
                    shared_keys.write(dst, k);
                    if let (Some(sv), Some(vals)) = (&shared_vals, values) {
                        sv.write(dst, vals[base + i]);
                    }
                }
            }
        });
}

/// Convenience: return a sorted copy of `keys` (used by tests and by callers
/// that need to keep the original order around).
pub fn sorted_keys(device: &Device, keys: &[u32]) -> Vec<u32> {
    let mut out = keys.to_vec();
    sort_keys(device, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn sorts_small_array() {
        let device = device();
        let mut keys = vec![5u32, 3, 8, 1, 9, 2, 7];
        sort_keys(&device, &mut keys);
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn sorts_large_random_array() {
        let device = device();
        let mut rng = StdRng::seed_from_u64(42);
        let mut keys: Vec<u32> = (0..200_000).map(|_| rng.gen()).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        sort_keys(&device, &mut keys);
        assert_eq!(keys, expected);
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        let device = device();
        let mut asc: Vec<u32> = (0..10_000).collect();
        let mut desc: Vec<u32> = (0..10_000).rev().collect();
        sort_keys(&device, &mut asc);
        sort_keys(&device, &mut desc);
        assert_eq!(asc, desc);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn handles_empty_and_single() {
        let device = device();
        let mut empty: Vec<u32> = vec![];
        sort_keys(&device, &mut empty);
        assert!(empty.is_empty());
        let mut single = vec![7u32];
        sort_keys(&device, &mut single);
        assert_eq!(single, vec![7]);
    }

    #[test]
    fn pair_sort_is_stable() {
        let device = device();
        // Many duplicate keys; values record original index.
        let mut rng = StdRng::seed_from_u64(7);
        let mut keys: Vec<u32> = (0..50_000).map(|_| rng.gen_range(0..64u32)).collect();
        let mut values: Vec<u32> = (0..50_000).collect();
        let original = keys.clone();
        sort_pairs(&device, &mut keys, &mut values);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Stability: for equal keys, original indices (values) must ascend.
        for w in keys.windows(2).zip(values.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "stability violated for key {}", kw[0]);
            }
        }
        // The multiset of (key,value) associations is preserved.
        for (k, v) in keys.iter().zip(values.iter()) {
            assert_eq!(original[*v as usize], *k);
        }
    }

    #[test]
    fn pair_sort_moves_values_with_keys() {
        let device = device();
        let mut keys = vec![30u32, 10, 20];
        let mut values = vec![3u32, 1, 2];
        sort_pairs(&device, &mut keys, &mut values);
        assert_eq!(keys, vec![10, 20, 30]);
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn sorts_keys_with_all_bits_used() {
        let device = device();
        let mut keys = vec![u32::MAX, 0, 0x8000_0000, 0x7FFF_FFFF, 1];
        sort_keys(&device, &mut keys);
        assert_eq!(keys, vec![0, 1, 0x7FFF_FFFF, 0x8000_0000, u32::MAX]);
    }

    #[test]
    fn sorted_keys_leaves_input_untouched() {
        let device = device();
        let keys = vec![3u32, 1, 2];
        let out = sorted_keys(&device, &keys);
        assert_eq!(keys, vec![3, 1, 2]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn records_scatter_traffic() {
        let device = device();
        let mut keys: Vec<u32> = (0..4096).rev().collect();
        sort_keys(&device, &mut keys);
        let snap = device.metrics().snapshot();
        assert_eq!(snap["radix_scatter"].launches, PASSES as u64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_sort_matches_std(keys in proptest::collection::vec(any::<u32>(), 0..2000)) {
            let device = device();
            let mut ours = keys.clone();
            sort_keys(&device, &mut ours);
            let mut expected = keys;
            expected.sort_unstable();
            prop_assert_eq!(ours, expected);
        }

        #[test]
        fn prop_pair_sort_preserves_multiset(
            pairs in proptest::collection::vec((0u32..1000, any::<u32>()), 0..1500)
        ) {
            let device = device();
            let mut keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let mut values: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            sort_pairs(&device, &mut keys, &mut values);
            prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            let mut got: Vec<(u32, u32)> = keys.into_iter().zip(values).collect();
            let mut expected = pairs;
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
