//! Stable LSD radix sort for 32-bit keys and key–value pairs (CUB
//! `DeviceRadixSort` equivalent).
//!
//! The GPU LSM sorts every incoming batch by the full 32-bit encoded key
//! (31-bit key plus the tombstone status bit) before merging it into the
//! levels (paper §IV-A, Fig. 3 line 9).  Stability matters: a tombstone has
//! status bit 0 and therefore sorts *before* a regular element with the same
//! key, which is exactly the within-batch ordering the deletion semantics
//! need; and equal encoded keys must keep their batch order so that rule 4
//! ("an arbitrary one is chosen", implemented as "the first one wins") is
//! deterministic.
//!
//! The implementation is a classical four-pass (8 bits per pass) LSD radix
//! sort.  Each pass runs three phases, all block-parallel:
//!
//! 1. per-block digit histograms ([`crate::histogram`]),
//! 2. an exclusive scan producing, for every (digit, block) pair, the global
//!    base offset of that block's elements within that digit bucket —
//!    digit-major, block-minor order, which is what makes the scatter stable,
//! 3. a scatter in which each block walks its tile in order and writes every
//!    element to `bucket_base[digit][block] + rank_within_block`.
//!
//! Destination index ranges are disjoint across blocks by construction, so
//! the scatter uses `crate::util::SharedSlice` for the parallel writes.
//!
//! Two small-input fast paths keep tiny batches from paying the fixed
//! 256-bucket cost:
//!
//! * at or below [`COMPARISON_SORT_CUTOFF`] elements the sort is a plain
//!   (stable for pairs) comparison sort — one cache-resident pass instead
//!   of four histogram/scan/scatter rounds;
//! * above the cutoff, a cheap bitwise-OR reduction of the keys determines
//!   how many 8-bit digits are actually populated, and only those passes
//!   run (batch keys are dense low ranges in most workloads, so 1–2 passes
//!   replace the unconditional 4).

use gpu_sim::{AccessPattern, Device};
use rayon::prelude::*;

use crate::histogram::{block_histograms, digit, RADIX, RADIX_BITS};
use crate::util::SharedSlice;

/// Maximum number of passes for a full 32-bit key with 8-bit digits.
const MAX_PASSES: u32 = 4;

/// At or below this many elements a comparison sort wins: even a single
/// radix pass pays a 256-bucket histogram, a 256-way scan and a scatter
/// through scratch buffers, which at 4Ki elements costs more than the whole
/// `sort_unstable` call on cache-resident data.
pub const COMPARISON_SORT_CUTOFF: usize = 1 << 12;

/// Record the traffic of the small-input comparison sort under its own
/// kernel name, so the device accounting still sees every sort.
fn record_small_sort(device: &Device, n: usize, elem_bytes: usize) {
    crate::util::record_streaming(device, "radix_small_sort", n, elem_bytes);
}

/// Number of radix passes actually needed for `keys`: a bitwise-OR
/// reduction over the keys (one streaming read) reveals which 8-bit digit
/// positions are ever non-zero, and passes above the highest populated
/// digit would only copy data back and forth.
fn needed_passes(device: &Device, keys: &[u32]) -> u32 {
    let kernel = "radix_bits_reduce";
    device.metrics().record_launch(kernel);
    device.metrics().record_read(
        kernel,
        std::mem::size_of_val(keys) as u64,
        AccessPattern::Coalesced,
    );
    let all_bits: u32 = keys.par_iter().copied().reduce(|| 0, |a, b| a | b);
    let bits = 32 - all_bits.leading_zeros();
    bits.div_ceil(RADIX_BITS).clamp(1, MAX_PASSES)
}

/// Sort `keys` ascending by the full 32-bit key.  Stable.
pub fn sort_keys(device: &Device, keys: &mut Vec<u32>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    if n <= COMPARISON_SORT_CUTOFF {
        record_small_sort(device, n, std::mem::size_of::<u32>());
        // Equal u32 keys are indistinguishable, so an unstable sort is
        // observationally stable here.
        keys.sort_unstable();
        return;
    }
    let passes = needed_passes(device, keys);
    let mut scratch_keys = vec![0u32; n];
    for pass in 0..passes {
        scatter_pass(device, keys, None, &mut scratch_keys, None, pass);
        // Each pass swaps, so the latest data is always back in `keys`
        // regardless of how many passes the key range needed.
        std::mem::swap(keys, &mut scratch_keys);
    }
}

/// Sort `(keys, values)` pairs ascending by key, moving values along with
/// their keys.  Stable: pairs with equal keys keep their input order.
pub fn sort_pairs(device: &Device, keys: &mut Vec<u32>, values: &mut Vec<u32>) {
    assert_eq!(
        keys.len(),
        values.len(),
        "keys and values must have equal length"
    );
    let n = keys.len();
    if n <= 1 {
        return;
    }
    if n <= COMPARISON_SORT_CUTOFF {
        record_small_sort(device, n, 2 * std::mem::size_of::<u32>());
        // Pack (key, input position) into one u64 so the fast *unstable*
        // u64 sort becomes stable by construction: equal keys tie-break on
        // the position bits, preserving input order exactly like the LSD
        // radix scatter.  Values are gathered through the positions after.
        let mut packed: Vec<u64> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (u64::from(k) << 32) | i as u64)
            .collect();
        packed.sort_unstable();
        let old_values = values.clone();
        for (i, &p) in packed.iter().enumerate() {
            keys[i] = (p >> 32) as u32;
            values[i] = old_values[(p & 0xFFFF_FFFF) as usize];
        }
        return;
    }
    let passes = needed_passes(device, keys);
    let mut scratch_keys = vec![0u32; n];
    let mut scratch_vals = vec![0u32; n];
    for pass in 0..passes {
        scatter_pass(
            device,
            keys,
            Some(values.as_slice()),
            &mut scratch_keys,
            Some(&mut scratch_vals),
            pass,
        );
        std::mem::swap(keys, &mut scratch_keys);
        std::mem::swap(values, &mut scratch_vals);
    }
}

/// One stable counting pass: scatter `keys` (and optionally `values`) into
/// the scratch buffers ordered by the `pass`-th digit.
fn scatter_pass(
    device: &Device,
    keys: &[u32],
    values: Option<&[u32]>,
    out_keys: &mut [u32],
    out_values: Option<&mut [u32]>,
    pass: u32,
) {
    let n = keys.len();
    let tile = device
        .preferred_tile(std::mem::size_of::<u32>() * 2)
        .max(1024);
    let kernel = "radix_scatter";
    device.metrics().record_launch(kernel);
    let elem_bytes = if values.is_some() { 8 } else { 4 };
    device
        .metrics()
        .record_read(kernel, (n * elem_bytes) as u64, AccessPattern::Coalesced);
    device
        .metrics()
        .record_write(kernel, (n * elem_bytes) as u64, AccessPattern::Coalesced);

    // Phase 1: per-block histograms.
    let histograms = block_histograms(device, keys, pass, tile);
    let num_blocks = histograms.len();

    // Phase 2: digit-major / block-minor exclusive scan of the counts.
    // offsets[block][digit] = start index of (digit, block) group in output.
    let mut offsets = vec![vec![0u32; RADIX]; num_blocks];
    let mut running = 0u32;
    for d in 0..RADIX {
        for (b, hist) in histograms.iter().enumerate() {
            offsets[b][d] = running;
            running += hist[d];
        }
    }
    debug_assert_eq!(running as usize, n);

    // Phase 3: stable scatter, one block at a time in parallel.
    let shared_keys = SharedSlice::new(out_keys);
    let shared_vals = out_values.map(SharedSlice::new);
    keys.par_chunks(tile)
        .enumerate()
        .for_each(|(block, chunk)| {
            let mut cursor = offsets[block].clone();
            let base = block * tile;
            for (i, &k) in chunk.iter().enumerate() {
                let d = digit(k, pass);
                let dst = cursor[d] as usize;
                cursor[d] += 1;
                // SAFETY: destination ranges are disjoint across blocks and
                // within a block each destination is produced exactly once.
                unsafe {
                    shared_keys.write(dst, k);
                    if let (Some(sv), Some(vals)) = (&shared_vals, values) {
                        sv.write(dst, vals[base + i]);
                    }
                }
            }
        });
}

/// Convenience: return a sorted copy of `keys` (used by tests and by callers
/// that need to keep the original order around).
pub fn sorted_keys(device: &Device, keys: &[u32]) -> Vec<u32> {
    let mut out = keys.to_vec();
    sort_keys(device, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    #[test]
    fn sorts_small_array() {
        let device = device();
        let mut keys = vec![5u32, 3, 8, 1, 9, 2, 7];
        sort_keys(&device, &mut keys);
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn sorts_large_random_array() {
        let device = device();
        let mut rng = StdRng::seed_from_u64(42);
        let mut keys: Vec<u32> = (0..200_000).map(|_| rng.gen()).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        sort_keys(&device, &mut keys);
        assert_eq!(keys, expected);
    }

    #[test]
    fn sorts_already_sorted_and_reverse() {
        let device = device();
        let mut asc: Vec<u32> = (0..10_000).collect();
        let mut desc: Vec<u32> = (0..10_000).rev().collect();
        sort_keys(&device, &mut asc);
        sort_keys(&device, &mut desc);
        assert_eq!(asc, desc);
        assert!(asc.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn handles_empty_and_single() {
        let device = device();
        let mut empty: Vec<u32> = vec![];
        sort_keys(&device, &mut empty);
        assert!(empty.is_empty());
        let mut single = vec![7u32];
        sort_keys(&device, &mut single);
        assert_eq!(single, vec![7]);
    }

    #[test]
    fn pair_sort_is_stable() {
        let device = device();
        // Many duplicate keys; values record original index.
        let mut rng = StdRng::seed_from_u64(7);
        let mut keys: Vec<u32> = (0..50_000).map(|_| rng.gen_range(0..64u32)).collect();
        let mut values: Vec<u32> = (0..50_000).collect();
        let original = keys.clone();
        sort_pairs(&device, &mut keys, &mut values);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Stability: for equal keys, original indices (values) must ascend.
        for w in keys.windows(2).zip(values.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "stability violated for key {}", kw[0]);
            }
        }
        // The multiset of (key,value) associations is preserved.
        for (k, v) in keys.iter().zip(values.iter()) {
            assert_eq!(original[*v as usize], *k);
        }
    }

    #[test]
    fn pair_sort_moves_values_with_keys() {
        let device = device();
        let mut keys = vec![30u32, 10, 20];
        let mut values = vec![3u32, 1, 2];
        sort_pairs(&device, &mut keys, &mut values);
        assert_eq!(keys, vec![10, 20, 30]);
        assert_eq!(values, vec![1, 2, 3]);
    }

    #[test]
    fn sorts_keys_with_all_bits_used() {
        let device = device();
        let mut keys = vec![u32::MAX, 0, 0x8000_0000, 0x7FFF_FFFF, 1];
        sort_keys(&device, &mut keys);
        assert_eq!(keys, vec![0, 1, 0x7FFF_FFFF, 0x8000_0000, u32::MAX]);
    }

    #[test]
    fn sorted_keys_leaves_input_untouched() {
        let device = device();
        let keys = vec![3u32, 1, 2];
        let out = sorted_keys(&device, &keys);
        assert_eq!(keys, vec![3, 1, 2]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn records_scatter_traffic_for_full_range_keys() {
        let device = device();
        // Top byte populated (u32::MAX - i), so all four passes must run;
        // the input is above the comparison-sort cutoff.
        let mut keys: Vec<u32> = (0..20_000).map(|i| u32::MAX - i).collect();
        sort_keys(&device, &mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let snap = device.metrics().snapshot();
        assert_eq!(snap["radix_scatter"].launches, MAX_PASSES as u64);
        assert_eq!(snap["radix_bits_reduce"].launches, 1);
    }

    #[test]
    fn narrow_key_ranges_skip_high_digit_passes() {
        let device = device();
        // Keys fit in 16 bits: only two of the four passes should run.
        let mut keys: Vec<u32> = (0..20_000u32).map(|i| (i * 7919) % (1 << 16)).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        sort_keys(&device, &mut keys);
        assert_eq!(keys, expected);
        let snap = device.metrics().snapshot();
        assert_eq!(snap["radix_scatter"].launches, 2);

        // Single-digit keys collapse to one pass.
        let dev_one = Device::new(DeviceConfig::small());
        let mut keys: Vec<u32> = (0..20_000u32).map(|i| (i * 31) % 251).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        sort_keys(&dev_one, &mut keys);
        assert_eq!(keys, expected);
        assert_eq!(dev_one.metrics().snapshot()["radix_scatter"].launches, 1);
    }

    #[test]
    fn small_inputs_use_the_comparison_path() {
        let device = device();
        let mut keys: Vec<u32> = (0..(COMPARISON_SORT_CUTOFF as u32)).rev().collect();
        sort_keys(&device, &mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let snap = device.metrics().snapshot();
        assert!(snap.contains_key("radix_small_sort"));
        assert!(
            !snap.contains_key("radix_scatter"),
            "small inputs must not pay the radix machinery"
        );
    }

    #[test]
    fn pair_sort_is_stable_on_both_sides_of_the_cutoff() {
        // Duplicate-heavy keys; values record input order.  Stability must
        // hold for the comparison path and the radix path alike.
        for n in [COMPARISON_SORT_CUTOFF / 2, 4 * COMPARISON_SORT_CUTOFF] {
            let device = device();
            let mut rng = StdRng::seed_from_u64(99);
            let mut keys: Vec<u32> = (0..n).map(|_| rng.gen_range(0..32u32)).collect();
            let mut values: Vec<u32> = (0..n as u32).collect();
            sort_pairs(&device, &mut keys, &mut values);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            for w in keys.windows(2).zip(values.windows(2)) {
                let (kw, vw) = w;
                if kw[0] == kw[1] {
                    assert!(vw[0] < vw[1], "stability violated at n = {n}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_sort_matches_std(keys in proptest::collection::vec(any::<u32>(), 0..2000)) {
            let device = device();
            let mut ours = keys.clone();
            sort_keys(&device, &mut ours);
            let mut expected = keys;
            expected.sort_unstable();
            prop_assert_eq!(ours, expected);
        }

        #[test]
        fn prop_fast_paths_match_std_across_key_ranges(
            raw in proptest::collection::vec(any::<u32>(), 0..600),
            mask_idx in 0usize..5,
            stretch in 1usize..12
        ) {
            // Adversarial key ranges: masking to 8/16/24/32 bits (plus an
            // all-zero mask) drives the pass-skipping branch through every
            // possible pass count, and `stretch` repeats the data so the
            // input lands on both sides of the comparison-sort cutoff
            // (up to ~6600 elements against a 4096 cutoff).
            let mask = [0u32, 0xFF, 0xFFFF, 0xFF_FFFF, u32::MAX][mask_idx];
            let keys_once: Vec<u32> = raw.iter().map(|&k| k & mask).collect();
            let mut keys: Vec<u32> = keys_once
                .iter()
                .cycle()
                .take(keys_once.len() * stretch)
                .copied()
                .collect();
            let mut expected = keys.clone();
            expected.sort_unstable();
            let device = device();
            sort_keys(&device, &mut keys);
            prop_assert_eq!(keys, expected);
        }

        #[test]
        fn prop_pair_sort_preserves_multiset(
            pairs in proptest::collection::vec((0u32..1000, any::<u32>()), 0..1500)
        ) {
            let device = device();
            let mut keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let mut values: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            sort_pairs(&device, &mut keys, &mut values);
            prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            let mut got: Vec<(u32, u32)> = keys.into_iter().zip(values).collect();
            let mut expected = pairs;
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
