//! Segmented sort: independently sort many variable-length segments of one
//! buffer (moderngpu `SegSortKeysFromIndices` equivalent).
//!
//! The count/range pipelines gather each query's candidate elements into a
//! contiguous segment and then sort *within each segment* by original key
//! while **preserving the temporal order of equal keys** (paper §IV-C stage
//! 4: "LSBs (status bits) are neglected in sorting comparisons").  A stable
//! per-segment sort gives exactly that: candidates are gathered
//! level-by-level from most recent to least recent, so ties keep the most
//! recent element first.

use gpu_sim::Device;
use rayon::prelude::*;

/// Below this many total elements the per-segment slicing and parallel
/// dispatch cost more than sorting the segments back to back.
const SEQUENTIAL_SEGSORT_CUTOFF: usize = 1 << 11;

/// Check that `offsets` is a valid segment description for a buffer of
/// length `n`: monotonically non-decreasing, starting at 0, ending at `n`.
fn validate_offsets(offsets: &[usize], n: usize) {
    assert!(
        !offsets.is_empty(),
        "segment offsets must at least be [0, n]"
    );
    assert_eq!(*offsets.first().unwrap(), 0, "segments must start at 0");
    assert_eq!(
        *offsets.last().unwrap(),
        n,
        "segments must end at data length"
    );
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "segment offsets must be non-decreasing"
    );
}

/// Sort each segment of `keys` with the stable comparator `less`.
/// `offsets` has one more entry than there are segments; segment `i` spans
/// `offsets[i]..offsets[i + 1]`.
pub fn segmented_sort_keys_by<F>(device: &Device, keys: &mut [u32], offsets: &[usize], less: F)
where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    validate_offsets(offsets, keys.len());
    record(device, "segmented_sort_keys", keys.len(), 4);
    par_segments(keys, offsets, |segment| {
        segment.sort_by(|a, b| cmp_from_less(&less, a, b));
    });
}

/// Sort each segment of `(keys, values)` pairs by key with the stable
/// comparator `less`, moving values along with their keys.
pub fn segmented_sort_pairs_by<F>(
    device: &Device,
    keys: &mut [u32],
    values: &mut [u32],
    offsets: &[usize],
    less: F,
) where
    F: Fn(&u32, &u32) -> bool + Sync,
{
    assert_eq!(keys.len(), values.len());
    validate_offsets(offsets, keys.len());
    record(device, "segmented_sort_pairs", keys.len(), 8);

    // Sort (key, value) tuples per segment; the comparator sees keys only so
    // the sort is stable with respect to values.
    let mut pairs: Vec<(u32, u32)> = keys.iter().copied().zip(values.iter().copied()).collect();
    par_segments(&mut pairs, offsets, |segment| {
        segment.sort_by(|a, b| cmp_from_less(&less, &a.0, &b.0));
    });
    for (i, (k, v)) in pairs.into_iter().enumerate() {
        keys[i] = k;
        values[i] = v;
    }
}

fn cmp_from_less<F: Fn(&u32, &u32) -> bool>(less: &F, a: &u32, b: &u32) -> std::cmp::Ordering {
    if less(a, b) {
        std::cmp::Ordering::Less
    } else if less(b, a) {
        std::cmp::Ordering::Greater
    } else {
        std::cmp::Ordering::Equal
    }
}

use crate::util::record_streaming as record;

/// Run `f` over every segment of `data` in parallel.  Segments are disjoint
/// sub-slices, so this splits the buffer with `split_at_mut` successively.
fn par_segments<T, F>(data: &mut [T], offsets: &[usize], f: F)
where
    T: Send,
    F: Fn(&mut [T]) + Sync,
{
    // Small buffers: sort the segments in place without building the
    // sub-slice vector or touching the parallel machinery at all.
    if data.len() <= SEQUENTIAL_SEGSORT_CUTOFF {
        for w in offsets.windows(2) {
            f(&mut data[w[0]..w[1]]);
        }
        return;
    }
    // Slice the buffer into per-segment mutable sub-slices.
    let mut segments: Vec<&mut [T]> = Vec::with_capacity(offsets.len() - 1);
    let mut rest = data;
    let mut consumed = 0usize;
    for w in offsets.windows(2) {
        let len = w[1] - w[0];
        debug_assert_eq!(w[0], consumed);
        let (seg, tail) = rest.split_at_mut(len);
        segments.push(seg);
        rest = tail;
        consumed += len;
    }
    segments.into_par_iter().for_each(&f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceConfig;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::new(DeviceConfig::small())
    }

    fn lt(a: &u32, b: &u32) -> bool {
        a < b
    }

    #[test]
    fn sorts_each_segment_independently() {
        let device = device();
        let mut keys = vec![3u32, 1, 2, 9, 7, 8, 5, 4];
        let offsets = vec![0, 3, 6, 8];
        segmented_sort_keys_by(&device, &mut keys, &offsets, lt);
        assert_eq!(keys, vec![1, 2, 3, 7, 8, 9, 4, 5]);
    }

    #[test]
    fn empty_segments_are_fine() {
        let device = device();
        let mut keys = vec![2u32, 1];
        let offsets = vec![0, 0, 2, 2];
        segmented_sort_keys_by(&device, &mut keys, &offsets, lt);
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn single_segment_sorts_everything() {
        let device = device();
        let mut keys: Vec<u32> = (0..1000).rev().collect();
        let offsets = vec![0, 1000];
        segmented_sort_keys_by(&device, &mut keys, &offsets, lt);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pair_sort_is_stable_per_segment() {
        let device = device();
        // Two segments, each with duplicate keys; values record input order.
        let mut keys = vec![5u32, 5, 1, 7, 7, 7];
        let mut vals = vec![0u32, 1, 2, 3, 4, 5];
        let offsets = vec![0, 3, 6];
        segmented_sort_pairs_by(&device, &mut keys, &mut vals, &offsets, lt);
        assert_eq!(keys, vec![1, 5, 5, 7, 7, 7]);
        assert_eq!(vals, vec![2, 0, 1, 3, 4, 5]);
    }

    #[test]
    fn comparator_can_ignore_low_bit() {
        let device = device();
        // Keys encode (key << 1 | status); sort by key only, so the element
        // that appears first stays first even when status bits differ.
        let mut keys = vec![(4 << 1) | 1, (4 << 1), (2 << 1) | 1];
        let offsets = vec![0, 3];
        segmented_sort_keys_by(&device, &mut keys, &offsets, |a, b| (a >> 1) < (b >> 1));
        assert_eq!(keys, vec![(2 << 1) | 1, (4 << 1) | 1, (4 << 1)]);
    }

    #[test]
    #[should_panic(expected = "segments must end at data length")]
    fn bad_offsets_panic() {
        let device = device();
        let mut keys = vec![1u32, 2, 3];
        segmented_sort_keys_by(&device, &mut keys, &[0, 2], lt);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_segments_sorted_and_permuted(
            segs in proptest::collection::vec(proptest::collection::vec(0u32..500, 0..50), 1..20)
        ) {
            let device = device();
            let mut keys: Vec<u32> = segs.iter().flatten().copied().collect();
            let mut offsets = vec![0usize];
            for s in &segs {
                offsets.push(offsets.last().unwrap() + s.len());
            }
            segmented_sort_keys_by(&device, &mut keys, &offsets, lt);
            for (i, s) in segs.iter().enumerate() {
                let got = &keys[offsets[i]..offsets[i + 1]];
                let mut expected = s.clone();
                expected.sort_unstable();
                prop_assert_eq!(got, expected.as_slice());
            }
        }
    }
}
