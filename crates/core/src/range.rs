//! Range queries: return every valid key–value pair in `[k1, k2]`.
//!
//! Range queries share stages 1–4 with count queries (§IV-D): bounds,
//! scan, gather (keys *and* values) and segmented sort.  Stage 5 differs:
//! instead of tallying, each key run's newest element is marked valid if it
//! is a regular element, and a flag-based compaction gathers the surviving
//! pairs per query, producing per-query offsets followed by the valid
//! elements sorted by key — the same output layout the paper describes.

use gpu_primitives::compact::compact_pairs_by_flag;
use gpu_primitives::scan::exclusive_scan;
use rayon::prelude::*;

use crate::count::{split_by_offsets, Candidates};
use crate::key::{is_regular, original_key, Key, Value};
use crate::lsm::GpuLsm;

/// The result of a batch of range queries.
///
/// All queries' results are stored contiguously (keys ascending within each
/// query); `offsets` delimits each query's slice, mirroring the
/// offsets-then-elements layout the GPU implementation returns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeResult {
    /// Per-query start offsets into `keys` / `values`
    /// (`num_queries + 1` entries).
    pub offsets: Vec<usize>,
    /// Valid original (decoded) keys of all queries, concatenated.
    pub keys: Vec<Key>,
    /// Values parallel to `keys`.
    pub values: Vec<Value>,
}

impl RangeResult {
    /// Number of queries this result covers.
    pub fn num_queries(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The `(keys, values)` slices of query `q`.
    pub fn query(&self, q: usize) -> (&[Key], &[Value]) {
        let start = self.offsets[q];
        let end = self.offsets[q + 1];
        (&self.keys[start..end], &self.values[start..end])
    }

    /// Number of valid elements returned for query `q`.
    pub fn len(&self, q: usize) -> usize {
        self.offsets[q + 1] - self.offsets[q]
    }

    /// Whether query `q` returned no elements.
    pub fn is_empty(&self, q: usize) -> bool {
        self.len(q) == 0
    }

    /// Iterate the `(key, value)` pairs of query `q`.
    pub fn iter_query(&self, q: usize) -> impl Iterator<Item = (Key, Value)> + '_ {
        let (k, v) = self.query(q);
        k.iter().copied().zip(v.iter().copied())
    }

    /// Total number of returned elements across all queries.
    pub fn total_len(&self) -> usize {
        self.keys.len()
    }

    /// Assemble a result whose query `q` is the concatenation of the slice
    /// parts returned by `parts_of(q)`, in order.
    ///
    /// This is the cross-shard reassembly primitive: a key-range sharded
    /// structure answers each query with one [`RangeResult`] slice per
    /// shard it fans out to, and because shards own ascending disjoint key
    /// ranges, concatenating the per-shard slices in shard order keeps each
    /// query's pairs globally sorted by key — the same layout a single
    /// structure produces.
    pub fn from_query_parts<'a, F>(num_queries: usize, parts_of: F) -> RangeResult
    where
        F: Fn(usize) -> Vec<(&'a [Key], &'a [Value])>,
    {
        let mut out = RangeResult {
            offsets: Vec::with_capacity(num_queries + 1),
            keys: Vec::new(),
            values: Vec::new(),
        };
        out.offsets.push(0);
        for q in 0..num_queries {
            for (keys, values) in parts_of(q) {
                debug_assert_eq!(keys.len(), values.len());
                out.keys.extend_from_slice(keys);
                out.values.extend_from_slice(values);
            }
            out.offsets.push(out.keys.len());
        }
        out
    }
}

impl GpuLsm {
    /// Execute a batch of range queries `(k1, k2)`, returning every valid
    /// pair with `k1 <= key <= k2`, sorted by key, for each query.
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        let candidates = self.device().timer().time("range::gather", || {
            self.gather_candidates(queries, "lsm_range")
        });
        self.device().timer().time("range::validate", || {
            self.compact_valid(queries.len(), candidates)
        })
    }

    /// Stage 5 for range queries: mark the newest instance of each key when
    /// it is regular, then compact the marked pairs per query.
    fn compact_valid(&self, num_queries: usize, candidates: Candidates) -> RangeResult {
        let Candidates {
            keys,
            values,
            segment_offsets,
        } = candidates;

        // Mark valid elements: first (newest) element of each key run within
        // its segment, and only if it is a regular element.
        let mut flags = vec![false; keys.len()];
        {
            let flag_segments = split_by_offsets(&mut flags, &segment_offsets);
            flag_segments
                .into_par_iter()
                .enumerate()
                .for_each(|(q, seg)| {
                    let start = segment_offsets[q];
                    let seg_keys = &keys[start..start + seg.len()];
                    let mut i = 0usize;
                    while i < seg_keys.len() {
                        let key = seg_keys[i] >> 1;
                        seg[i] = is_regular(seg_keys[i]);
                        i += 1;
                        while i < seg_keys.len() && seg_keys[i] >> 1 == key {
                            seg[i] = false;
                            i += 1;
                        }
                    }
                });
        }

        // Per-query valid counts -> output offsets.
        let per_query_counts: Vec<u64> = (0..num_queries)
            .into_par_iter()
            .map(|q| {
                flags[segment_offsets[q]..segment_offsets[q + 1]]
                    .iter()
                    .filter(|&&f| f)
                    .count() as u64
            })
            .collect();
        let (query_offsets, total_valid) = exclusive_scan(self.device(), &per_query_counts);

        // Compact the flagged pairs; the flag-based compaction preserves
        // order, so each query's elements stay contiguous and key-sorted.
        let (kept_keys, kept_values) = compact_pairs_by_flag(self.device(), &keys, &values, &flags);
        debug_assert_eq!(kept_keys.len(), total_valid as usize);

        let mut offsets: Vec<usize> = query_offsets.iter().map(|&o| o as usize).collect();
        offsets.push(total_valid as usize);

        RangeResult {
            offsets,
            keys: kept_keys.iter().map(|&k| original_key(k)).collect(),
            values: kept_values,
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn returns_pairs_sorted_by_key() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = [
            (50, 5),
            (10, 1),
            (30, 3),
            (70, 7),
            (20, 2),
            (60, 6),
            (40, 4),
            (80, 8),
        ]
        .to_vec();
        lsm.insert(&pairs).unwrap();
        let result = lsm.range(&[(15, 65)]);
        assert_eq!(result.num_queries(), 1);
        let (keys, values) = result.query(0);
        assert_eq!(keys, &[20, 30, 40, 50, 60]);
        assert_eq!(values, &[2, 3, 4, 5, 6]);
    }

    #[test]
    fn excludes_deleted_and_uses_latest_value() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.insert(&[(2, 21), (5, 50), (6, 60), (7, 70)]).unwrap();
        lsm.delete(&[3, 6]).unwrap();
        let result = lsm.range(&[(1, 7)]);
        let (keys, values) = result.query(0);
        assert_eq!(keys, &[1, 2, 4, 5, 7]);
        assert_eq!(values, &[10, 21, 40, 50, 70]);
    }

    #[test]
    fn multiple_queries_have_independent_segments() {
        let mut lsm = GpuLsm::new(device(), 16).unwrap();
        let pairs: Vec<(u32, u32)> = (0..16).map(|k| (k, k * 2)).collect();
        lsm.insert(&pairs).unwrap();
        let result = lsm.range(&[(0, 3), (10, 12), (100, 200)]);
        assert_eq!(result.num_queries(), 3);
        assert_eq!(result.query(0).0, &[0, 1, 2, 3]);
        assert_eq!(result.query(1).0, &[10, 11, 12]);
        assert!(result.is_empty(2));
        assert_eq!(result.len(0), 4);
        assert_eq!(result.total_len(), 7);
        let collected: Vec<(u32, u32)> = result.iter_query(1).collect();
        assert_eq!(collected, vec![(10, 20), (11, 22), (12, 24)]);
    }

    #[test]
    fn range_on_empty_structure() {
        let lsm = GpuLsm::new(device(), 4).unwrap();
        let result = lsm.range(&[(0, 100)]);
        assert_eq!(result.num_queries(), 1);
        assert!(result.is_empty(0));
    }

    #[test]
    fn range_with_replaced_keys_returns_single_instance() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(5, 1), (6, 1)]).unwrap();
        lsm.insert(&[(5, 2), (6, 2)]).unwrap();
        lsm.insert(&[(5, 3), (6, 3)]).unwrap();
        let result = lsm.range(&[(5, 6)]);
        let (keys, values) = result.query(0);
        assert_eq!(keys, &[5, 6]);
        assert_eq!(values, &[3, 3]);
    }

    #[test]
    fn range_matches_count() {
        let mut lsm = GpuLsm::new(device(), 32).unwrap();
        for b in 0..3u32 {
            let pairs: Vec<(u32, u32)> = (0..32).map(|i| ((i * 7 + b * 3) % 200, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        lsm.delete(&[14, 21, 28]).unwrap();
        let queries: Vec<(u32, u32)> = vec![(0, 50), (40, 120), (150, 199), (0, 199)];
        let counts = lsm.count(&queries);
        let ranges = lsm.range(&queries);
        for (q, &c) in counts.iter().enumerate() {
            assert_eq!(ranges.len(q), c as usize, "query {q}");
        }
    }
}
