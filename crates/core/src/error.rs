//! Error types for the GPU LSM public API.

use std::fmt;

/// Result alias for GPU LSM operations.
pub type Result<T> = std::result::Result<T, LsmError>;

/// Errors reported by the GPU LSM public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// The requested batch size is zero or not supported.
    InvalidBatchSize {
        /// The offending batch size.
        batch_size: usize,
    },
    /// An update batch is larger than the LSM's fixed batch size `b`.
    BatchTooLarge {
        /// Number of operations supplied.
        supplied: usize,
        /// The LSM's fixed batch size.
        batch_size: usize,
    },
    /// An update batch contained no operations.
    EmptyBatch,
    /// A key exceeds the 31-bit key domain (the LSB is reserved for the
    /// tombstone status bit, paper §IV-A).
    KeyOutOfRange {
        /// The offending key.
        key: u32,
    },
    /// The requested shard count is not a power of two in `1..=2³¹`
    /// (key-range shards must divide the 31-bit domain evenly).
    InvalidShardCount {
        /// The offending shard count.
        num_shards: usize,
    },
    /// Learned router boundaries must be strictly increasing keys in
    /// `1..=MAX_KEY` (shard 0 always starts at key 0, so a boundary of 0
    /// would create an empty shard).
    InvalidSplitPoints {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An online shard split or merge request could not be honoured
    /// (index out of range, too few shards to merge, or no interior key
    /// to split the shard's range at).
    InvalidRebalance {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The admission applier thread has died from a panic; the queues it
    /// was draining will never be applied.  Every later `submit` / `flush`
    /// on the same [`crate::AdmittedLsm`] reports this instead of hanging
    /// or cascading the panic.
    ApplierPanicked {
        /// The applier's panic payload (its message when it was a string).
        payload: String,
    },
    /// An `LSM_*` environment variable was set to a value that does not
    /// parse (or parses to a nonsensical setting).  Surfaced by
    /// [`crate::LsmConfig::from_env`] so a typo'd knob cannot silently
    /// change behavior.
    InvalidEnvValue {
        /// The environment variable.
        var: String,
        /// The offending value as found in the environment.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A durability operation (WAL append, snapshot, recovery load)
    /// failed.  Carries a human-readable context string instead of the
    /// source `io::Error` so the error stays `Clone + Eq` like the rest of
    /// the API.
    Durability {
        /// What failed, including the path and the underlying I/O error.
        context: String,
    },
    /// `submit` waited longer than the configured
    /// [`crate::AdmissionConfig::submit_deadline`] for queue space.  The
    /// batch was **not** admitted (and not logged); a load-shedding caller
    /// can drop it or retry later.
    SubmitTimedOut {
        /// How long the submit waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// `flush` waited longer than the configured
    /// [`crate::AdmissionConfig::flush_deadline`] for the queues to drain.
    /// Already-admitted batches remain queued and will still apply.
    FlushTimedOut {
        /// How long the flush waited before giving up, in milliseconds.
        waited_ms: u64,
    },
}

impl fmt::Display for LsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LsmError::InvalidBatchSize { batch_size } => {
                write!(f, "invalid batch size {batch_size}: must be at least 1")
            }
            LsmError::BatchTooLarge {
                supplied,
                batch_size,
            } => write!(
                f,
                "update batch of {supplied} operations exceeds the fixed batch size b = {batch_size}"
            ),
            LsmError::EmptyBatch => write!(f, "update batch contains no operations"),
            LsmError::KeyOutOfRange { key } => write!(
                f,
                "key {key} exceeds the 31-bit key domain (max {})",
                crate::key::MAX_KEY
            ),
            LsmError::InvalidShardCount { num_shards } => write!(
                f,
                "invalid shard count {num_shards}: must be a power of two between 1 and 2^31"
            ),
            LsmError::InvalidSplitPoints { reason } => {
                write!(f, "invalid split points: {reason}")
            }
            LsmError::InvalidRebalance { reason } => {
                write!(f, "invalid shard rebalance request: {reason}")
            }
            LsmError::ApplierPanicked { payload } => {
                write!(f, "admission applier thread panicked: {payload}")
            }
            LsmError::InvalidEnvValue { var, value, reason } => {
                write!(f, "invalid value {value:?} for environment variable {var}: {reason}")
            }
            LsmError::Durability { context } => {
                write!(f, "durability failure: {context}")
            }
            LsmError::SubmitTimedOut { waited_ms } => {
                write!(
                    f,
                    "submit timed out after {waited_ms} ms waiting for admission queue space"
                )
            }
            LsmError::FlushTimedOut { waited_ms } => {
                write!(
                    f,
                    "flush timed out after {waited_ms} ms waiting for admission queues to drain"
                )
            }
        }
    }
}

impl std::error::Error for LsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_cause() {
        assert!(LsmError::InvalidBatchSize { batch_size: 0 }
            .to_string()
            .contains("batch size 0"));
        assert!(LsmError::BatchTooLarge {
            supplied: 10,
            batch_size: 4
        }
        .to_string()
        .contains("b = 4"));
        assert!(LsmError::EmptyBatch.to_string().contains("no operations"));
        assert!(LsmError::KeyOutOfRange { key: u32::MAX }
            .to_string()
            .contains("31-bit"));
        assert!(LsmError::InvalidSplitPoints {
            reason: "boundary 0".into()
        }
        .to_string()
        .contains("boundary 0"));
        assert!(LsmError::InvalidRebalance {
            reason: "only one shard".into()
        }
        .to_string()
        .contains("only one shard"));
        assert!(LsmError::ApplierPanicked {
            payload: "boom".into()
        }
        .to_string()
        .contains("boom"));
        let env = LsmError::InvalidEnvValue {
            var: "LSM_ADMIT_QUEUE".into(),
            value: "4o96".into(),
            reason: "invalid digit found in string".into(),
        }
        .to_string();
        assert!(env.contains("LSM_ADMIT_QUEUE") && env.contains("4o96"));
        assert!(LsmError::Durability {
            context: "append wal-0.log: disk full".into()
        }
        .to_string()
        .contains("wal-0.log"));
        assert!(LsmError::SubmitTimedOut { waited_ms: 250 }
            .to_string()
            .contains("250 ms"));
        assert!(LsmError::FlushTimedOut { waited_ms: 1000 }
            .to_string()
            .contains("drain"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LsmError::EmptyBatch, LsmError::EmptyBatch);
        assert_ne!(
            LsmError::EmptyBatch,
            LsmError::InvalidBatchSize { batch_size: 0 }
        );
    }
}
