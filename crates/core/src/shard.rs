//! [`ShardedLsm`]: a key-range sharded LSM service.
//!
//! The paper scales a *single* LSM's batch throughput; a serving system
//! wants many clients issuing mixed update/query traffic with throughput
//! limited only by hardware.  [`crate::ConcurrentGpuLsm`] funnels every
//! operation through one reader–writer lock, so one update batch blocks the
//! whole key space.  `ShardedLsm` removes that bottleneck by partitioning
//! the key domain into `N` power-of-two key ranges (see
//! [`crate::router::ShardRouter`]), each an independent [`GpuLsm`] behind
//! its own lock:
//!
//! * **Updates** are split by shard in one stable multisplit-style pass and
//!   applied to distinct shards in parallel; updates touching disjoint
//!   shards no longer serialise against each other.
//! * **Queries** fan out to the owning shards and are reassembled in input
//!   order; because the partition is by key *range*, per-shard `count`
//!   answers sum and per-shard `range` answers concatenate in shard order
//!   into a globally key-sorted result.
//!
//! ## Consistency model
//!
//! Each shard individually keeps the paper's phase semantics (§III-A rule
//! 2): per shard, a query observes the state after some prefix of the
//! update batches routed to that shard, never a partially applied batch.
//! Across shards there is **no** global snapshot: a cross-shard query may
//! observe different prefixes on different shards.  With `num_shards = 1`
//! the structure degenerates to exactly one `GpuLsm` and every answer is
//! byte-identical to the unsharded structure's.

use std::sync::Arc;

use rayon::prelude::*;

use crate::batch::UpdateBatch;
use crate::cleanup::CleanupReport;
use crate::concurrent::ConcurrentGpuLsm;
use crate::error::{LsmError, Result};
use crate::key::{is_tombstone, original_key, Key, Value, MAX_KEY};
use crate::lsm::GpuLsm;
use crate::range::RangeResult;
use crate::router::ShardRouter;
use crate::stats::LsmStats;
use crate::validate::InvariantViolation;

/// Per-shard routed point queries: the keys and their input positions.
type RoutedLookups = (Vec<Key>, Vec<usize>);
/// Per-shard routed interval queries: the clamped intervals and their
/// originating query indices.
type RoutedIntervals = (Vec<(Key, Key)>, Vec<usize>);

/// A key-range sharded, thread-safe LSM service handle.
///
/// Cloning is cheap (shards are shared `Arc`s); all clones address the same
/// underlying shards, so a handle can be passed to every client thread.
#[derive(Debug, Clone)]
pub struct ShardedLsm {
    router: ShardRouter,
    shards: Vec<ConcurrentGpuLsm>,
    batch_size: usize,
}

/// Aggregated statistics of a sharded LSM: per-shard snapshots plus the
/// service-wide totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// One [`LsmStats`] per shard, in shard order.
    pub per_shard: Vec<LsmStats>,
    /// Sum of resident elements over all shards (stale included).
    pub total_elements: usize,
    /// Sum of valid elements over all shards.
    pub valid_elements: usize,
    /// `total_elements - valid_elements`.
    pub stale_elements: usize,
    /// Sum of occupied levels over all shards.
    pub occupied_levels: usize,
    /// Sum of device memory bytes over all shards.
    pub memory_bytes: usize,
    /// Sum of Bloom-filter bytes over all shards.
    pub filter_bytes: usize,
    /// Sum of fence-array bytes over all shards.
    pub fence_bytes: usize,
    /// Sum of lifetime filter probes over all shards.
    pub filter_probes: u64,
    /// Sum of lifetime filter skips over all shards.
    pub filter_skips: u64,
    /// Sum of write-path merge counters over all shards (carry steps,
    /// incremental vs. rebuilt fence/filter maintenance).
    pub merges: crate::stats::MergeCounters,
    /// Batches currently queued in the admission layer (0 without one —
    /// filled in by [`crate::AdmittedLsm::stats`]).
    pub admission_queued_batches: u64,
    /// Sub-batches absorbed by admission coalescing (0 without a layer).
    pub admission_coalesced_batches: u64,
    /// Batches the admission applier pushed into the shards (0 without a
    /// layer).
    pub admission_applied_batches: u64,
    /// Queue-wait percentiles of the admission layer, µs (zeroed without
    /// one — filled in by [`crate::AdmittedLsm::stats`]).
    pub admission_queue_wait: crate::latency::LatencySnapshot,
    /// Shard-apply-time percentiles of the admission layer, µs (zeroed
    /// without one).
    pub admission_apply: crate::latency::LatencySnapshot,
}

impl ShardedStats {
    /// Fraction of resident elements that are stale (0.0 when empty).
    pub fn stale_fraction(&self) -> f64 {
        if self.total_elements == 0 {
            0.0
        } else {
            self.stale_elements as f64 / self.total_elements as f64
        }
    }
}

impl ShardedLsm {
    /// Create an empty sharded LSM with `num_shards` power-of-two shards of
    /// batch size `batch_size`, all on `device`.
    pub fn new(device: Arc<gpu_sim::Device>, batch_size: usize, num_shards: usize) -> Result<Self> {
        let router = ShardRouter::new(num_shards)?;
        let shards = (0..num_shards)
            .map(|_| ConcurrentGpuLsm::create(device.clone(), batch_size))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedLsm {
            router,
            shards,
            batch_size,
        })
    }

    /// Bulk-build a sharded LSM from arbitrary key–value pairs: the pairs
    /// are partitioned by shard and each shard is bulk-built independently
    /// (in parallel).
    pub fn bulk_build(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        num_shards: usize,
        pairs: &[(Key, Value)],
    ) -> Result<Self> {
        let router = ShardRouter::new(num_shards)?;
        if batch_size == 0 {
            return Err(LsmError::InvalidBatchSize { batch_size });
        }
        if let Some(&(k, _)) = pairs.iter().find(|(k, _)| *k > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: k });
        }
        let mut per_shard: Vec<Vec<(Key, Value)>> = vec![Vec::new(); num_shards];
        for &(k, v) in pairs {
            per_shard[router.shard_of(k)].push((k, v));
        }
        let shards: Vec<Result<ConcurrentGpuLsm>> = per_shard
            .par_iter()
            .map(|shard_pairs| {
                GpuLsm::bulk_build(device.clone(), batch_size, shard_pairs)
                    .map(ConcurrentGpuLsm::new)
            })
            .collect();
        Ok(ShardedLsm {
            router,
            shards: shards.into_iter().collect::<Result<Vec<_>>>()?,
            batch_size,
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The fixed per-shard batch size `b`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The router mapping keys to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Direct handle to shard `s` (for diagnostics and tests).
    pub fn shard(&self, s: usize) -> &ConcurrentGpuLsm {
        &self.shards[s]
    }

    // ------------------------------------------------------------------
    // Updates (per-shard exclusive phases)
    // ------------------------------------------------------------------

    /// Apply a mixed update batch: validated as a whole, split by shard in
    /// one stable pass, then applied to the owning shards in parallel.
    ///
    /// Validation happens *before* any shard is touched, so an invalid
    /// batch mutates nothing.  Each shard receives at most one sub-batch
    /// and applies it under its own write lock; shards not named by the
    /// batch are never locked.
    pub fn update(&self, batch: &UpdateBatch) -> Result<()> {
        if self.shards.len() == 1 {
            // Degenerate sharding: no split, no clone — the single shard
            // performs the identical validation itself.
            return self.shards[0].update(batch);
        }
        if batch.is_empty() {
            return Err(LsmError::EmptyBatch);
        }
        if batch.len() > self.batch_size {
            return Err(LsmError::BatchTooLarge {
                supplied: batch.len(),
                batch_size: self.batch_size,
            });
        }
        if let Some(op) = batch.ops().iter().find(|op| op.key() > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: op.key() });
        }

        let parts = self.router.split_updates(batch);
        let work: Vec<(usize, UpdateBatch)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        // Sub-batches passed validation above (non-empty, within b, keys in
        // domain), so per-shard updates cannot fail; the expect documents
        // that invariant rather than handling a reachable error.
        work.par_iter().for_each(|(s, part)| {
            self.shards[*s]
                .update(part)
                .expect("validated sub-batch cannot be rejected");
        });
        Ok(())
    }

    /// Insert key–value pairs (at most `b`).
    pub fn insert(&self, pairs: &[(Key, Value)]) -> Result<()> {
        self.update(&UpdateBatch::from_pairs(pairs))
    }

    /// Delete keys (at most `b`) by inserting tombstones.
    pub fn delete(&self, keys: &[Key]) -> Result<()> {
        self.update(&UpdateBatch::from_deletions(keys))
    }

    /// Remove stale elements from every shard (each under its own write
    /// lock, in parallel) and return the aggregated report.
    pub fn cleanup(&self) -> CleanupReport {
        let reports: Vec<CleanupReport> = self.shards.par_iter().map(|s| s.cleanup()).collect();
        reports.into_iter().fold(
            CleanupReport {
                elements_before: 0,
                valid_elements: 0,
                removed_elements: 0,
                placebos_added: 0,
                levels_before: 0,
                levels_after: 0,
            },
            |acc, r| CleanupReport {
                elements_before: acc.elements_before + r.elements_before,
                valid_elements: acc.valid_elements + r.valid_elements,
                removed_elements: acc.removed_elements + r.removed_elements,
                placebos_added: acc.placebos_added + r.placebos_added,
                levels_before: acc.levels_before + r.levels_before,
                levels_after: acc.levels_after + r.levels_after,
            },
        )
    }

    // ------------------------------------------------------------------
    // Queries (per-shard shared phases, fan-out + reassembly)
    // ------------------------------------------------------------------

    /// Bulk point lookups: routed to the owning shards, executed per shard
    /// in parallel, reassembled in input order.
    ///
    /// Each shard's sub-batch goes through [`GpuLsm::lookup`]'s adaptive
    /// dispatch, so a large fan-out lands on the bulk sorted path exactly
    /// when the sub-batch is big relative to that shard (shards hold
    /// `1/N`-th of the data, so sharding *lowers* the crossover).
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let parts = self.router.split_lookups(queries);
        let work: Vec<(usize, &RoutedLookups)> = parts
            .iter()
            .enumerate()
            .filter(|(_, (keys, _))| !keys.is_empty())
            .collect();
        let shard_answers: Vec<(&[usize], Vec<Option<Value>>)> = work
            .par_iter()
            .map(|(s, (keys, positions))| (positions.as_slice(), self.shards[*s].lookup(keys)))
            .collect();
        let mut out = vec![None; queries.len()];
        for (positions, answers) in shard_answers {
            for (&pos, ans) in positions.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        out
    }

    /// Bulk count queries: each interval is decomposed into per-shard
    /// sub-intervals; sub-counts are disjoint by construction (shards own
    /// disjoint key ranges) so they sum to the global answer.
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        let subs = self.router.split_intervals(queries);
        // Group sub-queries by shard, remembering the originating query.
        let mut per_shard: Vec<RoutedIntervals> = vec![(Vec::new(), Vec::new()); self.num_shards()];
        for sub in &subs {
            per_shard[sub.shard].0.push((sub.lo, sub.hi));
            per_shard[sub.shard].1.push(sub.query);
        }
        let work: Vec<(usize, &RoutedIntervals)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, (qs, _))| !qs.is_empty())
            .collect();
        let shard_answers: Vec<(&[usize], Vec<u32>)> = work
            .par_iter()
            .map(|(s, (qs, origins))| (origins.as_slice(), self.shards[*s].count(qs)))
            .collect();
        let mut out = vec![0u32; queries.len()];
        for (origins, counts) in shard_answers {
            for (&q, c) in origins.iter().zip(counts) {
                out[q] += c;
            }
        }
        out
    }

    /// Bulk range queries: per-shard sub-results are concatenated in shard
    /// order per query, which yields each query's pairs globally sorted by
    /// key (the partition is by key range).
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        let subs = self.router.split_intervals(queries);
        let mut per_shard: Vec<Vec<(Key, Key)>> = vec![Vec::new(); self.num_shards()];
        // For each input query, the (shard slot, index within that shard's
        // sub-query list) pairs, in shard-ascending order — split_intervals
        // emits them that way.
        let mut assembly: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
        for sub in &subs {
            assembly[sub.query].push((sub.shard, per_shard[sub.shard].len()));
            per_shard[sub.shard].push((sub.lo, sub.hi));
        }
        let work: Vec<(usize, &Vec<(Key, Key)>)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, qs)| !qs.is_empty())
            .collect();
        let shard_results: Vec<(usize, RangeResult)> = work
            .par_iter()
            .map(|(s, qs)| (*s, self.shards[*s].range(qs)))
            .collect();
        // Shard slot -> its RangeResult (shards without work stay None).
        let mut by_shard: Vec<Option<RangeResult>> = (0..self.num_shards()).map(|_| None).collect();
        for (s, r) in shard_results {
            by_shard[s] = Some(r);
        }
        RangeResult::from_query_parts(queries.len(), |q| {
            assembly[q]
                .iter()
                .map(|&(s, local)| {
                    let r = by_shard[s].as_ref().expect("shard with sub-queries ran");
                    r.query(local)
                })
                .collect()
        })
    }

    /// Bulk successor queries (smallest valid key strictly greater than
    /// each query key).  The owning shard is asked first; if it has no
    /// successor the scan walks the higher shards in key order.
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        queries.par_iter().map(|&q| self.successor_one(q)).collect()
    }

    /// Bulk predecessor queries (largest valid key strictly smaller than
    /// each query key).
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        queries
            .par_iter()
            .map(|&q| self.predecessor_one(q))
            .collect()
    }

    /// Successor of a single key across shards.
    ///
    /// Before a shard's levels are searched, its per-level min/max fences
    /// (aggregated by [`GpuLsm::max_resident_key`]) are consulted under the
    /// same read lock: a shard whose largest resident key is `<= probe` —
    /// in particular an empty shard — provably has no candidate and is
    /// skipped without any binary searches.
    pub fn successor_one(&self, query: Key) -> Option<(Key, Value)> {
        let first = self.router.shard_of(query.min(MAX_KEY));
        for s in first..self.num_shards() {
            // For shards above the owner, any resident key is greater than
            // the query, so probing with the key just below the shard's
            // range yields the shard's smallest valid key.
            let probe = if s == first {
                query
            } else {
                self.router.shard_bounds(s).0 - 1
            };
            let found = self.shards[s].with_read(|lsm| {
                if lsm.max_resident_key().is_none_or(|max| max <= probe) {
                    return None; // no resident key can exceed the probe
                }
                lsm.successor_one(probe)
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Predecessor of a single key across shards (fence-skipping the
    /// shards whose smallest resident key is `>= probe`, see
    /// [`ShardedLsm::successor_one`]).
    pub fn predecessor_one(&self, query: Key) -> Option<(Key, Value)> {
        let first = self.router.shard_of(query.min(MAX_KEY));
        for s in (0..=first).rev() {
            let probe = if s == first {
                query
            } else {
                // The key just above the shard's range: its predecessor is
                // the shard's largest valid key.
                self.router.shard_bounds(s).1 + 1
            };
            let found = self.shards[s].with_read(|lsm| {
                if lsm.min_resident_key().is_none_or(|min| min >= probe) {
                    return None; // no resident key can undercut the probe
                }
                lsm.predecessor_one(probe)
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Aggregated statistics: per-shard snapshots plus service totals.
    pub fn stats(&self) -> ShardedStats {
        let per_shard: Vec<LsmStats> = self.shards.par_iter().map(|s| s.stats()).collect();
        let mut agg = ShardedStats {
            total_elements: 0,
            valid_elements: 0,
            stale_elements: 0,
            occupied_levels: 0,
            memory_bytes: 0,
            filter_bytes: 0,
            fence_bytes: 0,
            filter_probes: 0,
            filter_skips: 0,
            merges: crate::stats::MergeCounters::default(),
            admission_queued_batches: 0,
            admission_coalesced_batches: 0,
            admission_applied_batches: 0,
            admission_queue_wait: crate::latency::LatencySnapshot::default(),
            admission_apply: crate::latency::LatencySnapshot::default(),
            per_shard: Vec::new(),
        };
        for s in &per_shard {
            agg.total_elements += s.total_elements;
            agg.valid_elements += s.valid_elements;
            agg.stale_elements += s.stale_elements;
            agg.occupied_levels += s.occupied_levels;
            agg.memory_bytes += s.memory_bytes;
            agg.filter_bytes += s.filter_bytes;
            agg.fence_bytes += s.fence_bytes;
            agg.filter_probes += s.filter_probes;
            agg.filter_skips += s.filter_skips;
            agg.merges.add(&s.merges);
        }
        agg.per_shard = per_shard;
        agg
    }

    /// Check every shard's structural invariants plus the sharding
    /// invariant: every non-placebo element resides in the shard that owns
    /// its key.  (Placebo padding elements are max-key tombstones by
    /// construction and are exempt — every shard pads with them.)
    pub fn check_invariants(&self) -> std::result::Result<(), InvariantViolation> {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.with_read(|lsm| {
                lsm.check_invariants().map_err(|InvariantViolation(msg)| {
                    InvariantViolation(format!("shard {s}: {msg}"))
                })?;
                let (lo, hi) = self.router.shard_bounds(s);
                for (i, level) in lsm.levels().iter_occupied() {
                    for &enc in level.keys() {
                        let key = original_key(enc);
                        let placebo = key == MAX_KEY && is_tombstone(enc);
                        if !placebo && (key < lo || key > hi) {
                            return Err(InvariantViolation(format!(
                                "shard {s} level {i} holds key {key} outside its range [{lo}, {hi}]"
                            )));
                        }
                    }
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceConfig};

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    fn sharded(batch_size: usize, num_shards: usize) -> ShardedLsm {
        ShardedLsm::new(device(), batch_size, num_shards).unwrap()
    }

    /// Keys that land in shard `s` of `n` shards: the shard's low bound
    /// plus small offsets.
    fn key_in(n: usize, s: usize, offset: u32) -> u32 {
        let router = ShardRouter::new(n).unwrap();
        router.shard_bounds(s).0 + offset
    }

    #[test]
    fn rejects_invalid_shard_counts_and_batch_sizes() {
        assert!(matches!(
            ShardedLsm::new(device(), 8, 3).unwrap_err(),
            LsmError::InvalidShardCount { num_shards: 3 }
        ));
        assert!(matches!(
            ShardedLsm::new(device(), 0, 2).unwrap_err(),
            LsmError::InvalidBatchSize { batch_size: 0 }
        ));
    }

    #[test]
    fn basic_crud_across_shards() {
        let lsm = sharded(8, 4);
        let keys: Vec<u32> = (0..4).map(|s| key_in(4, s, 7)).collect();
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k % 1000)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(
            lsm.lookup(&keys),
            pairs.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
        );
        lsm.delete(&[keys[2]]).unwrap();
        assert_eq!(lsm.lookup(&[keys[2]]), vec![None]);
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![3]);
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn update_validation_mutates_nothing() {
        let lsm = sharded(2, 2);
        assert_eq!(
            lsm.update(&UpdateBatch::new()).unwrap_err(),
            LsmError::EmptyBatch
        );
        let err = lsm.insert(&[(1, 1), (2, 2), (3, 3)]).unwrap_err();
        assert!(matches!(err, LsmError::BatchTooLarge { .. }));
        let mut batch = UpdateBatch::new();
        batch.insert(1, 1).insert(MAX_KEY + 1, 0);
        assert_eq!(
            lsm.update(&batch).unwrap_err(),
            LsmError::KeyOutOfRange { key: MAX_KEY + 1 }
        );
        // Nothing was applied, not even the valid prefix.
        assert_eq!(lsm.stats().total_elements, 0);
        assert_eq!(lsm.lookup(&[1]), vec![None]);
    }

    #[test]
    fn cross_shard_range_concatenates_in_key_order() {
        let lsm = sharded(16, 4);
        // Three keys per shard, clustered at each shard's low boundary.
        let mut pairs = Vec::new();
        for s in 0..4 {
            for off in 0..3u32 {
                let k = key_in(4, s, off);
                pairs.push((k, s as u32 * 10 + off));
            }
        }
        lsm.insert(&pairs).unwrap();
        let result = lsm.range(&[(0, MAX_KEY)]);
        let (keys, values) = result.query(0);
        let mut expected = pairs.clone();
        expected.sort_unstable();
        assert_eq!(keys, expected.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        assert_eq!(values, expected.iter().map(|&(_, v)| v).collect::<Vec<_>>());
    }

    #[test]
    fn single_shard_matches_plain_lsm_byte_for_byte() {
        let sharded = sharded(8, 1);
        let mut plain = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|i| (i * 1000, i)).collect();
        sharded.insert(&pairs).unwrap();
        plain.insert(&pairs).unwrap();
        sharded.delete(&[2000, 5000]).unwrap();
        plain.delete(&[2000, 5000]).unwrap();

        let lookups: Vec<u32> = (0..9000).step_by(500).collect();
        assert_eq!(sharded.lookup(&lookups), plain.lookup(&lookups));
        let intervals = vec![(0, 3500), (3500, 3500), (9000, 1), (0, MAX_KEY)];
        assert_eq!(sharded.count(&intervals), plain.count(&intervals));
        assert_eq!(sharded.range(&intervals), plain.range(&intervals));
        assert_eq!(sharded.successor(&[0, 2000]), plain.successor(&[0, 2000]));
        assert_eq!(
            sharded.predecessor(&[7000, 1]),
            plain.predecessor(&[7000, 1])
        );
    }

    #[test]
    fn successor_and_predecessor_cross_shard_boundaries() {
        let lsm = sharded(4, 4);
        // One key in shard 0 and one in shard 3; shards 1 and 2 are empty.
        let a = key_in(4, 0, 5);
        let b = key_in(4, 3, 9);
        lsm.insert(&[(a, 1), (b, 2)]).unwrap();
        assert_eq!(lsm.successor(&[a]), vec![Some((b, 2))]);
        assert_eq!(lsm.predecessor(&[b]), vec![Some((a, 1))]);
        assert_eq!(lsm.successor(&[b]), vec![None]);
        assert_eq!(lsm.predecessor(&[a]), vec![None]);
        // A query inside an empty middle shard sees across both boundaries.
        let mid = key_in(4, 1, 3);
        assert_eq!(lsm.successor(&[mid]), vec![Some((b, 2))]);
        assert_eq!(lsm.predecessor(&[mid]), vec![Some((a, 1))]);
    }

    #[test]
    fn cleanup_and_stats_aggregate_across_shards() {
        let lsm = sharded(4, 2);
        let low = key_in(2, 0, 1);
        let high = key_in(2, 1, 1);
        lsm.insert(&[(low, 1), (high, 2)]).unwrap();
        lsm.insert(&[(low, 3), (high + 1, 4)]).unwrap();
        lsm.delete(&[high]).unwrap();
        let stats = lsm.stats();
        assert_eq!(stats.per_shard.len(), 2);
        assert_eq!(stats.valid_elements, 2); // low (=3), high+1
        assert!(stats.stale_fraction() > 0.0);
        let report = lsm.cleanup();
        assert_eq!(report.valid_elements, 2);
        let after = lsm.stats();
        assert_eq!(after.valid_elements, 2);
        assert!(after.total_elements <= stats.total_elements);
        assert_eq!(
            lsm.lookup(&[low, high, high + 1]),
            vec![Some(3), None, Some(4)]
        );
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn bulk_build_distributes_by_key_range() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i * (MAX_KEY / 100), i)).collect();
        let lsm = ShardedLsm::bulk_build(device(), 16, 4, &pairs).unwrap();
        lsm.check_invariants().unwrap();
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            lsm.lookup(&keys),
            pairs.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
        );
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![100]);
        // Every shard received some of the evenly spread keys.
        assert!(lsm.stats().per_shard.iter().all(|s| s.total_elements > 0));
    }

    #[test]
    fn clones_share_state() {
        let lsm = sharded(4, 2);
        let clone = lsm.clone();
        lsm.insert(&[(1, 10)]).unwrap();
        assert_eq!(clone.lookup(&[1]), vec![Some(10)]);
    }
}
