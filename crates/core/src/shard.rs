//! [`ShardedLsm`]: a key-range sharded LSM service with online rebalancing.
//!
//! The paper scales a *single* LSM's batch throughput; a serving system
//! wants many clients issuing mixed update/query traffic with throughput
//! limited only by hardware.  [`crate::ConcurrentGpuLsm`] funnels every
//! operation through one reader–writer lock, so one update batch blocks the
//! whole key space.  `ShardedLsm` removes that bottleneck by partitioning
//! the key domain into `N` contiguous key ranges (see
//! [`crate::router::ShardRouter`]), each an independent [`GpuLsm`] behind
//! its own lock:
//!
//! * **Updates** are split by shard in one stable multisplit-style pass and
//!   applied to distinct shards in parallel; updates touching disjoint
//!   shards no longer serialise against each other.
//! * **Queries** fan out to the owning shards and are reassembled in input
//!   order; because the partition is by key *range*, per-shard `count`
//!   answers sum and per-shard `range` answers concatenate in shard order
//!   into a globally key-sorted result.
//!
//! ## Online shard split/merge
//!
//! A fixed uniform partition melts one shard under zipfian traffic.  The
//! service therefore supports **rebalancing under live traffic**: a shard
//! can be split in two at a fitted key (learned from the shard's fence
//! samples plus a reservoir of recent batch keys), and two adjacent shards
//! can be merged.  The replacement shard(s) are rebuilt from the immutable
//! sorted runs (via a full-range read of the visible state, equivalent to a
//! cleanup), and the whole routing table — router, shard handles, shard ids
//! and epoch — is swapped **atomically**:
//!
//! * The table lives behind `Arc<RwLock<Arc<RoutingTable>>>`.  Queries
//!   clone the inner `Arc` under a brief read lock and run against that
//!   immutable snapshot; a concurrent swap can never show them a torn
//!   domain (the old shards are frozen once the new table is installed,
//!   because every update path routes through the current table).
//! * Updates hold the table **read** lock for the duration of their apply,
//!   so they parallelise freely with each other but are excluded by a
//!   rebalance, which takes the **write** lock for the rebuild-and-swap.
//! * With [`crate::RebalanceConfig::enabled`], hot-shard detection runs every
//!   `check_interval` update batches off the per-shard lifetime op
//!   counters ([`crate::LsmStats::update_ops`]): a shard carrying more
//!   than `hot_fraction` of recent update traffic is split, an adjacent
//!   pair carrying less than `cold_fraction` combined is merged.
//!
//! ## Consistency model
//!
//! Each shard individually keeps the paper's phase semantics (§III-A rule
//! 2): per shard, a query observes the state after some prefix of the
//! update batches routed to that shard, never a partially applied batch.
//! Across shards there is **no** global snapshot: a cross-shard query may
//! observe different prefixes on different shards.  A rebalance preserves
//! exactly the visible state of the affected shards.  With `num_shards = 1`
//! the structure degenerates to exactly one `GpuLsm` and every answer is
//! byte-identical to the unsharded structure's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;

use crate::batch::UpdateBatch;
use crate::cleanup::CleanupReport;
use crate::concurrent::ConcurrentGpuLsm;
use crate::config::LsmConfig;
use crate::error::{LsmError, Result};
use crate::key::{is_tombstone, original_key, Key, Value, MAX_KEY};
use crate::lsm::GpuLsm;
use crate::range::RangeResult;
use crate::router::ShardRouter;
use crate::stats::LsmStats;
use crate::validate::InvariantViolation;

/// Per-shard routed point queries: the keys and their input positions.
type RoutedLookups = (Vec<Key>, Vec<usize>);
/// Per-shard routed interval queries: the clamped intervals and their
/// originating query indices.
type RoutedIntervals = (Vec<(Key, Key)>, Vec<usize>);

/// Bound on the recent-batch key reservoir feeding split-point fitting.
const RECENT_KEY_CAP: usize = 1024;
/// Keys sampled from each update batch into the reservoir.
const KEYS_PER_BATCH_SAMPLE: usize = 4;

/// One immutable generation of the sharded service's routing state.
/// Swapped wholesale (behind an `Arc`) on every split/merge, so concurrent
/// readers always see a consistent (router, shards) pair.
#[derive(Debug)]
pub(crate) struct RoutingTable {
    /// Maps keys to shard indices; bounds tile the 31-bit domain.
    pub(crate) router: ShardRouter,
    /// One independently locked LSM per shard, in key-range order.
    pub(crate) shards: Vec<ConcurrentGpuLsm>,
    /// Stable identity of each shard, preserved across swaps for shards a
    /// rebalance does not touch (the admission layer keys its queues on
    /// these).
    pub(crate) ids: Vec<u64>,
    /// Generation counter, bumped by every split/merge.
    pub(crate) epoch: u64,
}

/// A rebalance decision produced by hot/cold-shard detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Split shard `s` in two at a fitted key.
    Split(usize),
    /// Merge shard `s` with shard `s + 1`.
    Merge(usize),
}

/// Mutable rebalancing bookkeeping (detection baselines, the recent-key
/// reservoir and lifetime split/merge counters).
#[derive(Debug, Default)]
struct RebalanceState {
    /// Ring buffer of recently updated keys (split-point fitting input).
    recent_keys: Vec<Key>,
    /// Next write position into the ring.
    recent_pos: usize,
    /// Per-shard-id update_ops at the last threshold evaluation.
    baselines: std::collections::HashMap<u64, u64>,
    /// Update batches since the last threshold evaluation.
    batches_since_check: u64,
    /// Lifetime number of shard splits performed.
    splits: u64,
    /// Lifetime number of shard merges performed.
    merges: u64,
}

/// A key-range sharded, thread-safe LSM service handle.
///
/// Cloning is cheap (all state is shared `Arc`s); all clones address the
/// same underlying shards and observe the same routing table, so a handle
/// can be passed to every client thread.
#[derive(Debug, Clone)]
pub struct ShardedLsm {
    device: Arc<gpu_sim::Device>,
    batch_size: usize,
    /// The current routing generation.  Read-locked briefly by queries (to
    /// snapshot), read-locked for the duration of an update apply, and
    /// write-locked by a rebalance for its rebuild-and-swap.
    table: Arc<RwLock<Arc<RoutingTable>>>,
    config: LsmConfig,
    rebalance: Arc<Mutex<RebalanceState>>,
    next_shard_id: Arc<AtomicU64>,
}

/// Aggregated statistics of a sharded LSM: per-shard snapshots plus the
/// service-wide totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// One [`LsmStats`] per shard, in shard order.
    pub per_shard: Vec<LsmStats>,
    /// Sum of resident elements over all shards (stale included).
    pub total_elements: usize,
    /// Sum of valid elements over all shards.
    pub valid_elements: usize,
    /// `total_elements - valid_elements`.
    pub stale_elements: usize,
    /// Sum of occupied levels over all shards.
    pub occupied_levels: usize,
    /// Sum of device memory bytes over all shards.
    pub memory_bytes: usize,
    /// Sum of Bloom-filter bytes over all shards.
    pub filter_bytes: usize,
    /// Sum of fence-array bytes over all shards.
    pub fence_bytes: usize,
    /// Sum of lifetime filter probes over all shards.
    pub filter_probes: u64,
    /// Sum of lifetime filter skips over all shards.
    pub filter_skips: u64,
    /// Sum of write-path merge counters over all shards (carry steps,
    /// incremental vs. rebuilt fence/filter maintenance).
    pub merges: crate::stats::MergeCounters,
    /// Sum of slab-arena counters over all shards (all-zero when the arena
    /// is disabled everywhere).
    pub arena: crate::arena::ArenaStats,
    /// Sum of lifetime update operations over all shards.  Note that a
    /// rebalance rebuilds the affected shards with fresh counters, so this
    /// can decrease across a split/merge.
    pub update_ops: u64,
    /// Sum of lifetime point lookups over all shards.
    pub lookup_ops: u64,
    /// Routing-table generation (bumped by every split/merge).
    pub epoch: u64,
    /// Lifetime shard splits performed by this service.
    pub rebalance_splits: u64,
    /// Lifetime shard merges performed by this service.
    pub rebalance_merges: u64,
    /// Batches currently queued in the admission layer (0 without one —
    /// filled in by [`crate::AdmittedLsm::stats`]).
    pub admission_queued_batches: u64,
    /// Sub-batches absorbed by admission coalescing (0 without a layer).
    pub admission_coalesced_batches: u64,
    /// Batches the admission applier pushed into the shards (0 without a
    /// layer).
    pub admission_applied_batches: u64,
    /// Queue-wait percentiles of the admission layer, µs (zeroed without
    /// one — filled in by [`crate::AdmittedLsm::stats`]).
    pub admission_queue_wait: crate::latency::LatencySnapshot,
    /// Shard-apply-time percentiles of the admission layer, µs (zeroed
    /// without one).
    pub admission_apply: crate::latency::LatencySnapshot,
    /// `true` once durability has degraded to volatile operation (WAL
    /// sealed after unrecoverable I/O errors under
    /// [`crate::DegradeMode::DegradeToVolatile`]).  Sticky for the life of
    /// the handle; `false` without an admission layer.
    pub durability_degraded: bool,
    /// Lifetime durability garbage-collection failures (snapshot
    /// generations whose obsolete files could not be removed; they are
    /// retried on the next snapshot).  0 without an admission layer.
    pub durability_gc_failures: u64,
}

impl ShardedStats {
    /// Fraction of resident elements that are stale (0.0 when empty).
    pub fn stale_fraction(&self) -> f64 {
        if self.total_elements == 0 {
            0.0
        } else {
            self.stale_elements as f64 / self.total_elements as f64
        }
    }
}

impl ShardedLsm {
    /// Create an empty sharded LSM with `num_shards` power-of-two uniform
    /// shards of batch size `batch_size`, all on `device`.
    pub fn new(device: Arc<gpu_sim::Device>, batch_size: usize, num_shards: usize) -> Result<Self> {
        Self::with_router(
            device,
            batch_size,
            ShardRouter::new(num_shards)?,
            LsmConfig::default(),
        )
    }

    /// Create an empty sharded LSM with `num_shards` uniform shards,
    /// configured by an explicit [`LsmConfig`] (per-instance knobs apply to
    /// every shard; the config's process-wide knobs are installed globally).
    pub fn with_config(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        num_shards: usize,
        config: LsmConfig,
    ) -> Result<Self> {
        Self::with_router(device, batch_size, ShardRouter::new(num_shards)?, config)
    }

    /// Create an empty sharded LSM partitioned by an explicit router — the
    /// way to start from a *learned* partition (for instance one fitted
    /// with [`ShardRouter::fit`] from a key sample).
    pub fn with_router(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        router: ShardRouter,
        config: LsmConfig,
    ) -> Result<Self> {
        Self::build(device, batch_size, router, config, None)
    }

    /// Bulk-build a sharded LSM from arbitrary key–value pairs: the pairs
    /// are partitioned by shard and each shard is bulk-built independently
    /// (in parallel).
    pub fn bulk_build(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        num_shards: usize,
        pairs: &[(Key, Value)],
    ) -> Result<Self> {
        Self::build(
            device,
            batch_size,
            ShardRouter::new(num_shards)?,
            LsmConfig::default(),
            Some(pairs),
        )
    }

    /// Shared constructor body: validate, install process overrides, build
    /// the initial routing table (from `pairs` when given).
    fn build(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        router: ShardRouter,
        config: LsmConfig,
        pairs: Option<&[(Key, Value)]>,
    ) -> Result<Self> {
        if batch_size == 0 {
            return Err(LsmError::InvalidBatchSize { batch_size });
        }
        config.apply_process_overrides();
        let num_shards = router.num_shards();
        let mut per_shard: Vec<Vec<(Key, Value)>> = vec![Vec::new(); num_shards];
        if let Some(pairs) = pairs {
            if let Some(&(k, _)) = pairs.iter().find(|(k, _)| *k > MAX_KEY) {
                return Err(LsmError::KeyOutOfRange { key: k });
            }
            for &(k, v) in pairs {
                per_shard[router.shard_of(k)].push((k, v));
            }
        }
        let shards: Vec<Result<ConcurrentGpuLsm>> = per_shard
            .par_iter()
            .map(|shard_pairs| {
                let mut lsm = GpuLsm::bulk_build(device.clone(), batch_size, shard_pairs)?;
                lsm.apply_instance_config(&config);
                Ok(ConcurrentGpuLsm::new(lsm))
            })
            .collect();
        let shards = shards.into_iter().collect::<Result<Vec<_>>>()?;
        let ids = (0..num_shards as u64).collect();
        Ok(ShardedLsm {
            device,
            batch_size,
            table: Arc::new(RwLock::new(Arc::new(RoutingTable {
                router,
                shards,
                ids,
                epoch: 0,
            }))),
            config,
            rebalance: Arc::new(Mutex::new(RebalanceState::default())),
            next_shard_id: Arc::new(AtomicU64::new(num_shards as u64)),
        })
    }

    /// Reassemble a sharded service from recovered per-shard structures
    /// (crash recovery): router, shard contents and epoch come from a
    /// persisted manifest, so routing and data match the snapshotted
    /// service exactly.  The epoch is carried over to stay monotonic
    /// across restarts; shard ids restart from `0..n` (the admission
    /// layer is reconstructed after recovery, so no queue identity needs
    /// to survive).
    pub(crate) fn from_parts(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        router: ShardRouter,
        config: LsmConfig,
        shards: Vec<GpuLsm>,
        epoch: u64,
    ) -> Result<Self> {
        if batch_size == 0 {
            return Err(LsmError::InvalidBatchSize { batch_size });
        }
        if shards.len() != router.num_shards() {
            return Err(LsmError::Durability {
                context: format!(
                    "snapshot holds {} shards but its router describes {}",
                    shards.len(),
                    router.num_shards()
                ),
            });
        }
        config.apply_process_overrides();
        let num_shards = shards.len();
        let shards: Vec<ConcurrentGpuLsm> = shards
            .into_iter()
            .map(|mut lsm| {
                lsm.apply_instance_config(&config);
                ConcurrentGpuLsm::new(lsm)
            })
            .collect();
        Ok(ShardedLsm {
            device,
            batch_size,
            table: Arc::new(RwLock::new(Arc::new(RoutingTable {
                router,
                shards,
                ids: (0..num_shards as u64).collect(),
                epoch,
            }))),
            config,
            rebalance: Arc::new(Mutex::new(RebalanceState::default())),
            next_shard_id: Arc::new(AtomicU64::new(num_shards as u64)),
        })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of shards in the current routing generation.
    pub fn num_shards(&self) -> usize {
        self.table.read().shards.len()
    }

    /// The fixed per-shard batch size `b`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// A copy of the current router.  Rebalancing may replace the routing
    /// table at any time, so this is a snapshot, not a live view.
    pub fn router(&self) -> ShardRouter {
        self.table.read().router.clone()
    }

    /// Routing-table generation: starts at 0 and is bumped by every
    /// split/merge.
    pub fn epoch(&self) -> u64 {
        self.table.read().epoch
    }

    /// The configuration this service was constructed with.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// Handle to shard `s` of the current routing generation (for
    /// diagnostics and tests).  The handle stays valid after a rebalance
    /// but then addresses a frozen, superseded shard.
    pub fn shard(&self, s: usize) -> ConcurrentGpuLsm {
        self.table.read().shards[s].clone()
    }

    /// Snapshot of the current routing generation (admission layer).
    pub(crate) fn table_snapshot(&self) -> Arc<RoutingTable> {
        self.table.read().clone()
    }

    /// Apply a pre-routed sub-batch to shard `s` while holding the routing
    /// table's read lock, so the apply cannot interleave with a
    /// rebuild-and-swap.  Used by the admission applier (which routes
    /// against its own mirror of the table).  Fails if `s` no longer
    /// exists.
    pub(crate) fn apply_routed(&self, s: usize, batch: &UpdateBatch) -> Result<()> {
        let table = self.table.read();
        if s >= table.shards.len() {
            return Err(LsmError::InvalidRebalance {
                reason: format!("shard {s} out of range for {} shards", table.shards.len()),
            });
        }
        table.shards[s].update(batch)
    }

    // ------------------------------------------------------------------
    // Updates (per-shard exclusive phases)
    // ------------------------------------------------------------------

    /// Apply a mixed update batch: validated as a whole, split by shard in
    /// one stable pass, then applied to the owning shards in parallel.
    ///
    /// Validation happens *before* any shard is touched, so an invalid
    /// batch mutates nothing.  Each shard receives at most one sub-batch
    /// and applies it under its own write lock; shards not named by the
    /// batch are never locked.  The routing table's read lock is held for
    /// the duration of the apply, so the batch lands entirely in one
    /// routing generation.
    pub fn update(&self, batch: &UpdateBatch) -> Result<()> {
        {
            let table = self.table.read();
            if table.shards.len() == 1 {
                // Degenerate sharding: no split, no clone — the single
                // shard performs the identical validation itself.
                table.shards[0].update(batch)?;
            } else {
                if batch.is_empty() {
                    return Err(LsmError::EmptyBatch);
                }
                if batch.len() > self.batch_size {
                    return Err(LsmError::BatchTooLarge {
                        supplied: batch.len(),
                        batch_size: self.batch_size,
                    });
                }
                if let Some(op) = batch.ops().iter().find(|op| op.key() > MAX_KEY) {
                    return Err(LsmError::KeyOutOfRange { key: op.key() });
                }

                let parts = table.router.split_updates(batch);
                let work: Vec<(usize, UpdateBatch)> = parts
                    .into_iter()
                    .enumerate()
                    .filter(|(_, p)| !p.is_empty())
                    .collect();
                // Sub-batches passed validation above (non-empty, within b,
                // keys in domain), so per-shard updates cannot fail; the
                // expect documents that invariant rather than handling a
                // reachable error.
                work.par_iter().for_each(|(s, part)| {
                    table.shards[*s]
                        .update(part)
                        .expect("validated sub-batch cannot be rejected");
                });
            }
        }
        if self.config.rebalance.enabled {
            self.note_batch(batch);
        }
        Ok(())
    }

    /// Insert key–value pairs (at most `b`).
    pub fn insert(&self, pairs: &[(Key, Value)]) -> Result<()> {
        self.update(&UpdateBatch::from_pairs(pairs))
    }

    /// Delete keys (at most `b`) by inserting tombstones.
    pub fn delete(&self, keys: &[Key]) -> Result<()> {
        self.update(&UpdateBatch::from_deletions(keys))
    }

    /// Remove stale elements from every shard (each under its own write
    /// lock, in parallel) and return the aggregated report.
    pub fn cleanup(&self) -> CleanupReport {
        let table = self.table.read();
        let reports: Vec<CleanupReport> = table.shards.par_iter().map(|s| s.cleanup()).collect();
        reports.into_iter().fold(
            CleanupReport {
                elements_before: 0,
                valid_elements: 0,
                removed_elements: 0,
                placebos_added: 0,
                levels_before: 0,
                levels_after: 0,
            },
            |acc, r| CleanupReport {
                elements_before: acc.elements_before + r.elements_before,
                valid_elements: acc.valid_elements + r.valid_elements,
                removed_elements: acc.removed_elements + r.removed_elements,
                placebos_added: acc.placebos_added + r.placebos_added,
                levels_before: acc.levels_before + r.levels_before,
                levels_after: acc.levels_after + r.levels_after,
            },
        )
    }

    // ------------------------------------------------------------------
    // Online shard split / merge
    // ------------------------------------------------------------------

    /// Split shard `s` in two at a fitted key and atomically install the
    /// new routing table.  Returns the chosen split key.
    ///
    /// The split key is learned from the shard's resident data: the median
    /// of its per-level fence samples (an order-statistics sketch that
    /// already exists for query acceleration) combined with the recent
    /// update keys falling in the shard's range, with the midpoint of the
    /// shard's bounds as the data-free fallback.
    pub fn split_shard(&self, s: usize) -> Result<Key> {
        let key = self.fit_split_key(s)?;
        self.split_shard_at(s, key)?;
        Ok(key)
    }

    /// Split shard `s` in two at an explicit `key` (the left half keeps
    /// `[lo, key − 1]`, the right half gets `[key, hi]`) and atomically
    /// install the new routing table.  Concurrent queries keep their
    /// snapshot of the old generation; concurrent updates are excluded for
    /// the duration of the rebuild by the table's write lock.
    pub fn split_shard_at(&self, s: usize, key: Key) -> Result<()> {
        let mut guard = self.table.write();
        let table = guard.clone();
        let router = table.router.with_split(s, key)?;
        let (lo, hi) = table.router.shard_bounds(s);
        // Rebuild from the immutable sorted runs: a full-range read of the
        // shard's *visible* state (equivalent to a cleanup — stale
        // duplicates and spent tombstones are dropped, which is safe
        // because every key is owned by exactly one shard).
        let pairs = Self::extract_pairs(&table.shards[s], lo, hi);
        let cut = pairs.partition_point(|&(k, _)| k < key);
        let left = self.build_shard(&pairs[..cut])?;
        let right = self.build_shard(&pairs[cut..])?;
        // The replacement shards inherit the drained shard's cumulative
        // operation counters (split evenly — the historical per-half
        // attribution is unknowable), so per-shard load stays comparable
        // across rebalances in `stats()`.
        let (parent_updates, parent_lookups) =
            table.shards[s].with_read(|l| (l.stats().update_ops, l.stats().lookup_ops));
        let left_updates = parent_updates / 2;
        let left_lookups = parent_lookups / 2;
        left.with_read(|l| {
            l.op_activity.record_updates(left_updates);
            l.op_activity.record_lookups(left_lookups);
        });
        right.with_read(|l| {
            l.op_activity.record_updates(parent_updates - left_updates);
            l.op_activity.record_lookups(parent_lookups - left_lookups);
        });
        let mut shards = table.shards.clone();
        let mut ids = table.ids.clone();
        let old_id = ids[s];
        shards[s] = left;
        ids[s] = self.next_shard_id.fetch_add(1, Ordering::Relaxed);
        shards.insert(s + 1, right);
        ids.insert(s + 1, self.next_shard_id.fetch_add(1, Ordering::Relaxed));
        let (left_id, right_id) = (ids[s], ids[s + 1]);
        *guard = Arc::new(RoutingTable {
            router,
            shards,
            ids,
            epoch: table.epoch + 1,
        });
        drop(guard);
        let mut st = self.rebalance.lock();
        st.splits += 1;
        // Keep the detection baselines coherent: the replacements start a
        // fresh window at their inherited counter value (delta 0);
        // survivors keep their windows.
        st.baselines.remove(&old_id);
        st.baselines.insert(left_id, left_updates);
        st.baselines.insert(right_id, parent_updates - left_updates);
        Ok(())
    }

    /// Merge shards `s` and `s + 1` into one and atomically install the
    /// new routing table.
    pub fn merge_shards(&self, s: usize) -> Result<()> {
        let mut guard = self.table.write();
        let table = guard.clone();
        let router = table.router.with_merge(s)?;
        let (lo, _) = table.router.shard_bounds(s);
        let (_, hi) = table.router.shard_bounds(s + 1);
        // The two ranges are adjacent and each extract is key-sorted, so
        // their concatenation is the merged shard's sorted visible state.
        let mut pairs = Self::extract_pairs(&table.shards[s], lo, table.router.shard_bounds(s).1);
        pairs.extend(Self::extract_pairs(
            &table.shards[s + 1],
            table.router.shard_bounds(s + 1).0,
            hi,
        ));
        let merged = self.build_shard(&pairs)?;
        // Counter inheritance, as in `split_shard_at`: the merged shard
        // carries the sum of its parents' cumulative operation counters.
        let (a_updates, a_lookups) =
            table.shards[s].with_read(|l| (l.stats().update_ops, l.stats().lookup_ops));
        let (b_updates, b_lookups) =
            table.shards[s + 1].with_read(|l| (l.stats().update_ops, l.stats().lookup_ops));
        merged.with_read(|l| {
            l.op_activity.record_updates(a_updates + b_updates);
            l.op_activity.record_lookups(a_lookups + b_lookups);
        });
        let mut shards = table.shards.clone();
        let mut ids = table.ids.clone();
        let (a_id, b_id) = (ids[s], ids[s + 1]);
        shards[s] = merged;
        ids[s] = self.next_shard_id.fetch_add(1, Ordering::Relaxed);
        shards.remove(s + 1);
        ids.remove(s + 1);
        let merged_id = ids[s];
        *guard = Arc::new(RoutingTable {
            router,
            shards,
            ids,
            epoch: table.epoch + 1,
        });
        drop(guard);
        let mut st = self.rebalance.lock();
        st.merges += 1;
        st.baselines.remove(&a_id);
        st.baselines.remove(&b_id);
        st.baselines.insert(merged_id, a_updates + b_updates);
        Ok(())
    }

    /// The shard's visible key–value pairs in `[lo, hi]`, key-sorted.
    fn extract_pairs(shard: &ConcurrentGpuLsm, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        let result = shard.range(&[(lo, hi)]);
        let (keys, values) = result.query(0);
        keys.iter().copied().zip(values.iter().copied()).collect()
    }

    /// Bulk-build one replacement shard from extracted pairs, inheriting
    /// the service's per-instance config.
    fn build_shard(&self, pairs: &[(Key, Value)]) -> Result<ConcurrentGpuLsm> {
        let mut lsm = GpuLsm::bulk_build(self.device.clone(), self.batch_size, pairs)?;
        lsm.apply_instance_config(&self.config);
        Ok(ConcurrentGpuLsm::new(lsm))
    }

    /// Fit a split key for shard `s` from its fence samples and the
    /// recent-key reservoir (midpoint fallback when there is no data).
    fn fit_split_key(&self, s: usize) -> Result<Key> {
        let table = self.table.read();
        if s >= table.shards.len() {
            return Err(LsmError::InvalidRebalance {
                reason: format!("shard {s} out of range for {} shards", table.shards.len()),
            });
        }
        let (lo, hi) = table.router.shard_bounds(s);
        if lo >= hi {
            return Err(LsmError::InvalidRebalance {
                reason: format!("shard {s} owns a single key and cannot be split"),
            });
        }
        let mut sample: Vec<Key> = table.shards[s].with_read(|l| l.fence_sample_keys());
        {
            let st = self.rebalance.lock();
            sample.extend(st.recent_keys.iter().copied());
        }
        sample.retain(|&k| k > lo && k <= hi);
        drop(table);
        if sample.is_empty() {
            // No resident data, no observed traffic: bisect the range.
            return Ok(lo + (hi - lo) / 2 + 1);
        }
        sample.sort_unstable();
        Ok(sample[sample.len() / 2].clamp(lo + 1, hi))
    }

    /// Evaluate the hot/cold thresholds against per-shard update traffic
    /// since the last evaluation.  Returns a decision without executing it
    /// (the admission layer needs to drain queues before acting).  Returns
    /// `None` when the traffic sample is below
    /// [`crate::RebalanceConfig::min_ops`] or no threshold trips.
    pub fn plan_rebalance(&self) -> Option<RebalanceAction> {
        let cfg = &self.config.rebalance;
        let table = self.table_snapshot();
        let current: Vec<(u64, u64)> = table
            .shards
            .iter()
            .zip(table.ids.iter())
            .map(|(shard, &id)| (id, shard.with_read(|l| l.stats().update_ops)))
            .collect();
        let mut st = self.rebalance.lock();
        let deltas: Vec<u64> = current
            .iter()
            .map(|&(id, ops)| ops.saturating_sub(st.baselines.get(&id).copied().unwrap_or(0)))
            .collect();
        let total: u64 = deltas.iter().sum();
        if total < cfg.min_ops {
            return None;
        }
        // A threshold evaluation happened: re-baseline so the next window
        // measures fresh traffic.
        st.baselines = current.into_iter().collect();
        drop(st);

        let n = table.shards.len();
        let (hot, &hot_delta) = deltas
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .expect("at least one shard");
        if n < cfg.max_shards && (hot_delta as f64) > cfg.hot_fraction * total as f64 {
            let (lo, hi) = table.router.shard_bounds(hot);
            if lo < hi {
                return Some(RebalanceAction::Split(hot));
            }
        }
        if n > cfg.min_shards.max(1) {
            let (cold, pair_delta) = (0..n - 1)
                .map(|i| (i, deltas[i] + deltas[i + 1]))
                .min_by_key(|&(_, d)| d)
                .expect("at least one adjacent pair");
            if (pair_delta as f64) < cfg.cold_fraction * total as f64 {
                return Some(RebalanceAction::Merge(cold));
            }
        }
        None
    }

    /// Execute a rebalance decision.
    pub fn apply_rebalance(&self, action: RebalanceAction) -> Result<()> {
        match action {
            RebalanceAction::Split(s) => self.split_shard(s).map(|_| ()),
            RebalanceAction::Merge(s) => self.merge_shards(s),
        }
    }

    /// Plan and (if a threshold trips) execute one rebalance.  Returns the
    /// action taken, if any.  Called automatically from the update path
    /// every [`crate::RebalanceConfig::check_interval`] batches when rebalancing
    /// is enabled; harmless to call directly.
    pub fn maybe_rebalance(&self) -> Option<RebalanceAction> {
        let action = self.plan_rebalance()?;
        // A planned action can still fail under racing rebalances (the
        // index may be stale by the time the write lock is taken); the
        // next evaluation simply plans again.
        self.apply_rebalance(action).ok()?;
        Some(action)
    }

    /// Record an applied batch for hot-shard detection: sample a few keys
    /// into the reservoir and run the detector every `check_interval`
    /// batches.
    fn note_batch(&self, batch: &UpdateBatch) {
        let due = {
            let mut st = self.rebalance.lock();
            let ops = batch.ops();
            let stride = (ops.len() / KEYS_PER_BATCH_SAMPLE).max(1);
            for op in ops.iter().step_by(stride) {
                let pos = st.recent_pos % RECENT_KEY_CAP;
                if pos < st.recent_keys.len() {
                    st.recent_keys[pos] = op.key();
                } else {
                    st.recent_keys.push(op.key());
                }
                st.recent_pos = st.recent_pos.wrapping_add(1);
            }
            st.batches_since_check += 1;
            if st.batches_since_check >= self.config.rebalance.check_interval {
                st.batches_since_check = 0;
                true
            } else {
                false
            }
        };
        if due {
            self.maybe_rebalance();
        }
    }

    // ------------------------------------------------------------------
    // Queries (per-shard shared phases, fan-out + reassembly)
    // ------------------------------------------------------------------

    /// Bulk point lookups: routed to the owning shards, executed per shard
    /// in parallel, reassembled in input order.
    ///
    /// Each shard's sub-batch goes through [`GpuLsm::lookup`]'s adaptive
    /// dispatch, so a large fan-out lands on the bulk sorted path exactly
    /// when the sub-batch is big relative to that shard (shards hold
    /// `1/N`-th of the data, so sharding *lowers* the crossover).
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let table = self.table_snapshot();
        let parts = table.router.split_lookups(queries);
        let work: Vec<(usize, &RoutedLookups)> = parts
            .iter()
            .enumerate()
            .filter(|(_, (keys, _))| !keys.is_empty())
            .collect();
        let shard_answers: Vec<(&[usize], Vec<Option<Value>>)> = work
            .par_iter()
            .map(|(s, (keys, positions))| (positions.as_slice(), table.shards[*s].lookup(keys)))
            .collect();
        let mut out = vec![None; queries.len()];
        for (positions, answers) in shard_answers {
            for (&pos, ans) in positions.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        out
    }

    /// Warp-style bulk lookups: routed to the owning shards, executed per
    /// shard in parallel through [`GpuLsm::bulk_get`] (each shard sorts its
    /// sub-batch and marches it in warp-sized groups), reassembled in input
    /// order.  Results are identical to [`ShardedLsm::lookup`].
    pub fn bulk_get(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let table = self.table_snapshot();
        let parts = table.router.split_lookups(queries);
        let work: Vec<(usize, &RoutedLookups)> = parts
            .iter()
            .enumerate()
            .filter(|(_, (keys, _))| !keys.is_empty())
            .collect();
        let shard_answers: Vec<(&[usize], Vec<Option<Value>>)> = work
            .par_iter()
            .map(|(s, (keys, positions))| (positions.as_slice(), table.shards[*s].bulk_get(keys)))
            .collect();
        let mut out = vec![None; queries.len()];
        for (positions, answers) in shard_answers {
            for (&pos, ans) in positions.iter().zip(answers) {
                out[pos] = ans;
            }
        }
        out
    }

    /// Bulk count queries: each interval is decomposed into per-shard
    /// sub-intervals; sub-counts are disjoint by construction (shards own
    /// disjoint key ranges) so they sum to the global answer.
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        let table = self.table_snapshot();
        let num_shards = table.shards.len();
        let subs = table.router.split_intervals(queries);
        // Group sub-queries by shard, remembering the originating query.
        let mut per_shard: Vec<RoutedIntervals> = vec![(Vec::new(), Vec::new()); num_shards];
        for sub in &subs {
            per_shard[sub.shard].0.push((sub.lo, sub.hi));
            per_shard[sub.shard].1.push(sub.query);
        }
        let work: Vec<(usize, &RoutedIntervals)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, (qs, _))| !qs.is_empty())
            .collect();
        let shard_answers: Vec<(&[usize], Vec<u32>)> = work
            .par_iter()
            .map(|(s, (qs, origins))| (origins.as_slice(), table.shards[*s].count(qs)))
            .collect();
        let mut out = vec![0u32; queries.len()];
        for (origins, counts) in shard_answers {
            for (&q, c) in origins.iter().zip(counts) {
                out[q] += c;
            }
        }
        out
    }

    /// Bulk range queries: per-shard sub-results are concatenated in shard
    /// order per query, which yields each query's pairs globally sorted by
    /// key (the partition is by key range).
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        let table = self.table_snapshot();
        let num_shards = table.shards.len();
        let subs = table.router.split_intervals(queries);
        let mut per_shard: Vec<Vec<(Key, Key)>> = vec![Vec::new(); num_shards];
        // For each input query, the (shard slot, index within that shard's
        // sub-query list) pairs, in shard-ascending order — split_intervals
        // emits them that way.
        let mut assembly: Vec<Vec<(usize, usize)>> = vec![Vec::new(); queries.len()];
        for sub in &subs {
            assembly[sub.query].push((sub.shard, per_shard[sub.shard].len()));
            per_shard[sub.shard].push((sub.lo, sub.hi));
        }
        let work: Vec<(usize, &Vec<(Key, Key)>)> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, qs)| !qs.is_empty())
            .collect();
        let shard_results: Vec<(usize, RangeResult)> = work
            .par_iter()
            .map(|(s, qs)| (*s, table.shards[*s].range(qs)))
            .collect();
        // Shard slot -> its RangeResult (shards without work stay None).
        let mut by_shard: Vec<Option<RangeResult>> = (0..num_shards).map(|_| None).collect();
        for (s, r) in shard_results {
            by_shard[s] = Some(r);
        }
        RangeResult::from_query_parts(queries.len(), |q| {
            assembly[q]
                .iter()
                .map(|&(s, local)| {
                    let r = by_shard[s].as_ref().expect("shard with sub-queries ran");
                    r.query(local)
                })
                .collect()
        })
    }

    /// Bulk successor queries (smallest valid key strictly greater than
    /// each query key).  The owning shard is asked first; if it has no
    /// successor the scan walks the higher shards in key order.
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        let table = self.table_snapshot();
        queries
            .par_iter()
            .map(|&q| Self::successor_in(&table, q))
            .collect()
    }

    /// Bulk predecessor queries (largest valid key strictly smaller than
    /// each query key).
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        let table = self.table_snapshot();
        queries
            .par_iter()
            .map(|&q| Self::predecessor_in(&table, q))
            .collect()
    }

    /// Successor of a single key across shards.
    ///
    /// Before a shard's levels are searched, its per-level min/max fences
    /// (aggregated by [`GpuLsm::max_resident_key`]) are consulted under the
    /// same read lock: a shard whose largest resident key is `<= probe` —
    /// in particular an empty shard — provably has no candidate and is
    /// skipped without any binary searches.
    pub fn successor_one(&self, query: Key) -> Option<(Key, Value)> {
        Self::successor_in(&self.table_snapshot(), query)
    }

    /// Predecessor of a single key across shards (fence-skipping the
    /// shards whose smallest resident key is `>= probe`, see
    /// [`ShardedLsm::successor_one`]).
    pub fn predecessor_one(&self, query: Key) -> Option<(Key, Value)> {
        Self::predecessor_in(&self.table_snapshot(), query)
    }

    fn successor_in(table: &RoutingTable, query: Key) -> Option<(Key, Value)> {
        let first = table.router.shard_of(query.min(MAX_KEY));
        for s in first..table.shards.len() {
            // For shards above the owner, any resident key is greater than
            // the query, so probing with the key just below the shard's
            // range yields the shard's smallest valid key.
            let probe = if s == first {
                query
            } else {
                table.router.shard_bounds(s).0 - 1
            };
            let found = table.shards[s].with_read(|lsm| {
                if lsm.max_resident_key().is_none_or(|max| max <= probe) {
                    return None; // no resident key can exceed the probe
                }
                lsm.successor_one(probe)
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    fn predecessor_in(table: &RoutingTable, query: Key) -> Option<(Key, Value)> {
        let first = table.router.shard_of(query.min(MAX_KEY));
        for s in (0..=first).rev() {
            let probe = if s == first {
                query
            } else {
                // The key just above the shard's range: its predecessor is
                // the shard's largest valid key.
                table.router.shard_bounds(s).1 + 1
            };
            let found = table.shards[s].with_read(|lsm| {
                if lsm.min_resident_key().is_none_or(|min| min >= probe) {
                    return None; // no resident key can undercut the probe
                }
                lsm.predecessor_one(probe)
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Aggregated statistics: per-shard snapshots plus service totals.
    pub fn stats(&self) -> ShardedStats {
        let table = self.table_snapshot();
        let per_shard: Vec<LsmStats> = table.shards.par_iter().map(|s| s.stats()).collect();
        let (splits, merges) = {
            let st = self.rebalance.lock();
            (st.splits, st.merges)
        };
        let mut agg = ShardedStats {
            total_elements: 0,
            valid_elements: 0,
            stale_elements: 0,
            occupied_levels: 0,
            memory_bytes: 0,
            filter_bytes: 0,
            fence_bytes: 0,
            filter_probes: 0,
            filter_skips: 0,
            merges: crate::stats::MergeCounters::default(),
            arena: crate::arena::ArenaStats::default(),
            update_ops: 0,
            lookup_ops: 0,
            epoch: table.epoch,
            rebalance_splits: splits,
            rebalance_merges: merges,
            admission_queued_batches: 0,
            admission_coalesced_batches: 0,
            admission_applied_batches: 0,
            admission_queue_wait: crate::latency::LatencySnapshot::default(),
            admission_apply: crate::latency::LatencySnapshot::default(),
            durability_degraded: false,
            durability_gc_failures: 0,
            per_shard: Vec::new(),
        };
        for s in &per_shard {
            agg.total_elements += s.total_elements;
            agg.valid_elements += s.valid_elements;
            agg.stale_elements += s.stale_elements;
            agg.occupied_levels += s.occupied_levels;
            agg.memory_bytes += s.memory_bytes;
            agg.filter_bytes += s.filter_bytes;
            agg.fence_bytes += s.fence_bytes;
            agg.filter_probes += s.filter_probes;
            agg.filter_skips += s.filter_skips;
            agg.merges.add(&s.merges);
            agg.arena.add(&s.arena);
            agg.update_ops += s.update_ops;
            agg.lookup_ops += s.lookup_ops;
        }
        agg.per_shard = per_shard;
        agg
    }

    /// Check every shard's structural invariants plus the sharding
    /// invariant: every non-placebo element resides in the shard that owns
    /// its key.  (Placebo padding elements are max-key tombstones by
    /// construction and are exempt — every shard pads with them.)
    pub fn check_invariants(&self) -> std::result::Result<(), InvariantViolation> {
        let table = self.table_snapshot();
        for (s, shard) in table.shards.iter().enumerate() {
            shard.with_read(|lsm| {
                lsm.check_invariants().map_err(|InvariantViolation(msg)| {
                    InvariantViolation(format!("shard {s}: {msg}"))
                })?;
                let (lo, hi) = table.router.shard_bounds(s);
                for (i, level) in lsm.levels().iter_occupied() {
                    for &enc in level.keys() {
                        let key = original_key(enc);
                        let placebo = key == MAX_KEY && is_tombstone(enc);
                        if !placebo && (key < lo || key > hi) {
                            return Err(InvariantViolation(format!(
                                "shard {s} level {i} holds key {key} outside its range [{lo}, {hi}]"
                            )));
                        }
                    }
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RebalanceConfig;
    use gpu_sim::{Device, DeviceConfig};

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    fn sharded(batch_size: usize, num_shards: usize) -> ShardedLsm {
        ShardedLsm::new(device(), batch_size, num_shards).unwrap()
    }

    /// Keys that land in shard `s` of `n` shards: the shard's low bound
    /// plus small offsets.
    fn key_in(n: usize, s: usize, offset: u32) -> u32 {
        let router = ShardRouter::new(n).unwrap();
        router.shard_bounds(s).0 + offset
    }

    #[test]
    fn rejects_invalid_shard_counts_and_batch_sizes() {
        assert!(matches!(
            ShardedLsm::new(device(), 8, 3).unwrap_err(),
            LsmError::InvalidShardCount { num_shards: 3 }
        ));
        assert!(matches!(
            ShardedLsm::new(device(), 0, 2).unwrap_err(),
            LsmError::InvalidBatchSize { batch_size: 0 }
        ));
    }

    #[test]
    fn basic_crud_across_shards() {
        let lsm = sharded(8, 4);
        let keys: Vec<u32> = (0..4).map(|s| key_in(4, s, 7)).collect();
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k % 1000)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(
            lsm.lookup(&keys),
            pairs.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
        );
        lsm.delete(&[keys[2]]).unwrap();
        assert_eq!(lsm.lookup(&[keys[2]]), vec![None]);
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![3]);
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn update_validation_mutates_nothing() {
        let lsm = sharded(2, 2);
        assert_eq!(
            lsm.update(&UpdateBatch::new()).unwrap_err(),
            LsmError::EmptyBatch
        );
        let err = lsm.insert(&[(1, 1), (2, 2), (3, 3)]).unwrap_err();
        assert!(matches!(err, LsmError::BatchTooLarge { .. }));
        let mut batch = UpdateBatch::new();
        batch.insert(1, 1).insert(MAX_KEY + 1, 0);
        assert_eq!(
            lsm.update(&batch).unwrap_err(),
            LsmError::KeyOutOfRange { key: MAX_KEY + 1 }
        );
        // Nothing was applied, not even the valid prefix.
        assert_eq!(lsm.stats().total_elements, 0);
        assert_eq!(lsm.lookup(&[1]), vec![None]);
    }

    #[test]
    fn cross_shard_range_concatenates_in_key_order() {
        let lsm = sharded(16, 4);
        // Three keys per shard, clustered at each shard's low boundary.
        let mut pairs = Vec::new();
        for s in 0..4 {
            for off in 0..3u32 {
                let k = key_in(4, s, off);
                pairs.push((k, s as u32 * 10 + off));
            }
        }
        lsm.insert(&pairs).unwrap();
        let result = lsm.range(&[(0, MAX_KEY)]);
        let (keys, values) = result.query(0);
        let mut expected = pairs.clone();
        expected.sort_unstable();
        assert_eq!(keys, expected.iter().map(|&(k, _)| k).collect::<Vec<_>>());
        assert_eq!(values, expected.iter().map(|&(_, v)| v).collect::<Vec<_>>());
    }

    #[test]
    fn single_shard_matches_plain_lsm_byte_for_byte() {
        let sharded = sharded(8, 1);
        let mut plain = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|i| (i * 1000, i)).collect();
        sharded.insert(&pairs).unwrap();
        plain.insert(&pairs).unwrap();
        sharded.delete(&[2000, 5000]).unwrap();
        plain.delete(&[2000, 5000]).unwrap();

        let lookups: Vec<u32> = (0..9000).step_by(500).collect();
        assert_eq!(sharded.lookup(&lookups), plain.lookup(&lookups));
        let intervals = vec![(0, 3500), (3500, 3500), (9000, 1), (0, MAX_KEY)];
        assert_eq!(sharded.count(&intervals), plain.count(&intervals));
        assert_eq!(sharded.range(&intervals), plain.range(&intervals));
        assert_eq!(sharded.successor(&[0, 2000]), plain.successor(&[0, 2000]));
        assert_eq!(
            sharded.predecessor(&[7000, 1]),
            plain.predecessor(&[7000, 1])
        );
    }

    #[test]
    fn successor_and_predecessor_cross_shard_boundaries() {
        let lsm = sharded(4, 4);
        // One key in shard 0 and one in shard 3; shards 1 and 2 are empty.
        let a = key_in(4, 0, 5);
        let b = key_in(4, 3, 9);
        lsm.insert(&[(a, 1), (b, 2)]).unwrap();
        assert_eq!(lsm.successor(&[a]), vec![Some((b, 2))]);
        assert_eq!(lsm.predecessor(&[b]), vec![Some((a, 1))]);
        assert_eq!(lsm.successor(&[b]), vec![None]);
        assert_eq!(lsm.predecessor(&[a]), vec![None]);
        // A query inside an empty middle shard sees across both boundaries.
        let mid = key_in(4, 1, 3);
        assert_eq!(lsm.successor(&[mid]), vec![Some((b, 2))]);
        assert_eq!(lsm.predecessor(&[mid]), vec![Some((a, 1))]);
    }

    #[test]
    fn cleanup_and_stats_aggregate_across_shards() {
        let lsm = sharded(4, 2);
        let low = key_in(2, 0, 1);
        let high = key_in(2, 1, 1);
        lsm.insert(&[(low, 1), (high, 2)]).unwrap();
        lsm.insert(&[(low, 3), (high + 1, 4)]).unwrap();
        lsm.delete(&[high]).unwrap();
        let stats = lsm.stats();
        assert_eq!(stats.per_shard.len(), 2);
        assert_eq!(stats.valid_elements, 2); // low (=3), high+1
        assert!(stats.stale_fraction() > 0.0);
        assert_eq!(stats.update_ops, 5);
        assert_eq!(stats.epoch, 0);
        let report = lsm.cleanup();
        assert_eq!(report.valid_elements, 2);
        let after = lsm.stats();
        assert_eq!(after.valid_elements, 2);
        assert!(after.total_elements <= stats.total_elements);
        assert_eq!(
            lsm.lookup(&[low, high, high + 1]),
            vec![Some(3), None, Some(4)]
        );
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn bulk_build_distributes_by_key_range() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (i * (MAX_KEY / 100), i)).collect();
        let lsm = ShardedLsm::bulk_build(device(), 16, 4, &pairs).unwrap();
        lsm.check_invariants().unwrap();
        let keys: Vec<u32> = pairs.iter().map(|&(k, _)| k).collect();
        assert_eq!(
            lsm.lookup(&keys),
            pairs.iter().map(|&(_, v)| Some(v)).collect::<Vec<_>>()
        );
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![100]);
        // Every shard received some of the evenly spread keys.
        assert!(lsm.stats().per_shard.iter().all(|s| s.total_elements > 0));
    }

    #[test]
    fn clones_share_state() {
        let lsm = sharded(4, 2);
        let clone = lsm.clone();
        lsm.insert(&[(1, 10)]).unwrap();
        assert_eq!(clone.lookup(&[1]), vec![Some(10)]);
    }

    #[test]
    fn learned_router_service_answers_like_uniform() {
        let pairs: Vec<(u32, u32)> = (0..200u32).map(|i| (i * 97, i)).collect();
        let learned = ShardedLsm::with_router(
            device(),
            16,
            ShardRouter::learned(vec![1_000, 5_000, 12_000]).unwrap(),
            LsmConfig::default(),
        )
        .unwrap();
        let uniform = sharded(16, 4);
        for chunk in pairs.chunks(16) {
            learned.insert(chunk).unwrap();
            uniform.insert(chunk).unwrap();
        }
        learned.check_invariants().unwrap();
        let keys: Vec<u32> = (0..220u32).map(|i| i * 97 + (i % 3)).collect();
        assert_eq!(learned.lookup(&keys), uniform.lookup(&keys));
        let intervals = [(0, 6_000), (5_000, MAX_KEY), (12_000, 11_000)];
        assert_eq!(learned.count(&intervals), uniform.count(&intervals));
        assert_eq!(learned.range(&intervals), uniform.range(&intervals));
        assert_eq!(
            learned.successor(&[0, 4_999, 19_000]),
            uniform.successor(&[0, 4_999, 19_000])
        );
    }

    #[test]
    fn split_preserves_visible_state_and_rebalances_ownership() {
        let lsm = sharded(8, 2);
        let keys: Vec<u32> = (0..40u32).map(|i| i * 13).collect();
        for chunk in keys.chunks(8) {
            let pairs: Vec<(u32, u32)> = chunk.iter().map(|&k| (k, k + 1)).collect();
            lsm.insert(&pairs).unwrap();
        }
        lsm.delete(&[keys[3], keys[7]]).unwrap();
        let before_lookup = lsm.lookup(&keys);
        let before_count = lsm.count(&[(0, MAX_KEY)]);

        let split_key = lsm.split_shard(0).unwrap();
        assert_eq!(lsm.num_shards(), 3);
        assert_eq!(lsm.epoch(), 1);
        let router = lsm.router();
        assert!(router.split_points().contains(&split_key));
        lsm.check_invariants().unwrap();
        // All data lived in shard 0 (keys < 2^30), so the fitted split key
        // must land inside the data, not at the range midpoint.
        assert!(split_key <= keys[39]);
        assert_eq!(lsm.lookup(&keys), before_lookup);
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), before_count);

        // Merge the two halves back together; answers still unchanged.
        lsm.merge_shards(0).unwrap();
        assert_eq!(lsm.num_shards(), 2);
        assert_eq!(lsm.epoch(), 2);
        lsm.check_invariants().unwrap();
        assert_eq!(lsm.lookup(&keys), before_lookup);
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), before_count);
        let stats = lsm.stats();
        assert_eq!(stats.rebalance_splits, 1);
        assert_eq!(stats.rebalance_merges, 1);

        // Updates keep working against the new routing generation.
        lsm.insert(&[(split_key, 42)]).unwrap();
        assert_eq!(lsm.lookup(&[split_key]), vec![Some(42)]);
    }

    #[test]
    fn explicit_split_at_key_controls_the_boundary() {
        let lsm = sharded(4, 1);
        lsm.insert(&[(10, 1), (20, 2), (30, 3), (40, 4)]).unwrap();
        lsm.split_shard_at(0, 25).unwrap();
        assert_eq!(lsm.num_shards(), 2);
        assert_eq!(lsm.router().split_points(), vec![25]);
        // Left shard holds 10 and 20; right shard holds 30 and 40.
        let stats = lsm.stats();
        assert_eq!(stats.per_shard[0].valid_elements, 2);
        assert_eq!(stats.per_shard[1].valid_elements, 2);
        lsm.check_invariants().unwrap();
        // Invalid requests are rejected without mutating the table.
        assert!(lsm.split_shard_at(0, 0).is_err());
        assert!(lsm.split_shard_at(5, 100).is_err());
        assert_eq!(lsm.num_shards(), 2);
    }

    #[test]
    fn clones_observe_rebalances() {
        let lsm = sharded(4, 2);
        let clone = lsm.clone();
        lsm.insert(&[(1, 10), (2, 20)]).unwrap();
        lsm.split_shard_at(0, 2).unwrap();
        assert_eq!(clone.num_shards(), 3);
        assert_eq!(clone.epoch(), 1);
        assert_eq!(clone.lookup(&[1, 2]), vec![Some(10), Some(20)]);
        clone.merge_shards(0).unwrap();
        assert_eq!(lsm.num_shards(), 2);
    }

    #[test]
    fn hot_shard_detection_splits_under_skew() {
        let config = LsmConfig::default().rebalance(RebalanceConfig {
            enabled: true,
            min_ops: 64,
            hot_fraction: 0.5,
            cold_fraction: 0.0,
            max_shards: 8,
            min_shards: 1,
            check_interval: 4,
        });
        let lsm = ShardedLsm::with_config(device(), 16, 2, config).unwrap();
        // Every key lands in shard 0's low corner: shard 0 is hot.
        for round in 0..8u32 {
            let pairs: Vec<(u32, u32)> = (0..16u32).map(|i| (round * 16 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        assert!(
            lsm.num_shards() > 2,
            "hot shard should have been split, still at {}",
            lsm.num_shards()
        );
        assert!(lsm.stats().rebalance_splits >= 1);
        lsm.check_invariants().unwrap();
        // The data survived the splits.
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![8 * 16]);
    }

    #[test]
    fn cold_shard_detection_merges_idle_pairs() {
        let config = LsmConfig::default().rebalance(RebalanceConfig {
            enabled: true,
            min_ops: 64,
            hot_fraction: 1.1, // never split
            cold_fraction: 0.2,
            max_shards: 8,
            min_shards: 2,
            check_interval: 4,
        });
        let lsm = ShardedLsm::with_config(device(), 16, 8, config).unwrap();
        // All traffic in the top shard; the bottom pairs go cold.
        let base = key_in(8, 7, 0);
        for round in 0..8u32 {
            let pairs: Vec<(u32, u32)> = (0..16u32).map(|i| (base + round * 16 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        assert!(
            lsm.num_shards() < 8,
            "cold shards should have merged, still at {}",
            lsm.num_shards()
        );
        assert!(lsm.num_shards() >= 2, "min_shards must be respected");
        assert!(lsm.stats().rebalance_merges >= 1);
        lsm.check_invariants().unwrap();
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![8 * 16]);
    }
}
