//! Structural invariant checking (used by tests and debug assertions).
//!
//! The building invariants of §III-D are what make first-match lookups and
//! newest-first validation correct:
//!
//! 1. within each level, elements are sorted by original key (equal keys
//!    form a contiguous segment);
//! 2. level sizes are exactly `b·2^i` and occupancy matches the set bits of
//!    the batch count `r`;
//! 3. within a same-key segment of a single batch, the tombstone precedes
//!    the regular elements (a consequence of sorting by the full encoded
//!    word).
//!
//! Temporal ordering across batches cannot be re-checked after the fact
//! without timestamps, but it is enforced constructively by the stable,
//! first-input-wins merge; the property tests in `tests/` check it end to
//! end by comparing against a reference `BTreeMap`.

use crate::lsm::GpuLsm;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation(pub String);

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GPU LSM invariant violated: {}", self.0)
    }
}

impl GpuLsm {
    /// Check the structural invariants, returning the first violation found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let b = self.batch_size();
        let r = self.num_batches();

        // Occupancy must match the binary representation of r.
        let max_bit = usize::BITS - r.leading_zeros();
        for bit in 0..max_bit as usize {
            let expected = r & (1 << bit) != 0;
            let actual = self.levels().is_full(bit);
            if expected != actual {
                return Err(InvariantViolation(format!(
                    "level {bit} occupancy is {actual} but bit {bit} of r = {r} is {expected}"
                )));
            }
        }

        for (i, level) in self.levels().iter_occupied() {
            // Level sizes are b·2^i.
            let expected_len = b << i;
            if level.len() != expected_len {
                return Err(InvariantViolation(format!(
                    "level {i} has {} elements, expected {expected_len}",
                    level.len()
                )));
            }
            if level.keys().len() != level.values().len() {
                return Err(InvariantViolation(format!(
                    "level {i} has mismatched key/value array lengths"
                )));
            }
            // Sorted by original key.
            let keys = level.keys();
            if let Some(pos) = keys.windows(2).position(|w| (w[0] >> 1) > (w[1] >> 1)) {
                return Err(InvariantViolation(format!(
                    "level {i} is not sorted by original key at index {pos}"
                )));
            }
            // The fence min/max must bracket the level exactly — queries
            // prune levels and shards against them, so a stale fence would
            // silently drop results.
            if level.min_key() != keys[0] >> 1 || level.max_key() != keys[keys.len() - 1] >> 1 {
                return Err(InvariantViolation(format!(
                    "level {i} fence min/max ({}, {}) disagree with its keys ({}, {})",
                    level.min_key(),
                    level.max_key(),
                    keys[0] >> 1,
                    keys[keys.len() - 1] >> 1
                )));
            }
            // A level's filter must never produce a false negative: spot
            // check a deterministic sample of resident keys.
            if let Some(filter) = level.filter() {
                for &k in keys.iter().step_by((keys.len() / 64).max(1)) {
                    if !filter.contains(k >> 1) {
                        return Err(InvariantViolation(format!(
                            "level {i} filter reports resident key {} absent",
                            k >> 1
                        )));
                    }
                }
            }
        }

        self.check_arena_invariants()
    }

    /// Check the slab-arena aliasing invariants (a no-op with the arena
    /// disabled): no two live levels' reserved regions overlap, and no live
    /// region aliases a span currently sitting on the arena's free lists —
    /// either would mean a recycled buffer was handed out while a level
    /// still reads through it.
    fn check_arena_invariants(&self) -> Result<(), InvariantViolation> {
        let Some(arena) = &self.arena else {
            return Ok(());
        };
        let live: Vec<(usize, crate::arena::RegionSpan)> = self
            .levels()
            .iter_occupied()
            .flat_map(|(i, level)| level.arena_spans().map(move |s| (i, s)))
            .collect();
        for (a, (i, sa)) in live.iter().enumerate() {
            for (j, sb) in live.iter().skip(a + 1) {
                if sa.overlaps(sb) {
                    return Err(InvariantViolation(format!(
                        "arena regions of levels {i} and {j} overlap \
                         (chunk {:#x}, offsets {} and {})",
                        sa.chunk, sa.offset, sb.offset
                    )));
                }
            }
        }
        for free in arena.free_spans() {
            for (i, sa) in &live {
                if sa.overlaps(&free) {
                    return Err(InvariantViolation(format!(
                        "level {i} reads a recycled arena span \
                         (chunk {:#x}, offset {}, len {})",
                        free.chunk, free.offset, free.len
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::batch::UpdateBatch;
    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn empty_lsm_satisfies_invariants() {
        let lsm = GpuLsm::new(device(), 8).unwrap();
        assert!(lsm.check_invariants().is_ok());
    }

    #[test]
    fn invariants_hold_after_every_batch() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = 32usize;
        let mut lsm = GpuLsm::new(device(), b).unwrap();
        for _ in 0..17 {
            let mut batch = UpdateBatch::new();
            for _ in 0..b {
                let key = rng.gen_range(0..1000u32);
                if rng.gen_bool(0.25) {
                    batch.delete(key);
                } else {
                    batch.insert(key, rng.gen());
                }
            }
            lsm.update(&batch).unwrap();
            lsm.check_invariants().expect("invariants after batch");
        }
    }

    #[test]
    fn invariants_hold_after_cleanup_and_bulk_build() {
        let pairs: Vec<(u32, u32)> = (0..300).map(|k| (k * 3 % 257, k)).collect();
        let mut lsm = GpuLsm::bulk_build(device(), 16, &pairs).unwrap();
        lsm.check_invariants().unwrap();
        lsm.delete(&(0..16).collect::<Vec<u32>>()).unwrap();
        lsm.check_invariants().unwrap();
        lsm.cleanup();
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn violation_display_mentions_invariant() {
        let v = super::InvariantViolation("level 1 is bad".to_string());
        assert!(v.to_string().contains("invariant violated"));
    }
}
