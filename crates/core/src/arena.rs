//! Slab arena for level storage: one growable arena per [`crate::GpuLsm`]
//! holds every level's key and value array as a reserved region of a large
//! pre-allocated chunk, so the steady-state carry chain never touches the
//! system allocator (paper §III-A: the GPU implementation pre-allocates the
//! full structure as one slab and merges write into reserved offsets).
//!
//! ## Shape
//!
//! * [`Arena`] owns a list of raw chunks (`alloc_zeroed`'d `u32` slabs,
//!   default [`DEFAULT_CHUNK_WORDS`] words, grown on demand) plus a
//!   free-list of released regions keyed by exact length.
//! * [`Arena::reserve`] hands out an [`ArenaRegion`]: an owning handle to a
//!   disjoint span of one chunk.  Reservation first consults the free list
//!   — level sizes are always `b·2^i`, so the same size classes recur and a
//!   region released by a consumed level is picked up by the next merge
//!   producing that size (this is the double-buffering: while level `i` is
//!   live in one region, its predecessor's region waits in the free list
//!   for the next level-`i` output).
//! * Dropping an [`ArenaRegion`] returns its span to the free list; chunk
//!   memory is only released when the arena itself drops.
//!
//! Region data accesses are unsynchronized — safety comes from ownership:
//! every span is addressed by exactly one live region handle, so
//! `&mut [u32]` access through the handle is exclusive.  The arena mutex
//! only guards reservation metadata.
//!
//! [`ArenaStats`] (bytes resident, high-water mark, recycle count) is
//! surfaced through [`crate::LsmStats`] / [`crate::ShardedStats`];
//! `validate` checks the no-overlap / no-aliasing invariants via
//! [`Arena::free_spans`] and [`ArenaRegion::span`].

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default chunk size in `u32` words (1 MiB); the first level reservation
/// larger than this gets a dedicated chunk of exactly its size.
/// Overridable per structure via `LSM_ARENA_CHUNK` /
/// [`crate::LsmConfig::arena_chunk_words`].
pub const DEFAULT_CHUNK_WORDS: usize = 1 << 18;

/// One raw slab of `u32` storage.  Zero-initialized at allocation so every
/// region handed out over it is readable from the start.
struct Chunk {
    ptr: NonNull<u32>,
    words: usize,
}

// SAFETY: the chunk is a plain allocation; all access synchronization is
// the region handles' exclusive ownership of disjoint spans.
unsafe impl Send for Chunk {}
unsafe impl Sync for Chunk {}

impl Chunk {
    fn new(words: usize) -> Self {
        debug_assert!(words > 0);
        let layout = Layout::array::<u32>(words).expect("chunk layout overflow");
        // SAFETY: `words > 0`, so the layout is non-zero-sized.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<u32>()) else {
            handle_alloc_error(layout)
        };
        Chunk { ptr, words }
    }

    /// Stable identity of the chunk for span bookkeeping (the allocation
    /// address; unique among live chunks).
    fn id(&self) -> usize {
        self.ptr.as_ptr() as usize
    }
}

impl Drop for Chunk {
    fn drop(&mut self) {
        let layout = Layout::array::<u32>(self.words).expect("chunk layout overflow");
        // SAFETY: allocated in `Chunk::new` with this exact layout.
        unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
    }
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("id", &self.id())
            .field("words", &self.words)
            .finish()
    }
}

/// The identity of one reserved or free span: which chunk, where, how long
/// (in `u32` words).  Used by the `validate` invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpan {
    /// Identity of the owning chunk (opaque; equal iff same chunk).
    pub chunk: usize,
    /// Word offset of the span within its chunk.
    pub offset: usize,
    /// Span length in words.
    pub len: usize,
}

impl RegionSpan {
    /// Whether two spans share at least one word of the same chunk.
    pub fn overlaps(&self, other: &RegionSpan) -> bool {
        self.chunk == other.chunk
            && self.len > 0
            && other.len > 0
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }
}

/// A point-in-time snapshot of one arena's occupancy counters, embedded in
/// [`crate::LsmStats`] and aggregated by [`crate::ShardedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Bytes currently held by live regions.
    pub resident_bytes: usize,
    /// Largest `resident_bytes` ever observed.
    pub high_water_bytes: usize,
    /// Bytes sitting in the free list, ready for reuse.
    pub free_bytes: usize,
    /// Total bytes of allocated chunks (resident + free + bump headroom).
    pub chunk_bytes: usize,
    /// Number of chunks allocated.
    pub chunks: usize,
    /// Lifetime count of regions handed out.
    pub reserved_regions: u64,
    /// Lifetime count of reservations served from the free list instead of
    /// fresh chunk space — the steady-state carry chain recycles every
    /// region, so this tracks `reserved_regions` once warm.
    pub recycled_regions: u64,
}

impl ArenaStats {
    /// Element-wise sum (used by the sharded aggregation).
    pub(crate) fn add(&mut self, other: &ArenaStats) {
        self.resident_bytes += other.resident_bytes;
        self.high_water_bytes += other.high_water_bytes;
        self.free_bytes += other.free_bytes;
        self.chunk_bytes += other.chunk_bytes;
        self.chunks += other.chunks;
        self.reserved_regions += other.reserved_regions;
        self.recycled_regions += other.recycled_regions;
    }
}

/// Reservation metadata, guarded by the arena mutex.
#[derive(Debug, Default)]
struct ArenaInner {
    chunks: Vec<Arc<Chunk>>,
    /// Words used in the last chunk (the bump cursor).
    tail_used: usize,
    /// Released spans keyed by exact length: level sizes are `b·2^i`, so
    /// exact-size matching recycles perfectly and never splits spans.
    free: HashMap<usize, Vec<(Arc<Chunk>, usize)>>,
    resident_words: usize,
    high_water_words: usize,
    free_words: usize,
    reserved_regions: u64,
    recycled_regions: u64,
}

/// A growable slab arena handing out exact-size regions of `u32` storage.
#[derive(Debug)]
pub struct Arena {
    inner: Mutex<ArenaInner>,
    min_chunk_words: usize,
}

impl Arena {
    /// Create an empty arena whose chunks hold at least `min_chunk_words`
    /// words (0 falls back to [`DEFAULT_CHUNK_WORDS`]).  No memory is
    /// allocated until the first reservation.
    pub fn new(min_chunk_words: usize) -> Arc<Self> {
        Arc::new(Arena {
            inner: Mutex::new(ArenaInner::default()),
            min_chunk_words: if min_chunk_words == 0 {
                DEFAULT_CHUNK_WORDS
            } else {
                min_chunk_words
            },
        })
    }

    /// Lock the metadata, tolerating poison: the metadata is a free list
    /// plus counters, consistent after every individual mutation, so a
    /// panicking thread elsewhere must not wedge reservation (mirrors the
    /// admission path's panic-safety policy).
    fn lock(&self) -> MutexGuard<'_, ArenaInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Reserve a region of exactly `len` words, recycling a free span of
    /// the same length when one exists, bumping the tail chunk otherwise,
    /// and growing the arena by a fresh chunk when the tail is full.
    pub fn reserve(self: &Arc<Self>, len: usize) -> ArenaRegion {
        if len == 0 {
            return ArenaRegion {
                arena: Arc::clone(self),
                chunk: None,
                offset: 0,
                len: 0,
            };
        }
        let mut inner = self.lock();
        inner.reserved_regions += 1;
        let (chunk, offset) = match inner.free.get_mut(&len).and_then(Vec::pop) {
            Some((chunk, offset)) => {
                inner.recycled_regions += 1;
                inner.free_words -= len;
                (chunk, offset)
            }
            None => {
                let fits_tail = inner
                    .chunks
                    .last()
                    .is_some_and(|c| c.words - inner.tail_used >= len);
                if !fits_tail {
                    // The bump remainder of the old tail is abandoned (it is
                    // smaller than any reservation that will recur at this
                    // point); chunk sizes are maxed with the request so a
                    // giant level gets a dedicated chunk.
                    inner
                        .chunks
                        .push(Arc::new(Chunk::new(len.max(self.min_chunk_words))));
                    inner.tail_used = 0;
                }
                let offset = inner.tail_used;
                inner.tail_used += len;
                (Arc::clone(inner.chunks.last().expect("tail chunk")), offset)
            }
        };
        inner.resident_words += len;
        inner.high_water_words = inner.high_water_words.max(inner.resident_words);
        drop(inner);
        ArenaRegion {
            arena: Arc::clone(self),
            chunk: Some(chunk),
            offset,
            len,
        }
    }

    /// Return a span to the free list (region drop).
    fn release(&self, chunk: Arc<Chunk>, offset: usize, len: usize) {
        let mut inner = self.lock();
        inner.resident_words -= len;
        inner.free_words += len;
        inner.free.entry(len).or_default().push((chunk, offset));
    }

    /// A snapshot of the occupancy counters.
    pub fn stats(&self) -> ArenaStats {
        let inner = self.lock();
        const W: usize = std::mem::size_of::<u32>();
        ArenaStats {
            resident_bytes: inner.resident_words * W,
            high_water_bytes: inner.high_water_words * W,
            free_bytes: inner.free_words * W,
            chunk_bytes: inner.chunks.iter().map(|c| c.words * W).sum(),
            chunks: inner.chunks.len(),
            reserved_regions: inner.reserved_regions,
            recycled_regions: inner.recycled_regions,
        }
    }

    /// The spans currently sitting in the free list (for the validate
    /// invariant: no live level may alias a recycled span).
    pub fn free_spans(&self) -> Vec<RegionSpan> {
        let inner = self.lock();
        inner
            .free
            .iter()
            .flat_map(|(&len, spans)| {
                spans.iter().map(move |(chunk, offset)| RegionSpan {
                    chunk: chunk.id(),
                    offset: *offset,
                    len,
                })
            })
            .collect()
    }
}

/// An owning handle to a reserved span of arena storage.  Exactly one live
/// handle addresses any span, so `&mut` access through it is exclusive;
/// dropping the handle recycles the span.
pub struct ArenaRegion {
    arena: Arc<Arena>,
    /// `None` only for zero-length regions.
    chunk: Option<Arc<Chunk>>,
    offset: usize,
    len: usize,
}

impl ArenaRegion {
    /// Length of the region in words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The region's contents.
    pub fn as_slice(&self) -> &[u32] {
        match &self.chunk {
            // SAFETY: the span [offset, offset + len) lies inside the
            // zero-initialized chunk allocation and no other handle
            // addresses it; `&self` keeps writes out for the borrow.
            Some(chunk) => unsafe {
                std::slice::from_raw_parts(chunk.ptr.as_ptr().add(self.offset), self.len)
            },
            None => &[],
        }
    }

    /// The region's contents, writable.
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        match &self.chunk {
            // SAFETY: as in `as_slice`, plus `&mut self` makes this handle
            // — the span's only addressor — exclusively borrowed.
            Some(chunk) => unsafe {
                std::slice::from_raw_parts_mut(chunk.ptr.as_ptr().add(self.offset), self.len)
            },
            None => &mut [],
        }
    }

    /// The span this region occupies (`None` for zero-length regions).
    pub fn span(&self) -> Option<RegionSpan> {
        self.chunk.as_ref().map(|chunk| RegionSpan {
            chunk: chunk.id(),
            offset: self.offset,
            len: self.len,
        })
    }

    /// The arena this region belongs to.
    pub fn arena(&self) -> &Arc<Arena> {
        &self.arena
    }
}

// SAFETY: the handle owns its span exclusively; the underlying chunk and
// arena are themselves Send + Sync.
unsafe impl Send for ArenaRegion {}
unsafe impl Sync for ArenaRegion {}

impl Drop for ArenaRegion {
    fn drop(&mut self) {
        if let Some(chunk) = self.chunk.take() {
            self.arena.release(chunk, self.offset, self.len);
        }
    }
}

impl std::fmt::Debug for ArenaRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaRegion")
            .field("span", &self.span())
            .finish()
    }
}

/// Backing storage of one level array: a plain vector (bulk builds,
/// recovery, arena-off operation) or an arena region (carry-chain outputs).
/// Derefs to `&[u32]` either way, so every query path is storage-agnostic.
#[derive(Debug)]
pub(crate) enum Storage {
    /// Heap-owned storage.
    Owned(Vec<u32>),
    /// A reserved span of the structure's slab arena.
    Arena(ArenaRegion),
}

impl Default for Storage {
    fn default() -> Self {
        Storage::Owned(Vec::new())
    }
}

impl Clone for Storage {
    /// Cloning deep-copies to owned storage: a clone must not alias the
    /// original's arena span (exactly one handle per span), and cloned
    /// structures (snapshots, shard splits) are long-lived anyway.
    fn clone(&self) -> Self {
        Storage::Owned(self.as_slice().to_vec())
    }
}

impl Storage {
    /// The stored words.
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            Storage::Owned(v) => v,
            Storage::Arena(r) => r.as_slice(),
        }
    }

    /// Convert into an owned vector (copies when arena-backed; the cold
    /// paths — cleanup, recovery snapshots — are the only consumers).
    pub(crate) fn into_vec(self) -> Vec<u32> {
        match self {
            Storage::Owned(v) => v,
            Storage::Arena(r) => r.as_slice().to_vec(),
        }
    }

    /// The arena span backing this storage, if any.
    pub(crate) fn arena_span(&self) -> Option<RegionSpan> {
        match self {
            Storage::Owned(_) => None,
            Storage::Arena(r) => r.span(),
        }
    }
}

impl From<Vec<u32>> for Storage {
    fn from(v: Vec<u32>) -> Self {
        Storage::Owned(v)
    }
}

impl From<ArenaRegion> for Storage {
    fn from(r: ArenaRegion) -> Self {
        Storage::Arena(r)
    }
}

impl std::ops::Deref for Storage {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_bump_allocates_disjoint_spans() {
        let arena = Arena::new(64);
        let mut a = arena.reserve(16);
        let mut b = arena.reserve(16);
        a.as_mut_slice().fill(1);
        b.as_mut_slice().fill(2);
        assert!(a.as_slice().iter().all(|&w| w == 1));
        assert!(b.as_slice().iter().all(|&w| w == 2));
        assert!(!a.span().unwrap().overlaps(&b.span().unwrap()));
        let stats = arena.stats();
        assert_eq!(stats.resident_bytes, 32 * 4);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.reserved_regions, 2);
        assert_eq!(stats.recycled_regions, 0);
    }

    #[test]
    fn regions_are_zeroed_on_first_use() {
        let arena = Arena::new(8);
        let r = arena.reserve(8);
        assert_eq!(r.as_slice(), &[0u32; 8]);
    }

    #[test]
    fn drop_recycles_the_exact_size_class() {
        let arena = Arena::new(1024);
        let span = {
            let r = arena.reserve(32);
            r.span().unwrap()
        };
        assert_eq!(arena.free_spans(), vec![span]);
        // Same-size reservation reuses the span; a different size does not.
        let other = arena.reserve(16);
        assert_ne!(other.span().unwrap(), span);
        let reused = arena.reserve(32);
        assert_eq!(reused.span().unwrap(), span);
        let stats = arena.stats();
        assert_eq!(stats.recycled_regions, 1);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.high_water_bytes, (32 + 16) * 4);
    }

    #[test]
    fn arena_grows_and_oversized_requests_get_dedicated_chunks() {
        let arena = Arena::new(16);
        let _a = arena.reserve(12);
        let _b = arena.reserve(12); // does not fit the tail remainder
        let _c = arena.reserve(100); // larger than min chunk
        let stats = arena.stats();
        assert_eq!(stats.chunks, 3);
        assert_eq!(stats.chunk_bytes, (16 + 16 + 100) * 4);
        assert_eq!(stats.resident_bytes, (12 + 12 + 100) * 4);
    }

    #[test]
    fn zero_length_regions_are_inert() {
        let arena = Arena::new(16);
        let mut r = arena.reserve(0);
        assert!(r.is_empty());
        assert!(r.as_slice().is_empty());
        assert!(r.as_mut_slice().is_empty());
        assert_eq!(r.span(), None);
        drop(r);
        let stats = arena.stats();
        assert_eq!(stats.chunks, 0);
        assert_eq!(stats.free_bytes, 0);
    }

    #[test]
    fn storage_clone_deep_copies_out_of_the_arena() {
        let arena = Arena::new(16);
        let mut r = arena.reserve(4);
        r.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
        let storage = Storage::from(r);
        let clone = storage.clone();
        assert!(matches!(clone, Storage::Owned(_)));
        assert_eq!(clone.as_slice(), storage.as_slice());
        assert_eq!(storage.arena_span().map(|s| s.len), Some(4));
        assert_eq!(clone.arena_span(), None);
        assert_eq!(storage.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn span_overlap_is_chunk_scoped() {
        let a = RegionSpan {
            chunk: 1,
            offset: 0,
            len: 8,
        };
        let b = RegionSpan {
            chunk: 1,
            offset: 8,
            len: 8,
        };
        let c = RegionSpan {
            chunk: 1,
            offset: 4,
            len: 8,
        };
        let d = RegionSpan {
            chunk: 2,
            offset: 4,
            len: 8,
        };
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(!c.overlaps(&d));
    }

    #[test]
    fn steady_state_reservation_cycle_stops_growing() {
        // Simulate the carry chain: alternating reserve/release of the same
        // power-of-two size classes must stop allocating chunks once every
        // class has a free span.
        let arena = Arena::new(256);
        for _ in 0..3 {
            for class in [16usize, 32, 64] {
                let _keys = arena.reserve(class);
                let _vals = arena.reserve(class);
            }
        }
        let stats = arena.stats();
        assert_eq!(stats.chunks, 1);
        // Warm-up reserves each (class, keys/vals) pair once; the remaining
        // two rounds recycle.
        assert_eq!(stats.reserved_regions, 18);
        assert_eq!(stats.recycled_regions, 12);
        assert_eq!(stats.resident_bytes, 0);
    }
}
