//! Typed configuration for the LSM stack.
//!
//! [`LsmConfig`] is the explicit, programmatic way to set every knob that
//! was historically an `LSM_*` environment variable, plus the thresholds
//! for online shard rebalancing ([`RebalanceConfig`]).  The environment
//! variables still work — [`LsmConfig::from_env`] reads them into a config,
//! and the per-module env fallbacks remain in place for fields left unset —
//! but they are now the *fallback* layer: an explicit config always wins.
//!
//! Scope of each knob:
//!
//! * `bulk_lookup_frac`, admission knobs and `rebalance` are **per
//!   instance**: they only affect the structure constructed with this
//!   config.
//! * `bloom_bits` and `par_cutoff` are **process-wide**: the Bloom filter
//!   sizing and the parallel-dispatch cutoff live in global calibration
//!   state shared by every LSM in the process.  Constructing a structure
//!   with these fields set installs the corresponding global override
//!   (fields left `None` touch nothing).

use crate::admission::AdmissionConfig;

/// Thresholds governing online shard split/merge (see
/// [`crate::ShardedLsm::maybe_rebalance`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Master switch: when `false` the service never rebalances on its own
    /// (explicit [`crate::ShardedLsm::split_shard`] /
    /// [`crate::ShardedLsm::merge_shards`] calls still work).
    pub enabled: bool,
    /// Minimum update operations observed across all shards since the last
    /// evaluation before a rebalance decision is considered at all; below
    /// this the traffic sample is too small to act on.
    pub min_ops: u64,
    /// A shard is *hot* — and gets split — when its share of the update
    /// operations since the last evaluation exceeds this fraction.
    pub hot_fraction: f64,
    /// An adjacent shard pair is *cold* — and gets merged — when its
    /// combined share of recent update operations is below this fraction.
    pub cold_fraction: f64,
    /// Never split beyond this many shards.
    pub max_shards: usize,
    /// Never merge below this many shards.
    pub min_shards: usize,
    /// Evaluate the hot/cold thresholds every this many update batches.
    pub check_interval: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            min_ops: 4096,
            hot_fraction: 0.5,
            cold_fraction: 0.05,
            max_shards: 64,
            min_shards: 1,
            check_interval: 16,
        }
    }
}

/// Typed configuration for [`crate::GpuLsm`], [`crate::ShardedLsm`] and
/// [`crate::AdmittedLsm`].  `None` fields fall back to the corresponding
/// `LSM_*` environment variable (if set) and then to the built-in default;
/// see the crate README's knob table for the mapping.
///
/// ```
/// use gpu_lsm::{LsmConfig, RebalanceConfig};
///
/// let config = LsmConfig::default()
///     .bulk_lookup_frac(0.25)
///     .admit_queue_capacity(32)
///     .rebalance(RebalanceConfig {
///         enabled: true,
///         ..RebalanceConfig::default()
///     });
/// assert_eq!(config.admit_queue_capacity, Some(32));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LsmConfig {
    /// Bloom filter bits per key (`LSM_BLOOM_BITS`); 0 disables filters.
    /// **Process-wide** — installs a global override when set.
    pub bloom_bits: Option<u32>,
    /// Sequential cutoff for the worker pool (`LSM_PAR_CUTOFF`); inputs
    /// shorter than this run sequentially.  **Process-wide**.
    pub par_cutoff: Option<usize>,
    /// Fraction of resident elements above which a lookup batch dispatches
    /// to the bulk sorted path (`LSM_BULK_LOOKUP_FRAC`).  Per instance.
    pub bulk_lookup_frac: Option<f64>,
    /// Admission queue capacity per shard (`LSM_ADMIT_QUEUE`).
    pub admit_queue_capacity: Option<usize>,
    /// Whether the admission applier coalesces queued batches
    /// (`LSM_ADMIT_COALESCE`; 0 disables).
    pub admit_coalesce: Option<bool>,
    /// Online shard split/merge thresholds.  Per instance; no env
    /// equivalent (rebalancing is opt-in via explicit config).
    pub rebalance: RebalanceConfig,
}

impl LsmConfig {
    /// Read every `LSM_*` knob this config covers from the environment.
    /// Unset or unparsable variables leave the field `None`.  This is the
    /// documented fallback layer: prefer explicit configs in new code.
    ///
    /// | field | variable |
    /// |---|---|
    /// | `bloom_bits` | `LSM_BLOOM_BITS` |
    /// | `par_cutoff` | `LSM_PAR_CUTOFF` |
    /// | `bulk_lookup_frac` | `LSM_BULK_LOOKUP_FRAC` |
    /// | `admit_queue_capacity` | `LSM_ADMIT_QUEUE` |
    /// | `admit_coalesce` | `LSM_ADMIT_COALESCE` (0 = off) |
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(var: &str) -> Option<T> {
            std::env::var(var).ok()?.trim().parse().ok()
        }
        LsmConfig {
            bloom_bits: parse("LSM_BLOOM_BITS"),
            par_cutoff: parse("LSM_PAR_CUTOFF"),
            bulk_lookup_frac: parse::<f64>("LSM_BULK_LOOKUP_FRAC").filter(|f| *f > 0.0),
            admit_queue_capacity: parse::<usize>("LSM_ADMIT_QUEUE").map(|c| c.max(1)),
            admit_coalesce: parse::<u32>("LSM_ADMIT_COALESCE").map(|v| v != 0),
            rebalance: RebalanceConfig::default(),
        }
    }

    /// Set the Bloom filter bits per key (process-wide; 0 disables).
    pub fn bloom_bits(mut self, bits: u32) -> Self {
        self.bloom_bits = Some(bits);
        self
    }

    /// Set the worker-pool sequential cutoff (process-wide).
    pub fn par_cutoff(mut self, cutoff: usize) -> Self {
        self.par_cutoff = Some(cutoff);
        self
    }

    /// Set the bulk-lookup dispatch fraction for this instance.
    pub fn bulk_lookup_frac(mut self, frac: f64) -> Self {
        self.bulk_lookup_frac = Some(frac);
        self
    }

    /// Set the per-shard admission queue capacity (min 1).
    pub fn admit_queue_capacity(mut self, capacity: usize) -> Self {
        self.admit_queue_capacity = Some(capacity.max(1));
        self
    }

    /// Enable or disable admission coalescing.
    pub fn admit_coalesce(mut self, coalesce: bool) -> Self {
        self.admit_coalesce = Some(coalesce);
        self
    }

    /// Set the rebalance thresholds.
    pub fn rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Install the process-wide overrides this config carries (`bloom_bits`
    /// and `par_cutoff`); fields left `None` change nothing.  Called by the
    /// `with_config` constructors; safe to call directly when only the
    /// global knobs are wanted.
    pub fn apply_process_overrides(&self) {
        if let Some(bits) = self.bloom_bits {
            gpu_primitives::filter::set_bloom_bits_override(Some(bits));
        }
        if let Some(cutoff) = self.par_cutoff {
            rayon::set_sequential_cutoff(cutoff);
        }
    }

    /// The admission configuration this config implies: explicit fields
    /// win, unset fields fall back to the env-derived defaults.
    pub fn admission(&self) -> AdmissionConfig {
        let mut ac = AdmissionConfig::default();
        if let Some(capacity) = self.admit_queue_capacity {
            ac.queue_capacity = capacity;
        }
        if let Some(coalesce) = self.admit_coalesce {
            ac.coalesce = coalesce;
        }
        ac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_all_fallback() {
        let c = LsmConfig::default();
        assert_eq!(c.bloom_bits, None);
        assert_eq!(c.par_cutoff, None);
        assert_eq!(c.bulk_lookup_frac, None);
        assert_eq!(c.admit_queue_capacity, None);
        assert_eq!(c.admit_coalesce, None);
        assert!(!c.rebalance.enabled);
        // A default config installs no process overrides and its admission
        // view matches the env-derived default.
        assert_eq!(c.admission(), AdmissionConfig::default());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = LsmConfig::default()
            .bloom_bits(8)
            .par_cutoff(1)
            .bulk_lookup_frac(0.5)
            .admit_queue_capacity(0) // clamped to 1
            .admit_coalesce(false)
            .rebalance(RebalanceConfig {
                enabled: true,
                max_shards: 16,
                ..RebalanceConfig::default()
            });
        assert_eq!(c.bloom_bits, Some(8));
        assert_eq!(c.par_cutoff, Some(1));
        assert_eq!(c.bulk_lookup_frac, Some(0.5));
        assert_eq!(c.admit_queue_capacity, Some(1));
        assert_eq!(c.admit_coalesce, Some(false));
        assert!(c.rebalance.enabled);
        assert_eq!(c.rebalance.max_shards, 16);
        let ac = c.admission();
        assert_eq!(ac.queue_capacity, 1);
        assert!(!ac.coalesce);
    }
}
