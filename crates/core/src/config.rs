//! Typed configuration for the LSM stack.
//!
//! [`LsmConfig`] is the explicit, programmatic way to set every knob that
//! was historically an `LSM_*` environment variable, plus the thresholds
//! for online shard rebalancing ([`RebalanceConfig`]).  The environment
//! variables still work — [`LsmConfig::from_env`] reads them into a config,
//! and the per-module env fallbacks remain in place for fields left unset —
//! but they are now the *fallback* layer: an explicit config always wins.
//!
//! Scope of each knob:
//!
//! * `bulk_lookup_frac`, admission knobs and `rebalance` are **per
//!   instance**: they only affect the structure constructed with this
//!   config.
//! * `bloom_bits` and `par_cutoff` are **process-wide**: the Bloom filter
//!   sizing and the parallel-dispatch cutoff live in global calibration
//!   state shared by every LSM in the process.  Constructing a structure
//!   with these fields set installs the corresponding global override
//!   (fields left `None` touch nothing).

use std::time::Duration;

use crate::admission::AdmissionConfig;
use crate::error::{LsmError, Result};
use crate::wal::{DegradeMode, DurabilityConfig, RetryPolicy};

/// Thresholds governing online shard split/merge (see
/// [`crate::ShardedLsm::maybe_rebalance`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Master switch: when `false` the service never rebalances on its own
    /// (explicit [`crate::ShardedLsm::split_shard`] /
    /// [`crate::ShardedLsm::merge_shards`] calls still work).
    pub enabled: bool,
    /// Minimum update operations observed across all shards since the last
    /// evaluation before a rebalance decision is considered at all; below
    /// this the traffic sample is too small to act on.
    pub min_ops: u64,
    /// A shard is *hot* — and gets split — when its share of the update
    /// operations since the last evaluation exceeds this fraction.
    pub hot_fraction: f64,
    /// An adjacent shard pair is *cold* — and gets merged — when its
    /// combined share of recent update operations is below this fraction.
    pub cold_fraction: f64,
    /// Never split beyond this many shards.
    pub max_shards: usize,
    /// Never merge below this many shards.
    pub min_shards: usize,
    /// Evaluate the hot/cold thresholds every this many update batches.
    pub check_interval: u64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: false,
            min_ops: 4096,
            hot_fraction: 0.5,
            cold_fraction: 0.05,
            max_shards: 64,
            min_shards: 1,
            check_interval: 16,
        }
    }
}

/// Typed configuration for [`crate::GpuLsm`], [`crate::ShardedLsm`] and
/// [`crate::AdmittedLsm`].  `None` fields fall back to the corresponding
/// `LSM_*` environment variable (if set) and then to the built-in default;
/// see the crate README's knob table for the mapping.
///
/// ```
/// use gpu_lsm::{LsmConfig, RebalanceConfig};
///
/// let config = LsmConfig::default()
///     .bulk_lookup_frac(0.25)
///     .admit_queue_capacity(32)
///     .rebalance(RebalanceConfig {
///         enabled: true,
///         ..RebalanceConfig::default()
///     });
/// assert_eq!(config.admit_queue_capacity, Some(32));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LsmConfig {
    /// Bloom filter bits per key (`LSM_BLOOM_BITS`); 0 disables filters.
    /// **Process-wide** — installs a global override when set.
    pub bloom_bits: Option<u32>,
    /// Sequential cutoff for the worker pool (`LSM_PAR_CUTOFF`); inputs
    /// shorter than this run sequentially.  **Process-wide**.
    pub par_cutoff: Option<usize>,
    /// Fraction of resident elements above which a lookup batch dispatches
    /// to the bulk sorted path (`LSM_BULK_LOOKUP_FRAC`).  Per instance.
    pub bulk_lookup_frac: Option<f64>,
    /// Whether level storage lives in the per-structure slab arena
    /// (`LSM_ARENA`; 0 disables).  Per instance; default on.
    pub arena: Option<bool>,
    /// Minimum arena chunk size in `u32` words (`LSM_ARENA_CHUNK`, ≥ 1).
    /// Per instance; default [`crate::arena::DEFAULT_CHUNK_WORDS`].
    pub arena_chunk_words: Option<usize>,
    /// Group size of the warp-style bulk-get sweep (`LSM_BULK_GROUP`, ≥ 1).
    /// Per instance; default 64, the paper's warp width times two.
    pub bulk_group: Option<usize>,
    /// Admission queue capacity per shard (`LSM_ADMIT_QUEUE`).
    pub admit_queue_capacity: Option<usize>,
    /// Whether the admission applier coalesces queued batches
    /// (`LSM_ADMIT_COALESCE`; 0 disables).
    pub admit_coalesce: Option<bool>,
    /// Bounded backpressure: how long `submit` may block waiting for
    /// admission queue space before failing with
    /// [`LsmError::SubmitTimedOut`] (`LSM_SUBMIT_TIMEOUT_MS`).  `None`
    /// falls back to the env knob and then to waiting forever.
    pub submit_timeout: Option<Duration>,
    /// How long `flush` may block waiting for the queues to drain before
    /// failing with [`LsmError::FlushTimedOut`] (`LSM_FLUSH_TIMEOUT_MS`).
    /// `None` falls back to the env knob and then to waiting forever.
    pub flush_timeout: Option<Duration>,
    /// Online shard split/merge thresholds.  Per instance; no env
    /// equivalent (rebalancing is opt-in via explicit config).
    pub rebalance: RebalanceConfig,
    /// Durability: write-ahead logging and crash-consistent snapshots
    /// (`LSM_WAL_DIR` / `LSM_WAL_FSYNC`).  `None` (the default) keeps the
    /// structure purely in-memory — behavior and benchmarks are then
    /// byte-identical to builds without this field.  Honoured by
    /// [`crate::AdmittedLsm::open_durable`], which also runs recovery; the
    /// in-memory constructors ignore it.
    pub durability: Option<DurabilityConfig>,
}

impl LsmConfig {
    /// Read every `LSM_*` knob this config covers from the environment.
    /// Unset variables leave the field `None`; a variable that is set but
    /// does not parse (or parses to a nonsensical setting) is an
    /// [`LsmError::InvalidEnvValue`] — a typo'd `LSM_ADMIT_QUEUE=4o96`
    /// must not silently change behavior.  This is the documented fallback
    /// layer: prefer explicit configs in new code.
    ///
    /// | field | variable |
    /// |---|---|
    /// | `bloom_bits` | `LSM_BLOOM_BITS` |
    /// | `par_cutoff` | `LSM_PAR_CUTOFF` |
    /// | `bulk_lookup_frac` | `LSM_BULK_LOOKUP_FRAC` (must be > 0) |
    /// | `arena` | `LSM_ARENA` (0 = off) |
    /// | `arena_chunk_words` | `LSM_ARENA_CHUNK` (words, ≥ 1) |
    /// | `bulk_group` | `LSM_BULK_GROUP` (queries per group, ≥ 1) |
    /// | `admit_queue_capacity` | `LSM_ADMIT_QUEUE` (must be ≥ 1) |
    /// | `admit_coalesce` | `LSM_ADMIT_COALESCE` (0 = off) |
    /// | `submit_timeout` | `LSM_SUBMIT_TIMEOUT_MS` (ms, ≥ 1) |
    /// | `flush_timeout` | `LSM_FLUSH_TIMEOUT_MS` (ms, ≥ 1) |
    /// | `durability` | `LSM_WAL_DIR` + `LSM_WAL_FSYNC` (records/fsync, ≥ 1) |
    /// | `durability.retry` | `LSM_WAL_RETRIES` (`N` or `N:B`, attempts ≥ 1, backoff µs) |
    /// | `durability.degrade` | `LSM_WAL_DEGRADE` (`failstop` \| `volatile`) |
    pub fn from_env() -> Result<Self> {
        Self::from_env_lookup(|var| match std::env::var(var) {
            Ok(value) => Ok(Some(value)),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(raw)) => Err(LsmError::InvalidEnvValue {
                var: var.to_string(),
                value: raw.to_string_lossy().into_owned(),
                reason: "not valid unicode".to_string(),
            }),
        })
    }

    /// [`LsmConfig::from_env`] over an arbitrary variable source, so the
    /// parsing and rejection rules are testable without mutating the
    /// process environment.
    pub(crate) fn from_env_lookup(lookup: impl Fn(&str) -> Result<Option<String>>) -> Result<Self> {
        fn parse<T: std::str::FromStr>(var: &str, raw: Option<String>) -> Result<Option<T>>
        where
            T::Err: std::fmt::Display,
        {
            let Some(raw) = raw else { return Ok(None) };
            let trimmed = raw.trim();
            trimmed
                .parse()
                .map(Some)
                .map_err(|e: T::Err| LsmError::InvalidEnvValue {
                    var: var.to_string(),
                    value: trimmed.to_string(),
                    reason: e.to_string(),
                })
        }
        fn reject<T>(var: &str, value: T, reason: &str) -> LsmError
        where
            T: std::fmt::Display,
        {
            LsmError::InvalidEnvValue {
                var: var.to_string(),
                value: value.to_string(),
                reason: reason.to_string(),
            }
        }

        let bulk_lookup_frac =
            parse::<f64>("LSM_BULK_LOOKUP_FRAC", lookup("LSM_BULK_LOOKUP_FRAC")?)?;
        if let Some(f) = bulk_lookup_frac {
            if !f.is_finite() || f <= 0.0 {
                return Err(reject(
                    "LSM_BULK_LOOKUP_FRAC",
                    f,
                    "must be a finite fraction > 0",
                ));
            }
        }
        let arena_chunk_words = parse::<usize>("LSM_ARENA_CHUNK", lookup("LSM_ARENA_CHUNK")?)?;
        if arena_chunk_words == Some(0) {
            return Err(reject(
                "LSM_ARENA_CHUNK",
                0,
                "chunk size must be at least 1 word (unset the variable for the default)",
            ));
        }
        let bulk_group = parse::<usize>("LSM_BULK_GROUP", lookup("LSM_BULK_GROUP")?)?;
        if bulk_group == Some(0) {
            return Err(reject(
                "LSM_BULK_GROUP",
                0,
                "group size must be at least 1 query",
            ));
        }
        let admit_queue_capacity = parse::<usize>("LSM_ADMIT_QUEUE", lookup("LSM_ADMIT_QUEUE")?)?;
        if admit_queue_capacity == Some(0) {
            return Err(reject(
                "LSM_ADMIT_QUEUE",
                0,
                "queue capacity must be at least 1",
            ));
        }
        let submit_timeout =
            parse::<u64>("LSM_SUBMIT_TIMEOUT_MS", lookup("LSM_SUBMIT_TIMEOUT_MS")?)?;
        if submit_timeout == Some(0) {
            return Err(reject(
                "LSM_SUBMIT_TIMEOUT_MS",
                0,
                "submit timeout must be at least 1 ms (unset the variable to wait forever)",
            ));
        }
        let flush_timeout = parse::<u64>("LSM_FLUSH_TIMEOUT_MS", lookup("LSM_FLUSH_TIMEOUT_MS")?)?;
        if flush_timeout == Some(0) {
            return Err(reject(
                "LSM_FLUSH_TIMEOUT_MS",
                0,
                "flush timeout must be at least 1 ms (unset the variable to wait forever)",
            ));
        }
        let fsync_interval = parse::<usize>("LSM_WAL_FSYNC", lookup("LSM_WAL_FSYNC")?)?;
        if fsync_interval == Some(0) {
            return Err(reject(
                "LSM_WAL_FSYNC",
                0,
                "fsync interval must be at least 1 record",
            ));
        }
        // `N` (attempts, default backoff) or `N:B` (attempts : backoff µs).
        let retry = match lookup("LSM_WAL_RETRIES")? {
            None => None,
            Some(raw) => {
                let trimmed = raw.trim();
                let (attempts_str, backoff_str) = match trimmed.split_once(':') {
                    Some((a, b)) => (a.trim(), Some(b.trim())),
                    None => (trimmed, None),
                };
                let attempts = attempts_str.parse::<u32>().map_err(|e| {
                    reject(
                        "LSM_WAL_RETRIES",
                        trimmed,
                        &format!("attempts: {e} (expected `N` or `N:backoff_us`)"),
                    )
                })?;
                if attempts == 0 {
                    return Err(reject(
                        "LSM_WAL_RETRIES",
                        trimmed,
                        "must allow at least 1 attempt",
                    ));
                }
                let backoff = match backoff_str {
                    Some(b) => Duration::from_micros(b.parse::<u64>().map_err(|e| {
                        reject(
                            "LSM_WAL_RETRIES",
                            trimmed,
                            &format!("backoff: {e} (expected `N` or `N:backoff_us`)"),
                        )
                    })?),
                    None => RetryPolicy::default().backoff,
                };
                Some(RetryPolicy::new(attempts, backoff))
            }
        };
        let degrade = match lookup("LSM_WAL_DEGRADE")? {
            None => None,
            Some(raw) => match raw.trim().to_ascii_lowercase().as_str() {
                "failstop" => Some(DegradeMode::FailStop),
                "volatile" => Some(DegradeMode::DegradeToVolatile),
                other => {
                    return Err(reject(
                        "LSM_WAL_DEGRADE",
                        other,
                        "expected \"failstop\" or \"volatile\"",
                    ))
                }
            },
        };
        let durability = lookup("LSM_WAL_DIR")?.map(|dir| {
            let mut d = DurabilityConfig::new(dir.trim());
            if let Some(records) = fsync_interval {
                d = d.fsync_interval(records);
            }
            if let Some(retry) = retry {
                d = d.retry(retry);
            }
            if let Some(degrade) = degrade {
                d = d.degrade(degrade);
            }
            d
        });
        Ok(LsmConfig {
            bloom_bits: parse("LSM_BLOOM_BITS", lookup("LSM_BLOOM_BITS")?)?,
            par_cutoff: parse("LSM_PAR_CUTOFF", lookup("LSM_PAR_CUTOFF")?)?,
            bulk_lookup_frac,
            arena: parse::<u32>("LSM_ARENA", lookup("LSM_ARENA")?)?.map(|v| v != 0),
            arena_chunk_words,
            bulk_group,
            admit_queue_capacity,
            admit_coalesce: parse::<u32>("LSM_ADMIT_COALESCE", lookup("LSM_ADMIT_COALESCE")?)?
                .map(|v| v != 0),
            submit_timeout: submit_timeout.map(Duration::from_millis),
            flush_timeout: flush_timeout.map(Duration::from_millis),
            rebalance: RebalanceConfig::default(),
            durability,
        })
    }

    /// Set the Bloom filter bits per key (process-wide; 0 disables).
    pub fn bloom_bits(mut self, bits: u32) -> Self {
        self.bloom_bits = Some(bits);
        self
    }

    /// Set the worker-pool sequential cutoff (process-wide).
    pub fn par_cutoff(mut self, cutoff: usize) -> Self {
        self.par_cutoff = Some(cutoff);
        self
    }

    /// Set the bulk-lookup dispatch fraction for this instance.
    pub fn bulk_lookup_frac(mut self, frac: f64) -> Self {
        self.bulk_lookup_frac = Some(frac);
        self
    }

    /// Enable or disable slab-arena level storage for this instance.
    pub fn arena(mut self, enabled: bool) -> Self {
        self.arena = Some(enabled);
        self
    }

    /// Set the minimum arena chunk size in `u32` words (min 1).
    pub fn arena_chunk_words(mut self, words: usize) -> Self {
        self.arena_chunk_words = Some(words.max(1));
        self
    }

    /// Set the warp-style bulk-get group size (min 1).
    pub fn bulk_group(mut self, group: usize) -> Self {
        self.bulk_group = Some(group.max(1));
        self
    }

    /// Set the per-shard admission queue capacity (min 1).
    pub fn admit_queue_capacity(mut self, capacity: usize) -> Self {
        self.admit_queue_capacity = Some(capacity.max(1));
        self
    }

    /// Enable or disable admission coalescing.
    pub fn admit_coalesce(mut self, coalesce: bool) -> Self {
        self.admit_coalesce = Some(coalesce);
        self
    }

    /// Bound `submit` backpressure waits: fail with
    /// [`LsmError::SubmitTimedOut`] instead of blocking longer than this.
    pub fn submit_timeout(mut self, timeout: Duration) -> Self {
        self.submit_timeout = Some(timeout);
        self
    }

    /// Bound `flush` drain waits: fail with [`LsmError::FlushTimedOut`]
    /// instead of blocking longer than this.
    pub fn flush_timeout(mut self, timeout: Duration) -> Self {
        self.flush_timeout = Some(timeout);
        self
    }

    /// Set the rebalance thresholds.
    pub fn rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Enable durability (WAL + snapshots) under the config's directory.
    /// Takes effect through [`crate::AdmittedLsm::open_durable`].
    pub fn durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Install the process-wide overrides this config carries (`bloom_bits`
    /// and `par_cutoff`); fields left `None` change nothing.  Called by the
    /// `with_config` constructors; safe to call directly when only the
    /// global knobs are wanted.
    pub fn apply_process_overrides(&self) {
        if let Some(bits) = self.bloom_bits {
            gpu_primitives::filter::set_bloom_bits_override(Some(bits));
        }
        if let Some(cutoff) = self.par_cutoff {
            rayon::set_sequential_cutoff(cutoff);
        }
    }

    /// The admission configuration this config implies: explicit fields
    /// win, unset fields fall back to the env-derived defaults.
    pub fn admission(&self) -> AdmissionConfig {
        let mut ac = AdmissionConfig::default();
        if let Some(capacity) = self.admit_queue_capacity {
            ac.queue_capacity = capacity;
        }
        if let Some(coalesce) = self.admit_coalesce {
            ac.coalesce = coalesce;
        }
        if let Some(timeout) = self.submit_timeout {
            ac.submit_deadline = Some(timeout);
        }
        if let Some(timeout) = self.flush_timeout {
            ac.flush_deadline = Some(timeout);
        }
        ac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_all_fallback() {
        let c = LsmConfig::default();
        assert_eq!(c.bloom_bits, None);
        assert_eq!(c.par_cutoff, None);
        assert_eq!(c.bulk_lookup_frac, None);
        assert_eq!(c.admit_queue_capacity, None);
        assert_eq!(c.admit_coalesce, None);
        assert!(!c.rebalance.enabled);
        // A default config installs no process overrides and its admission
        // view matches the env-derived default.
        assert_eq!(c.admission(), AdmissionConfig::default());
    }

    #[test]
    fn builder_methods_set_fields() {
        let c = LsmConfig::default()
            .bloom_bits(8)
            .par_cutoff(1)
            .bulk_lookup_frac(0.5)
            .arena(true)
            .arena_chunk_words(0) // clamped to 1
            .bulk_group(0) // clamped to 1
            .admit_queue_capacity(0) // clamped to 1
            .admit_coalesce(false)
            .rebalance(RebalanceConfig {
                enabled: true,
                max_shards: 16,
                ..RebalanceConfig::default()
            });
        assert_eq!(c.bloom_bits, Some(8));
        assert_eq!(c.par_cutoff, Some(1));
        assert_eq!(c.bulk_lookup_frac, Some(0.5));
        assert_eq!(c.arena, Some(true));
        assert_eq!(c.arena_chunk_words, Some(1));
        assert_eq!(c.bulk_group, Some(1));
        assert_eq!(c.admit_queue_capacity, Some(1));
        assert_eq!(c.admit_coalesce, Some(false));
        assert!(c.rebalance.enabled);
        assert_eq!(c.rebalance.max_shards, 16);
        let ac = c.admission();
        assert_eq!(ac.queue_capacity, 1);
        assert!(!ac.coalesce);
    }

    /// A fake environment for exercising `from_env_lookup` without
    /// touching the real (process-global, racy) environment.
    fn env_of<'a>(vars: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Result<Option<String>> + 'a {
        move |var| {
            Ok(vars
                .iter()
                .find(|(name, _)| *name == var)
                .map(|(_, value)| value.to_string()))
        }
    }

    #[test]
    fn from_env_parses_set_variables() {
        let c = LsmConfig::from_env_lookup(env_of(&[
            ("LSM_BLOOM_BITS", "8"),
            ("LSM_PAR_CUTOFF", " 64 "),
            ("LSM_BULK_LOOKUP_FRAC", "0.25"),
            ("LSM_ARENA", "0"),
            ("LSM_ARENA_CHUNK", "4096"),
            ("LSM_BULK_GROUP", " 128 "),
            ("LSM_ADMIT_QUEUE", "32"),
            ("LSM_ADMIT_COALESCE", "0"),
            ("LSM_SUBMIT_TIMEOUT_MS", "250"),
            ("LSM_FLUSH_TIMEOUT_MS", " 5000 "),
            ("LSM_WAL_DIR", "/tmp/lsm-wal"),
            ("LSM_WAL_FSYNC", "4"),
            ("LSM_WAL_RETRIES", "5:200"),
            ("LSM_WAL_DEGRADE", "Volatile"),
        ]))
        .unwrap();
        assert_eq!(c.bloom_bits, Some(8));
        assert_eq!(c.par_cutoff, Some(64));
        assert_eq!(c.bulk_lookup_frac, Some(0.25));
        assert_eq!(c.arena, Some(false));
        assert_eq!(c.arena_chunk_words, Some(4096));
        assert_eq!(c.bulk_group, Some(128));
        assert_eq!(c.admit_queue_capacity, Some(32));
        assert_eq!(c.admit_coalesce, Some(false));
        assert_eq!(c.submit_timeout, Some(Duration::from_millis(250)));
        assert_eq!(c.flush_timeout, Some(Duration::from_millis(5000)));
        let d = c.durability.unwrap();
        assert_eq!(d.dir, std::path::PathBuf::from("/tmp/lsm-wal"));
        assert_eq!(d.fsync_interval, 4);
        assert_eq!(d.retry, RetryPolicy::new(5, Duration::from_micros(200)));
        assert_eq!(d.degrade, DegradeMode::DegradeToVolatile);
    }

    #[test]
    fn wal_retries_accepts_attempts_only_form() {
        let c = LsmConfig::from_env_lookup(env_of(&[
            ("LSM_WAL_DIR", "/tmp/lsm-wal"),
            ("LSM_WAL_RETRIES", "7"),
        ]))
        .unwrap();
        let d = c.durability.unwrap();
        assert_eq!(d.retry.attempts, 7);
        assert_eq!(d.retry.backoff, RetryPolicy::default().backoff);
    }

    #[test]
    fn from_env_with_nothing_set_is_all_fallback() {
        let c = LsmConfig::from_env_lookup(env_of(&[])).unwrap();
        assert_eq!(c, LsmConfig::default());
        // The real from_env only differs in its variable source; with the
        // knob variables unset in the test environment it behaves the same.
        // (CI stress jobs do set LSM_* knobs, so only spot-check that the
        // call succeeds there.)
        assert!(LsmConfig::from_env().is_ok());
    }

    #[test]
    fn from_env_rejects_unparsable_values_with_context() {
        // The motivating typo: a letter o instead of a zero.
        let err = LsmConfig::from_env_lookup(env_of(&[("LSM_ADMIT_QUEUE", "4o96")])).unwrap_err();
        match err {
            LsmError::InvalidEnvValue { var, value, .. } => {
                assert_eq!(var, "LSM_ADMIT_QUEUE");
                assert_eq!(value, "4o96");
            }
            other => panic!("expected InvalidEnvValue, got {other:?}"),
        }
        for (var, bad) in [
            ("LSM_BLOOM_BITS", "eight"),
            ("LSM_PAR_CUTOFF", "-1"),
            ("LSM_BULK_LOOKUP_FRAC", "zero.five"),
            ("LSM_ARENA", "yes"),
            ("LSM_ARENA_CHUNK", "1MB"),
            ("LSM_BULK_GROUP", "warp"),
            ("LSM_ADMIT_COALESCE", "off"),
            ("LSM_SUBMIT_TIMEOUT_MS", "fast"),
            ("LSM_FLUSH_TIMEOUT_MS", "1.5"),
            ("LSM_WAL_FSYNC", "1s"),
            ("LSM_WAL_RETRIES", "three"),
            ("LSM_WAL_RETRIES", "3:soon"),
            ("LSM_WAL_RETRIES", "3:100:extra"),
            ("LSM_WAL_DEGRADE", "maybe"),
        ] {
            let err = LsmConfig::from_env_lookup(env_of(&[(var, bad)])).unwrap_err();
            assert!(
                matches!(&err, LsmError::InvalidEnvValue { var: v, .. } if v == var),
                "{var}={bad} should be rejected, got {err:?}"
            );
            assert!(err.to_string().contains(var));
        }
    }

    #[test]
    fn from_env_rejects_nonsensical_settings() {
        for (var, bad) in [
            ("LSM_BULK_LOOKUP_FRAC", "0"),
            ("LSM_BULK_LOOKUP_FRAC", "-0.5"),
            ("LSM_BULK_LOOKUP_FRAC", "inf"),
            ("LSM_ARENA_CHUNK", "0"),
            ("LSM_BULK_GROUP", "0"),
            ("LSM_ADMIT_QUEUE", "0"),
            ("LSM_SUBMIT_TIMEOUT_MS", "0"),
            ("LSM_FLUSH_TIMEOUT_MS", "0"),
            ("LSM_WAL_FSYNC", "0"),
            ("LSM_WAL_RETRIES", "0"),
        ] {
            assert!(
                LsmConfig::from_env_lookup(env_of(&[(var, bad)])).is_err(),
                "{var}={bad} should be rejected"
            );
        }
    }

    #[test]
    fn wal_fsync_without_wal_dir_is_validated_but_inert() {
        let c = LsmConfig::from_env_lookup(env_of(&[("LSM_WAL_FSYNC", "16")])).unwrap();
        assert_eq!(c.durability, None);
        assert!(LsmConfig::from_env_lookup(env_of(&[("LSM_WAL_FSYNC", "bogus")])).is_err());
    }

    #[test]
    fn wal_retries_and_degrade_without_wal_dir_are_validated_but_inert() {
        let c = LsmConfig::from_env_lookup(env_of(&[
            ("LSM_WAL_RETRIES", "4:50"),
            ("LSM_WAL_DEGRADE", "volatile"),
        ]))
        .unwrap();
        assert_eq!(c.durability, None);
        assert!(LsmConfig::from_env_lookup(env_of(&[("LSM_WAL_RETRIES", "nope")])).is_err());
        assert!(LsmConfig::from_env_lookup(env_of(&[("LSM_WAL_DEGRADE", "nope")])).is_err());
    }

    #[test]
    fn timeouts_flow_into_the_admission_config() {
        let c = LsmConfig::default()
            .submit_timeout(Duration::from_millis(10))
            .flush_timeout(Duration::from_millis(20));
        let ac = c.admission();
        assert_eq!(ac.submit_deadline, Some(Duration::from_millis(10)));
        assert_eq!(ac.flush_deadline, Some(Duration::from_millis(20)));
    }
}
