//! Durability: write-ahead log, crash-consistent snapshots, recovery.
//!
//! The paper treats the fixed-size batch as the atomic unit of mutation
//! (§III-A rule 1), which makes it the natural WAL record: one submitted
//! [`UpdateBatch`] becomes one length + checksum framed record, appended
//! to the active segment *before* the batch is enqueued for admission.
//! Because per-key resolution is last-writer-wins, replaying a suffix of
//! already-applied records on top of a snapshot is idempotent — recovery
//! never needs to know exactly where the crash fell inside the suffix.
//!
//! Levels are immutable sorted runs, so a crash-consistent snapshot is a
//! **manifest** (router split points, epoch, batch size, per-shard level
//! list with run checksums) plus one **run file** per occupied level.  The
//! admission layer writes a snapshot at quiescent flush barriers and after
//! shard split/merge epoch bumps, then rotates the WAL to a fresh segment
//! keyed by the new manifest sequence number and garbage-collects the
//! superseded generation.  Manifests become visible via an atomic
//! tmp-write + rename, so a torn manifest write can never shadow a valid
//! older one.
//!
//! Recovery ([`crate::AdmittedLsm::open_durable`]) loads the newest
//! manifest that validates (checksums of the manifest and of every run
//! file), rebuilds the shards from the runs byte-for-byte, then replays
//! every WAL segment of that generation and later **through the normal
//! admission path** in log order.  A torn or corrupt tail record ends the
//! replay of its segment: the valid prefix is kept, the tail is truncated,
//! never applied.
//!
//! Fsync batching: [`DurabilityConfig::fsync_interval`] groups `n` record
//! appends per `fsync`, amortizing the sync the same way coalescing
//! amortizes apply cost.  A crash may lose at most the un-synced suffix of
//! records — each of which was never acknowledged as durable.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::batch::UpdateBatch;
use crate::error::{LsmError, Result};
use crate::key::{is_tombstone, original_key, EncodedKey, Key, Value};

/// Default number of WAL record appends grouped per `fsync`.
pub const DEFAULT_FSYNC_INTERVAL: usize = 8;

/// Magic prefix of every WAL record frame (`"WALR"`).
const RECORD_MAGIC: u32 = 0x5741_4C52;
/// Magic prefix of a manifest file (`"MANI"`).
const MANIFEST_MAGIC: u32 = 0x4D41_4E49;
/// Magic prefix of a run file (`"RUNF"`).
const RUN_MAGIC: u32 = 0x5255_4E46;
/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;
/// Upper bound on one record's payload, so a corrupt length field cannot
/// drive a gigantic allocation before the checksum gets a chance to fail.
const MAX_RECORD_PAYLOAD: usize = 1 << 26;

/// Durability knobs carried by [`crate::LsmConfig`]; `None` there (the
/// default) keeps the structure purely in-memory.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments, manifests and run files.
    /// Created on open if missing.  One directory per service.
    pub dir: PathBuf,
    /// Record appends grouped per `fsync` (minimum 1 = sync every record).
    /// A crash loses at most the un-synced suffix.
    pub fsync_interval: usize,
}

impl DurabilityConfig {
    /// Durability under `dir` with the default fsync batching.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync_interval: DEFAULT_FSYNC_INTERVAL,
        }
    }

    /// Set the fsync batching interval (clamped to a minimum of 1).
    pub fn fsync_interval(mut self, records: usize) -> Self {
        self.fsync_interval = records.max(1);
        self
    }
}

/// Lifetime durability counters (see [`crate::AdmittedLsm::durability_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (one per submitted batch).
    pub wal_records: u64,
    /// `fsync` calls issued on WAL segments.
    pub wal_syncs: u64,
    /// Snapshots (manifest + runs) written.
    pub snapshots: u64,
    /// Sequence number of the newest durable manifest (0 = none yet).
    pub manifest_seq: u64,
}

/// What [`crate::AdmittedLsm::open_durable`] found and replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the manifest restored from (`None` = fresh dir).
    pub manifest_seq: Option<u64>,
    /// WAL records replayed through the admission path.
    pub replayed_batches: u64,
    /// Bytes of torn / corrupt WAL tail truncated (never replayed).
    pub torn_bytes: u64,
    /// Newer manifests skipped because they failed validation.
    pub corrupt_manifests_skipped: u64,
}

// ----------------------------------------------------------------------
// Checksums and little-endian framing helpers
// ----------------------------------------------------------------------

/// FNV-1a 64-bit — cheap, dependency-free, and plenty for torn-write
/// detection (this is not an adversarial setting).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> LsmError {
    LsmError::Durability {
        context: format!("{context} {}: {e}", path.display()),
    }
}

fn corrupt(context: &str, path: &Path) -> LsmError {
    LsmError::Durability {
        context: format!("{context} {}", path.display()),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A little-endian cursor over a byte slice; `None` means truncated input.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

// ----------------------------------------------------------------------
// File naming
// ----------------------------------------------------------------------

/// `wal-<seq>.log`: the segment receiving records while manifest `seq` is
/// the newest durable snapshot.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("MANIFEST-{seq}"))
}

fn run_path(dir: &Path, seq: u64, shard: usize, level: usize) -> PathBuf {
    dir.join(format!("run-{seq}-{shard}-{level}.bin"))
}

/// Parse `prefix<seq>suffix` file names back to their sequence number.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Durability of the rename/create itself: sync the directory entry.
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("sync directory", dir, e))
}

// ----------------------------------------------------------------------
// WAL records
// ----------------------------------------------------------------------

/// Frame one batch: `magic | payload_len | fnv64(payload) | payload`,
/// payload = the ops as `(encoded_key, value)` pairs.  The encoded key
/// carries the tombstone bit, so the op kind round-trips exactly.
fn encode_record(batch: &UpdateBatch) -> Vec<u8> {
    let payload_len = batch.len() * 8;
    let mut payload = Vec::with_capacity(payload_len);
    for op in batch.ops() {
        let (k, v) = op.encode();
        put_u32(&mut payload, k);
        put_u32(&mut payload, v);
    }
    let mut out = Vec::with_capacity(16 + payload_len);
    put_u32(&mut out, RECORD_MAGIC);
    put_u32(&mut out, payload_len as u32);
    put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(payload.len() / 8);
    let mut cur = Cursor::new(payload);
    while let (Some(k), Some(v)) = (cur.u32(), cur.u32()) {
        if is_tombstone(k) {
            batch.delete(original_key(k));
        } else {
            batch.insert(original_key(k), v);
        }
    }
    batch
}

/// Outcome of scanning one WAL segment front to back.
#[derive(Debug)]
pub struct SegmentScan {
    /// The decoded records of the valid prefix, in append order.
    pub records: Vec<UpdateBatch>,
    /// Byte offset just past each valid record (parallel to `records`) —
    /// the legal truncation points of this segment.
    pub record_ends: Vec<u64>,
    /// Length of the valid prefix; equals the file length iff the tail is
    /// clean.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn or corrupt tail).
    pub torn_bytes: u64,
}

/// Scan a segment, stopping at the first frame that is short, has a bad
/// magic, an oversized or misaligned length, a checksum mismatch, or an
/// empty payload.  Everything after that point is tail, not data.
pub fn scan_segment(path: &Path) -> Result<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read segment", path, e))?;
    let mut cur = Cursor::new(&bytes);
    let mut scan = SegmentScan {
        records: Vec::new(),
        record_ends: Vec::new(),
        valid_len: 0,
        torn_bytes: 0,
    };
    loop {
        let header = (cur.u32(), cur.u32(), cur.u64());
        let (Some(magic), Some(len), Some(checksum)) = header else {
            break;
        };
        let len = len as usize;
        if magic != RECORD_MAGIC || len == 0 || !len.is_multiple_of(8) || len > MAX_RECORD_PAYLOAD {
            break;
        }
        let Some(payload) = cur.take(len) else {
            break;
        };
        if fnv1a(payload) != checksum {
            break;
        }
        scan.records.push(decode_payload(payload));
        scan.record_ends.push(cur.pos as u64);
        scan.valid_len = cur.pos as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// The active WAL segment: an append-only record writer with grouped
/// `fsync` and write-failure containment (a failed append truncates the
/// file back to the last good record boundary so later records stay
/// readable).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes known to hold whole, well-formed records.
    valid_len: u64,
    fsync_interval: usize,
    /// Records appended since the last `fsync`.
    unsynced: usize,
    /// Lifetime records appended through this writer.
    pub(crate) records: u64,
    /// Lifetime `fsync` calls issued by this writer.
    pub(crate) syncs: u64,
    /// Set when a failed append could not be rolled back; all later
    /// appends are refused (the segment's tail state is unknown).
    broken: bool,
}

impl Wal {
    /// Create (truncate) a fresh segment at `path`.
    pub fn create(path: PathBuf, fsync_interval: usize) -> Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create segment", &path, e))?;
        Ok(Wal {
            file,
            path,
            valid_len: 0,
            fsync_interval: fsync_interval.max(1),
            unsynced: 0,
            records: 0,
            syncs: 0,
            broken: false,
        })
    }

    /// Re-open an existing segment for appending, physically truncating it
    /// to `valid_len` first (recovery discards the torn tail for good).
    pub fn open_append(path: PathBuf, fsync_interval: usize, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err("open segment", &path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("truncate segment", &path, e))?;
        let mut wal = Wal {
            file,
            path,
            valid_len,
            fsync_interval: fsync_interval.max(1),
            unsynced: 0,
            records: 0,
            syncs: 0,
            broken: false,
        };
        wal.file
            .seek(SeekFrom::Start(valid_len))
            .map_err(|e| io_err("seek segment", &wal.path, e))?;
        Ok(wal)
    }

    /// Append one batch as a framed record, syncing every
    /// `fsync_interval`-th append.
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<()> {
        if self.broken {
            return Err(corrupt(
                "segment writer disabled after failed append",
                &self.path,
            ));
        }
        let record = encode_record(batch);
        if let Err(e) = self.file.write_all(&record) {
            // Roll the file back to the last good boundary so a partial
            // frame cannot sit in front of future records.
            if self.file.set_len(self.valid_len).is_err()
                || self.file.seek(SeekFrom::Start(self.valid_len)).is_err()
            {
                self.broken = true;
            }
            return Err(io_err("append record to", &self.path, e));
        }
        self.valid_len += record.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_interval {
            self.sync()?;
        }
        Ok(())
    }

    /// Force the segment to stable storage now.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| io_err("sync segment", &self.path, e))?;
        self.unsynced = 0;
        self.syncs += 1;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Snapshots: manifest + run files
// ----------------------------------------------------------------------

/// One shard's contribution to a snapshot: its occupied levels as raw
/// `(level index, encoded keys, values)` dumps.
#[derive(Debug)]
pub(crate) struct SnapshotShard {
    /// Occupied levels, smallest index first.
    pub levels: Vec<(usize, Vec<EncodedKey>, Vec<Value>)>,
}

/// A validated snapshot loaded back from disk.
#[derive(Debug)]
pub(crate) struct LoadedSnapshot {
    pub seq: u64,
    pub epoch: u64,
    pub batch_size: usize,
    pub split_points: Vec<Key>,
    pub shards: Vec<SnapshotShard>,
    /// Newer manifests skipped because they failed validation.
    pub corrupt_skipped: u64,
}

fn encode_run(keys: &[EncodedKey], values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + keys.len() * 8);
    put_u32(&mut out, RUN_MAGIC);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, keys.len() as u64);
    for &k in keys {
        put_u32(&mut out, k);
    }
    for &v in values {
        put_u32(&mut out, v);
    }
    out
}

fn decode_run(bytes: &[u8], path: &Path) -> Result<(Vec<EncodedKey>, Vec<Value>)> {
    let mut cur = Cursor::new(bytes);
    let header = (cur.u32(), cur.u32(), cur.u64());
    let (Some(RUN_MAGIC), Some(_), Some(len)) = header else {
        return Err(corrupt("bad run header in", path));
    };
    let len = usize::try_from(len).map_err(|_| corrupt("oversized run in", path))?;
    let mut keys = Vec::with_capacity(len);
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        keys.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated run keys in", path))?,
        );
    }
    for _ in 0..len {
        values.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated run values in", path))?,
        );
    }
    if cur.pos != bytes.len() {
        return Err(corrupt("trailing bytes in run", path));
    }
    Ok((keys, values))
}

/// Write a full snapshot as generation `seq`: every run file (synced),
/// then the manifest via tmp-write + fsync + atomic rename + dir sync.
/// Only the rename makes the generation visible, so a crash anywhere in
/// here leaves the previous generation authoritative.
pub(crate) fn write_snapshot(
    dir: &Path,
    seq: u64,
    epoch: u64,
    batch_size: usize,
    split_points: &[Key],
    shards: &[SnapshotShard],
) -> Result<()> {
    let mut manifest = Vec::new();
    put_u32(&mut manifest, MANIFEST_MAGIC);
    put_u32(&mut manifest, MANIFEST_VERSION);
    put_u64(&mut manifest, seq);
    put_u64(&mut manifest, epoch);
    put_u64(&mut manifest, batch_size as u64);
    put_u32(&mut manifest, split_points.len() as u32);
    for &p in split_points {
        put_u32(&mut manifest, p);
    }
    put_u32(&mut manifest, shards.len() as u32);
    for (s, shard) in shards.iter().enumerate() {
        put_u32(&mut manifest, shard.levels.len() as u32);
        for (i, keys, values) in &shard.levels {
            let run = encode_run(keys, values);
            let path = run_path(dir, seq, s, *i);
            fs::write(&path, &run).map_err(|e| io_err("write run", &path, e))?;
            File::open(&path)
                .and_then(|f| f.sync_all())
                .map_err(|e| io_err("sync run", &path, e))?;
            put_u32(&mut manifest, *i as u32);
            put_u64(&mut manifest, keys.len() as u64);
            put_u64(&mut manifest, fnv1a(&run));
        }
    }
    let trailer = fnv1a(&manifest);
    put_u64(&mut manifest, trailer);

    let tmp = dir.join(format!("MANIFEST-{seq}.tmp"));
    let path = manifest_path(dir, seq);
    fs::write(&tmp, &manifest).map_err(|e| io_err("write manifest", &tmp, e))?;
    File::open(&tmp)
        .and_then(|f| f.sync_all())
        .map_err(|e| io_err("sync manifest", &tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| io_err("publish manifest", &path, e))?;
    sync_dir(dir)
}

/// Parse and fully validate one manifest generation, loading its runs.
fn load_manifest(dir: &Path, seq: u64) -> Result<LoadedSnapshot> {
    let path = manifest_path(dir, seq);
    let bytes = fs::read(&path).map_err(|e| io_err("read manifest", &path, e))?;
    if bytes.len() < 8 {
        return Err(corrupt("short manifest", &path));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(trailer.try_into().unwrap()) {
        return Err(corrupt("manifest checksum mismatch in", &path));
    }
    let mut cur = Cursor::new(body);
    let header = (cur.u32(), cur.u32(), cur.u64(), cur.u64(), cur.u64());
    let (Some(MANIFEST_MAGIC), Some(MANIFEST_VERSION), Some(file_seq), Some(epoch), Some(bs)) =
        header
    else {
        return Err(corrupt("bad manifest header in", &path));
    };
    if file_seq != seq {
        return Err(corrupt("manifest sequence mismatch in", &path));
    }
    let nsplit = cur
        .u32()
        .ok_or_else(|| corrupt("truncated manifest", &path))?;
    let mut split_points = Vec::with_capacity(nsplit as usize);
    for _ in 0..nsplit {
        split_points.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated manifest", &path))?,
        );
    }
    let nshards = cur
        .u32()
        .ok_or_else(|| corrupt("truncated manifest", &path))?;
    let mut shards = Vec::with_capacity(nshards as usize);
    for s in 0..nshards as usize {
        let nlevels = cur
            .u32()
            .ok_or_else(|| corrupt("truncated manifest", &path))?;
        let mut levels = Vec::with_capacity(nlevels as usize);
        for _ in 0..nlevels {
            let entry = (cur.u32(), cur.u64(), cur.u64());
            let (Some(i), Some(len), Some(checksum)) = entry else {
                return Err(corrupt("truncated manifest", &path));
            };
            let rpath = run_path(dir, seq, s, i as usize);
            let run = fs::read(&rpath).map_err(|e| io_err("read run", &rpath, e))?;
            if fnv1a(&run) != checksum {
                return Err(corrupt("run checksum mismatch in", &rpath));
            }
            let (keys, values) = decode_run(&run, &rpath)?;
            if keys.len() as u64 != len {
                return Err(corrupt("run length mismatch in", &rpath));
            }
            levels.push((i as usize, keys, values));
        }
        shards.push(SnapshotShard { levels });
    }
    if cur.pos != body.len() {
        return Err(corrupt("trailing bytes in manifest", &path));
    }
    Ok(LoadedSnapshot {
        seq,
        epoch,
        batch_size: bs as usize,
        split_points,
        shards,
        corrupt_skipped: 0,
    })
}

/// All manifest sequence numbers present in `dir`, descending.
fn manifest_seqs(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs: Vec<u64> = fs::read_dir(dir)
        .map_err(|e| io_err("list durability dir", dir, e))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            parse_seq(name.to_str()?, "MANIFEST-", "")
        })
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Load the newest manifest that fully validates, skipping (and counting)
/// corrupt newer ones.  `Ok(None)` means no usable snapshot exists.
pub(crate) fn load_newest_snapshot(dir: &Path) -> Result<Option<LoadedSnapshot>> {
    let mut skipped = 0u64;
    for seq in manifest_seqs(dir)? {
        match load_manifest(dir, seq) {
            Ok(mut snapshot) => {
                snapshot.corrupt_skipped = skipped;
                return Ok(Some(snapshot));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// WAL segments with sequence number `>= min_seq`, ascending — the replay
/// order (older generations first, records within a segment in append
/// order).
pub(crate) fn list_segments(dir: &Path, min_seq: u64) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .map_err(|e| io_err("list durability dir", dir, e))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            let seq = parse_seq(name.to_str()?, "wal-", ".log")?;
            (seq >= min_seq).then(|| (seq, segment_path(dir, seq)))
        })
        .collect();
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Best-effort removal of everything belonging to generations older than
/// `keep_seq` (plus stray `.tmp` manifests).  Failures are ignored: stale
/// files are re-collected by the next snapshot and never confuse recovery
/// (older manifests are shadowed, older segments replay idempotently).
pub(crate) fn collect_garbage(dir: &Path, keep_seq: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = name.ends_with(".tmp")
            || parse_seq(name, "MANIFEST-", "").is_some_and(|s| s < keep_seq)
            || parse_seq(name, "wal-", ".log").is_some_and(|s| s < keep_seq)
            || name
                .strip_prefix("run-")
                .and_then(|rest| rest.split('-').next())
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|s| s < keep_seq);
        if stale {
            let _ = fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gpu-lsm-wal-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(ops: &[(u32, Option<u32>)]) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for &(k, v) in ops {
            match v {
                Some(v) => b.insert(k, v),
                None => b.delete(k),
            };
        }
        b
    }

    #[test]
    fn records_round_trip_including_tombstones() {
        let dir = temp_dir("roundtrip");
        let path = segment_path(&dir, 0);
        let b1 = batch(&[(1, Some(10)), (2, None), (3, Some(30))]);
        let b2 = batch(&[(2, Some(20))]);
        let mut wal = Wal::create(path.clone(), 1).unwrap();
        wal.append(&b1).unwrap();
        wal.append(&b2).unwrap();
        assert_eq!(wal.records, 2);
        assert_eq!(wal.syncs, 2); // interval 1 syncs every record
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records, vec![b1, b2]);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.record_ends.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_batching_groups_appends() {
        let dir = temp_dir("fsync");
        let mut wal = Wal::create(segment_path(&dir, 0), 4).unwrap();
        for i in 0..10u32 {
            wal.append(&batch(&[(i, Some(i))])).unwrap();
        }
        assert_eq!(wal.syncs, 2); // after records 4 and 8
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3);
        wal.sync().unwrap(); // nothing new: no extra fsync
        assert_eq!(wal.syncs, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_skipped() {
        let dir = temp_dir("torn");
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(path.clone(), 1).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap();
        wal.append(&batch(&[(2, Some(2))])).unwrap();
        drop(wal);
        let clean = scan_segment(&path).unwrap();
        // Cut mid-way through the second record: only the first survives.
        let cut = (clean.record_ends[0] + clean.record_ends[1]) / 2;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, clean.record_ends[0]);
        assert_eq!(scan.torn_bytes, cut - clean.record_ends[0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checksum_truncates_from_that_record() {
        let dir = temp_dir("corrupt");
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(path.clone(), 1).unwrap();
        for i in 0..3u32 {
            wal.append(&batch(&[(i, Some(i))])).unwrap();
        }
        drop(wal);
        let clean = scan_segment(&path).unwrap();
        // Flip one payload byte inside the second record.
        let mut bytes = fs::read(&path).unwrap();
        let offset = clean.record_ends[0] as usize + 17;
        bytes[offset] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips_and_newest_valid_wins() {
        let dir = temp_dir("snapshot");
        let shard = SnapshotShard {
            levels: vec![(0, vec![2, 5, 9, 12], vec![1, 2, 3, 4])],
        };
        write_snapshot(&dir, 1, 0, 4, &[], &[shard]).unwrap();
        let shard2 = SnapshotShard {
            levels: vec![(1, vec![2, 5, 9, 12, 14, 17, 21, 25], vec![0; 8])],
        };
        write_snapshot(
            &dir,
            2,
            3,
            4,
            &[1000],
            &[shard2, SnapshotShard { levels: vec![] }],
        )
        .unwrap();
        let loaded = load_newest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.epoch, 3);
        assert_eq!(loaded.batch_size, 4);
        assert_eq!(loaded.split_points, vec![1000]);
        assert_eq!(loaded.shards.len(), 2);
        assert_eq!(loaded.shards[0].levels[0].0, 1);
        assert_eq!(loaded.shards[0].levels[0].1.len(), 8);
        assert_eq!(loaded.corrupt_skipped, 0);

        // Corrupt the newest manifest: recovery falls back to seq 1.
        let mut bytes = fs::read(manifest_path(&dir, 2)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(manifest_path(&dir, 2), &bytes).unwrap();
        let loaded = load_newest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.corrupt_skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_collection_keeps_current_generation() {
        let dir = temp_dir("gc");
        let empty = || SnapshotShard {
            levels: vec![(0, vec![3], vec![7])],
        };
        write_snapshot(&dir, 1, 0, 1, &[], &[empty()]).unwrap();
        write_snapshot(&dir, 2, 0, 1, &[], &[empty()]).unwrap();
        drop(Wal::create(segment_path(&dir, 1), 1).unwrap());
        drop(Wal::create(segment_path(&dir, 2), 1).unwrap());
        collect_garbage(&dir, 2);
        assert!(!manifest_path(&dir, 1).exists());
        assert!(!segment_path(&dir, 1).exists());
        assert!(!run_path(&dir, 1, 0, 0).exists());
        assert!(manifest_path(&dir, 2).exists());
        assert!(segment_path(&dir, 2).exists());
        assert!(run_path(&dir, 2, 0, 0).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_truncates_the_torn_tail_physically() {
        let dir = temp_dir("reopen");
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(path.clone(), 1).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap();
        let keep = wal.valid_len;
        drop(wal);
        // Simulate a torn write after the good record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);
        let mut wal = Wal::open_append(path.clone(), 1, keep).unwrap();
        wal.append(&batch(&[(2, Some(2))])).unwrap();
        drop(wal);
        let scan = scan_segment(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
