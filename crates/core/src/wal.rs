//! Durability: write-ahead log, crash-consistent snapshots, recovery.
//!
//! The paper treats the fixed-size batch as the atomic unit of mutation
//! (§III-A rule 1), which makes it the natural WAL record: one submitted
//! [`UpdateBatch`] becomes one length + checksum framed record, appended
//! to the active segment *before* the batch is enqueued for admission.
//! Because per-key resolution is last-writer-wins, replaying a suffix of
//! already-applied records on top of a snapshot is idempotent — recovery
//! never needs to know exactly where the crash fell inside the suffix.
//!
//! Levels are immutable sorted runs, so a crash-consistent snapshot is a
//! **manifest** (router split points, epoch, batch size, per-shard level
//! list with run checksums) plus one **run file** per occupied level.
//! Snapshots are *incremental*: a level whose run digest matches the
//! previous generation keeps referencing the already-written file instead
//! of rewriting it, so a flush-barrier snapshot only pays for changed
//! runs.  The admission layer writes a snapshot at quiescent flush
//! barriers and after shard split/merge epoch bumps, then rotates the WAL
//! to a fresh segment keyed by the new manifest sequence number and
//! garbage-collects the superseded generation (sparing carried-over
//! runs).  Manifests become visible via an atomic tmp-write + rename, so
//! a torn manifest write can never shadow a valid older one.
//!
//! Every filesystem operation goes through the [`crate::vfs::Vfs`] seam.
//! Transient IO errors on append/fsync are retried per [`RetryPolicy`];
//! persistent failure is governed by [`DegradeMode`] — fail stop, or seal
//! the WAL at the last durable boundary and keep serving in memory with a
//! sticky `durability_degraded` health flag.
//!
//! Recovery ([`crate::AdmittedLsm::open_durable`]) loads the newest
//! manifest that validates (checksums of the manifest and of every run
//! file), rebuilds the shards from the runs byte-for-byte, then replays
//! every WAL segment of that generation and later **through the normal
//! admission path** in log order.  A torn or corrupt tail record ends the
//! replay of its segment: the valid prefix is kept, the tail is truncated,
//! never applied.
//!
//! Fsync batching: [`DurabilityConfig::fsync_interval`] groups `n` record
//! appends per `fsync`, amortizing the sync the same way coalescing
//! amortizes apply cost.  A crash may lose at most the un-synced suffix of
//! records — each of which was never acknowledged as durable.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::batch::UpdateBatch;
use crate::error::{LsmError, Result};
use crate::key::{is_tombstone, original_key, EncodedKey, Key, Value};
use crate::vfs::{RealVfs, Vfs, VfsFile};

/// Default number of WAL record appends grouped per `fsync`.
pub const DEFAULT_FSYNC_INTERVAL: usize = 8;

/// Magic prefix of every WAL record frame (`"WALR"`).
const RECORD_MAGIC: u32 = 0x5741_4C52;
/// Magic prefix of a manifest file (`"MANI"`).
const MANIFEST_MAGIC: u32 = 0x4D41_4E49;
/// Magic prefix of a run file (`"RUNF"`).
const RUN_MAGIC: u32 = 0x5255_4E46;
/// Manifest format version (v2 added per-run file sequence numbers for
/// incremental snapshots).
const MANIFEST_VERSION: u32 = 2;
/// Upper bound on one record's payload, so a corrupt length field cannot
/// drive a gigantic allocation before the checksum gets a chance to fail.
const MAX_RECORD_PAYLOAD: usize = 1 << 26;

/// Name of the sticky marker file written (best-effort) when the pipeline
/// degrades to volatile; reported and cleared by the next successful
/// recovery so operators can tell a degraded generation from a clean one.
pub(crate) const DEGRADED_MARKER: &str = "DEGRADED";

/// Bounded retry-with-backoff for transient durability IO errors
/// (`ENOSPC` racing a cleaner, `EINTR`, a hiccuping fsync).  The sleep
/// doubles per retry and is capped, so a permanent failure surfaces
/// quickly instead of hanging the admission lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per IO operation (minimum 1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry (capped
    /// at 64x).  `Duration::ZERO` retries immediately.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_micros(100),
        }
    }
}

impl RetryPolicy {
    /// Build a policy from raw attempts + backoff.
    pub fn new(attempts: u32, backoff: Duration) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            backoff,
        }
    }

    /// No retries: every IO error is immediately fatal to its operation.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Sleep before retry number `retry_index` (0-based).
    fn pause(&self, retry_index: u32) {
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff * (1u32 << retry_index.min(6)));
        }
    }
}

/// What the durability pipeline does when an append/fsync error persists
/// past the retry budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DegradeMode {
    /// Surface a typed `LsmError::Durability` from `submit` — the
    /// pipeline refuses to acknowledge writes it cannot log.
    #[default]
    FailStop,
    /// Seal the WAL at the last durable record boundary, set the sticky
    /// `durability_degraded` health flag, and keep admitting in-memory so
    /// reads and writes continue while operators alarm on the flag.  The
    /// durable prefix remains exactly recoverable.
    DegradeToVolatile,
}

/// Durability knobs carried by [`crate::LsmConfig`]; `None` there (the
/// default) keeps the structure purely in-memory.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL segments, manifests and run files.
    /// Created on open if missing.  One directory per service.
    pub dir: PathBuf,
    /// Record appends grouped per `fsync` (minimum 1 = sync every record).
    /// A crash loses at most the un-synced suffix.
    pub fsync_interval: usize,
    /// Retry budget for transient append/fsync errors.
    pub retry: RetryPolicy,
    /// Behavior once the retry budget is exhausted.
    pub degrade: DegradeMode,
    /// Filesystem implementation; `None` uses [`RealVfs`].  Tests inject
    /// [`crate::vfs::FaultVfs`] here.
    pub vfs: Option<Arc<dyn Vfs>>,
}

impl PartialEq for DurabilityConfig {
    fn eq(&self, other: &Self) -> bool {
        let same_vfs = match (&self.vfs, &other.vfs) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.dir == other.dir
            && self.fsync_interval == other.fsync_interval
            && self.retry == other.retry
            && self.degrade == other.degrade
            && same_vfs
    }
}

impl DurabilityConfig {
    /// Durability under `dir` with the default fsync batching.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync_interval: DEFAULT_FSYNC_INTERVAL,
            retry: RetryPolicy::default(),
            degrade: DegradeMode::default(),
            vfs: None,
        }
    }

    /// Set the fsync batching interval (clamped to a minimum of 1).
    pub fn fsync_interval(mut self, records: usize) -> Self {
        self.fsync_interval = records.max(1);
        self
    }

    /// Set the transient-IO retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the persistent-failure behavior.
    pub fn degrade(mut self, degrade: DegradeMode) -> Self {
        self.degrade = degrade;
        self
    }

    /// Route all filesystem operations through `vfs` (a test seam).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = Some(vfs);
        self
    }

    /// The effective filesystem implementation.
    pub(crate) fn vfs_impl(&self) -> Arc<dyn Vfs> {
        self.vfs.clone().unwrap_or_else(|| Arc::new(RealVfs))
    }
}

/// Lifetime durability counters (see [`crate::AdmittedLsm::durability_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended (one per submitted batch).
    pub wal_records: u64,
    /// `fsync` calls issued on WAL segments.
    pub wal_syncs: u64,
    /// Transient IO errors absorbed by retry (appends + syncs).
    pub wal_retries: u64,
    /// Snapshots (manifest + runs) written.
    pub snapshots: u64,
    /// Run files carried over unchanged from the previous generation
    /// instead of being rewritten (incremental snapshots).
    pub runs_reused: u64,
    /// Garbage-collection removals (or whole sweeps) that failed.
    pub gc_failures: u64,
    /// Sequence number of the newest durable manifest (0 = none yet).
    pub manifest_seq: u64,
    /// Sticky health flag: the pipeline hit a persistent IO failure under
    /// [`DegradeMode::DegradeToVolatile`] and is no longer logging.
    pub degraded: bool,
}

/// What [`crate::AdmittedLsm::open_durable`] found and replayed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the manifest restored from (`None` = fresh dir).
    pub manifest_seq: Option<u64>,
    /// WAL records replayed through the admission path.
    pub replayed_batches: u64,
    /// Bytes of torn / corrupt WAL tail truncated (never replayed).
    pub torn_bytes: u64,
    /// Newer manifests skipped because they failed validation.
    pub corrupt_manifests_skipped: u64,
    /// A previous incarnation degraded to volatile before this recovery
    /// (its `DEGRADED` marker was found, reported, and cleared).
    pub prior_degraded: bool,
}

// ----------------------------------------------------------------------
// Checksums and little-endian framing helpers
// ----------------------------------------------------------------------

/// FNV-1a 64-bit — cheap, dependency-free, and plenty for torn-write
/// detection (this is not an adversarial setting).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> LsmError {
    LsmError::Durability {
        context: format!("{context} {}: {e}", path.display()),
    }
}

fn corrupt(context: &str, path: &Path) -> LsmError {
    LsmError::Durability {
        context: format!("{context} {}", path.display()),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A little-endian cursor over a byte slice; `None` means truncated input.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

// ----------------------------------------------------------------------
// File naming
// ----------------------------------------------------------------------

/// `wal-<seq>.log`: the segment receiving records while manifest `seq` is
/// the newest durable snapshot.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("MANIFEST-{seq}"))
}

fn run_file_name(seq: u64, shard: usize, level: usize) -> String {
    format!("run-{seq}-{shard}-{level}.bin")
}

fn run_path(dir: &Path, seq: u64, shard: usize, level: usize) -> PathBuf {
    dir.join(run_file_name(seq, shard, level))
}

/// Path of the sticky degradation marker.
pub(crate) fn degraded_marker_path(dir: &Path) -> PathBuf {
    dir.join(DEGRADED_MARKER)
}

/// Parse `prefix<seq>suffix` file names back to their sequence number.
fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Durability of the rename/create itself: sync the directory entry.
fn sync_dir(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<()> {
    vfs.sync_dir(dir)
        .map_err(|e| io_err("sync directory", dir, e))
}

// ----------------------------------------------------------------------
// WAL records
// ----------------------------------------------------------------------

/// Frame one batch: `magic | payload_len | fnv64(payload) | payload`,
/// payload = the ops as `(encoded_key, value)` pairs.  The encoded key
/// carries the tombstone bit, so the op kind round-trips exactly.
///
/// Frames into a caller-provided scratch buffer (cleared first) with the
/// checksum patched in after the payload is in place, so the writer's
/// steady state allocates nothing per record — no intermediate payload
/// vector, no fresh frame vector.
fn encode_record_into(batch: &UpdateBatch, out: &mut Vec<u8>) {
    let payload_len = batch.len() * 8;
    out.clear();
    out.reserve(16 + payload_len);
    put_u32(out, RECORD_MAGIC);
    put_u32(out, payload_len as u32);
    put_u64(out, 0); // checksum placeholder, patched below
    for op in batch.ops() {
        let (k, v) = op.encode();
        put_u32(out, k);
        put_u32(out, v);
    }
    let checksum = fnv1a(&out[16..]);
    out[8..16].copy_from_slice(&checksum.to_le_bytes());
}

fn decode_payload(payload: &[u8]) -> UpdateBatch {
    let mut batch = UpdateBatch::with_capacity(payload.len() / 8);
    let mut cur = Cursor::new(payload);
    while let (Some(k), Some(v)) = (cur.u32(), cur.u32()) {
        if is_tombstone(k) {
            batch.delete(original_key(k));
        } else {
            batch.insert(original_key(k), v);
        }
    }
    batch
}

/// Outcome of scanning one WAL segment front to back.
#[derive(Debug)]
pub struct SegmentScan {
    /// The decoded records of the valid prefix, in append order.
    pub records: Vec<UpdateBatch>,
    /// Byte offset just past each valid record (parallel to `records`) —
    /// the legal truncation points of this segment.
    pub record_ends: Vec<u64>,
    /// Length of the valid prefix; equals the file length iff the tail is
    /// clean.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn or corrupt tail).
    pub torn_bytes: u64,
}

/// Scan a segment, stopping at the first frame that is short, has a bad
/// magic, an oversized or misaligned length, a checksum mismatch, or an
/// empty payload.  Everything after that point is tail, not data.
pub fn scan_segment(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<SegmentScan> {
    let bytes = vfs
        .read(path)
        .map_err(|e| io_err("read segment", path, e))?;
    let mut cur = Cursor::new(&bytes);
    let mut scan = SegmentScan {
        records: Vec::new(),
        record_ends: Vec::new(),
        valid_len: 0,
        torn_bytes: 0,
    };
    loop {
        let header = (cur.u32(), cur.u32(), cur.u64());
        let (Some(magic), Some(len), Some(checksum)) = header else {
            break;
        };
        let len = len as usize;
        if magic != RECORD_MAGIC || len == 0 || !len.is_multiple_of(8) || len > MAX_RECORD_PAYLOAD {
            break;
        }
        let Some(payload) = cur.take(len) else {
            break;
        };
        if fnv1a(payload) != checksum {
            break;
        }
        scan.records.push(decode_payload(payload));
        scan.record_ends.push(cur.pos as u64);
        scan.valid_len = cur.pos as u64;
    }
    scan.torn_bytes = bytes.len() as u64 - scan.valid_len;
    Ok(scan)
}

/// The active WAL segment: an append-only record writer with grouped
/// `fsync`, bounded retry on transient IO errors, and write-failure
/// containment (a failed append truncates the file back to the last good
/// record boundary so later records stay readable).
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Bytes known to hold whole, well-formed records.
    valid_len: u64,
    /// Bytes known to be on stable storage (`<= valid_len`).
    synced_len: u64,
    fsync_interval: usize,
    /// Records appended since the last `fsync`.
    unsynced: usize,
    retry: RetryPolicy,
    /// Lifetime records appended through this writer.
    pub(crate) records: u64,
    /// Lifetime `fsync` calls issued by this writer.
    pub(crate) syncs: u64,
    /// Lifetime transient-error retries (appends + syncs).
    pub(crate) retries: u64,
    /// Set when a failed append could not be rolled back; all later
    /// appends are refused (the segment's tail state is unknown).
    broken: bool,
    /// Set by [`Wal::seal`]: the pipeline degraded to volatile and this
    /// segment refuses further appends.
    sealed: bool,
    /// Reusable frame buffer for [`Wal::append`]: every record is encoded
    /// into this scratch, so steady-state appends allocate nothing.
    scratch: Vec<u8>,
}

impl Wal {
    /// Create (truncate) a fresh segment at `path`.
    pub fn create(
        vfs: &Arc<dyn Vfs>,
        path: PathBuf,
        fsync_interval: usize,
        retry: RetryPolicy,
    ) -> Result<Self> {
        let file = vfs
            .open_write(&path, true)
            .map_err(|e| io_err("create segment", &path, e))?;
        Ok(Wal {
            file,
            path,
            valid_len: 0,
            synced_len: 0,
            fsync_interval: fsync_interval.max(1),
            unsynced: 0,
            retry,
            records: 0,
            syncs: 0,
            retries: 0,
            broken: false,
            sealed: false,
            scratch: Vec::new(),
        })
    }

    /// Re-open an existing segment for appending, physically truncating it
    /// to `valid_len` first (recovery discards the torn tail for good).
    pub fn open_append(
        vfs: &Arc<dyn Vfs>,
        path: PathBuf,
        fsync_interval: usize,
        valid_len: u64,
        retry: RetryPolicy,
    ) -> Result<Self> {
        let mut file = vfs
            .open_write(&path, false)
            .map_err(|e| io_err("open segment", &path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("truncate segment", &path, e))?;
        file.seek_start(valid_len)
            .map_err(|e| io_err("seek segment", &path, e))?;
        Ok(Wal {
            file,
            path,
            valid_len,
            synced_len: valid_len,
            fsync_interval: fsync_interval.max(1),
            unsynced: 0,
            retry,
            records: 0,
            syncs: 0,
            retries: 0,
            broken: false,
            sealed: false,
            scratch: Vec::new(),
        })
    }

    /// Append one batch as a framed record, syncing every
    /// `fsync_interval`-th append.  Transient write errors are rolled back
    /// and retried per the [`RetryPolicy`]; an error return means the
    /// record is *not* in the log (a rejected submit can never replay).
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<()> {
        if self.broken {
            return Err(corrupt(
                "segment writer disabled after failed append",
                &self.path,
            ));
        }
        if self.sealed {
            return Err(corrupt("segment sealed after degradation", &self.path));
        }
        // Frame into the writer's scratch: no per-record allocation.  The
        // buffer is taken out and handed back around the IO so error paths
        // cannot leak it.
        let mut record = std::mem::take(&mut self.scratch);
        encode_record_into(batch, &mut record);
        let result = self.append_record(&record);
        self.scratch = record;
        result
    }

    /// Write one already-framed record, retrying transient errors and
    /// rolling the file back to the last good boundary on failure.
    fn append_record(&mut self, record: &[u8]) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.file.write_all(record) {
                Ok(()) => break,
                Err(e) => {
                    // Roll the file back to the last good boundary so a
                    // partial frame cannot sit in front of a retried or
                    // future record.
                    if self.file.set_len(self.valid_len).is_err()
                        || self.file.seek_start(self.valid_len).is_err()
                    {
                        self.broken = true;
                        return Err(io_err("append record to", &self.path, e));
                    }
                    attempt += 1;
                    if attempt >= self.retry.attempts.max(1) {
                        return Err(io_err("append record to", &self.path, e));
                    }
                    self.retries += 1;
                    self.retry.pause(attempt - 1);
                }
            }
        }
        self.valid_len += record.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.fsync_interval {
            if let Err(e) = self.sync() {
                // The sync failure fails this append, so the caller will
                // reject the submit — roll the record back out of the log
                // so it can never replay.
                let rollback = self.valid_len - record.len() as u64;
                if self.file.set_len(rollback).is_err() || self.file.seek_start(rollback).is_err() {
                    self.broken = true;
                } else {
                    self.valid_len = rollback;
                    self.records -= 1;
                    self.unsynced -= 1;
                }
                return Err(e);
            }
        }
        Ok(())
    }

    /// Force the segment to stable storage now, retrying transient errors.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match self.file.sync_data() {
                Ok(()) => break,
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.retry.attempts.max(1) {
                        return Err(io_err("sync segment", &self.path, e));
                    }
                    self.retries += 1;
                    self.retry.pause(attempt - 1);
                }
            }
        }
        self.unsynced = 0;
        self.syncs += 1;
        self.synced_len = self.valid_len;
        Ok(())
    }

    /// Seal the segment at the last durable record boundary
    /// ([`DegradeMode::DegradeToVolatile`]): truncate the un-synced suffix
    /// — records that were never acknowledged as durable — and refuse all
    /// later appends.  Best-effort: the storage is already failing, so IO
    /// errors here are swallowed (recovery's scan tolerates whatever tail
    /// remains).  Returns the durable boundary.
    pub(crate) fn seal(&mut self) -> u64 {
        if !self.sealed {
            self.sealed = true;
            if self.file.set_len(self.synced_len).is_ok() {
                let _ = self.file.sync_all();
                self.valid_len = self.synced_len;
                self.unsynced = 0;
            }
        }
        self.synced_len
    }

    /// Whether [`Wal::seal`] has been called.
    pub(crate) fn is_sealed(&self) -> bool {
        self.sealed
    }
}

// ----------------------------------------------------------------------
// Snapshots: manifest + run files
// ----------------------------------------------------------------------

/// One shard's contribution to a snapshot: its occupied levels as raw
/// `(level index, encoded keys, values)` dumps.
#[derive(Debug)]
pub(crate) struct SnapshotShard {
    /// Occupied levels, smallest index first.
    pub levels: Vec<(usize, Vec<EncodedKey>, Vec<Value>)>,
}

/// A run file referenced by a manifest: which generation physically wrote
/// it (`file_seq` — older than the manifest's own seq when the run was
/// carried over unchanged), plus the length and digest that let the next
/// snapshot skip rewriting an identical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunRef {
    pub file_seq: u64,
    pub len: u64,
    pub digest: u64,
}

/// Live run files keyed by `(shard, level)`.
pub(crate) type RunMap = HashMap<(usize, usize), RunRef>;

/// Identity of a snapshot generation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SnapshotMeta {
    pub seq: u64,
    pub epoch: u64,
    pub batch_size: usize,
}

/// A validated snapshot loaded back from disk.
#[derive(Debug)]
pub(crate) struct LoadedSnapshot {
    pub seq: u64,
    pub epoch: u64,
    pub batch_size: usize,
    pub split_points: Vec<Key>,
    pub shards: Vec<SnapshotShard>,
    /// The run files this manifest references (seeds the next snapshot's
    /// reuse check).
    pub run_refs: RunMap,
    /// Newer manifests skipped because they failed validation.
    pub corrupt_skipped: u64,
}

fn encode_run(keys: &[EncodedKey], values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + keys.len() * 8);
    put_u32(&mut out, RUN_MAGIC);
    put_u32(&mut out, 0); // reserved
    put_u64(&mut out, keys.len() as u64);
    for &k in keys {
        put_u32(&mut out, k);
    }
    for &v in values {
        put_u32(&mut out, v);
    }
    out
}

fn decode_run(bytes: &[u8], path: &Path) -> Result<(Vec<EncodedKey>, Vec<Value>)> {
    let mut cur = Cursor::new(bytes);
    let header = (cur.u32(), cur.u32(), cur.u64());
    let (Some(RUN_MAGIC), Some(_), Some(len)) = header else {
        return Err(corrupt("bad run header in", path));
    };
    let len = usize::try_from(len).map_err(|_| corrupt("oversized run in", path))?;
    let mut keys = Vec::with_capacity(len);
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        keys.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated run keys in", path))?,
        );
    }
    for _ in 0..len {
        values.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated run values in", path))?,
        );
    }
    if cur.pos != bytes.len() {
        return Err(corrupt("trailing bytes in run", path));
    }
    Ok((keys, values))
}

/// Write snapshot generation `meta.seq`: every *changed* run file (synced),
/// then the manifest via tmp-write + fsync + atomic rename + dir sync.
/// A level whose encoded run matches `prev` by length and digest reuses
/// the already-durable file from the earlier generation instead of
/// rewriting it.  Only the rename makes the generation visible, so a
/// crash anywhere in here leaves the previous generation authoritative.
/// Returns the new generation's run map and how many runs were reused.
pub(crate) fn write_snapshot(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    meta: SnapshotMeta,
    split_points: &[Key],
    shards: &[SnapshotShard],
    prev: &RunMap,
) -> Result<(RunMap, u64)> {
    let mut runs = RunMap::new();
    let mut reused = 0u64;
    let mut manifest = Vec::new();
    put_u32(&mut manifest, MANIFEST_MAGIC);
    put_u32(&mut manifest, MANIFEST_VERSION);
    put_u64(&mut manifest, meta.seq);
    put_u64(&mut manifest, meta.epoch);
    put_u64(&mut manifest, meta.batch_size as u64);
    put_u32(&mut manifest, split_points.len() as u32);
    for &p in split_points {
        put_u32(&mut manifest, p);
    }
    put_u32(&mut manifest, shards.len() as u32);
    for (s, shard) in shards.iter().enumerate() {
        put_u32(&mut manifest, shard.levels.len() as u32);
        for (i, keys, values) in &shard.levels {
            let run = encode_run(keys, values);
            let digest = fnv1a(&run);
            let len = keys.len() as u64;
            let carried = prev
                .get(&(s, *i))
                .copied()
                .filter(|r| r.digest == digest && r.len == len);
            let run_ref = match carried {
                Some(r) => {
                    reused += 1;
                    r
                }
                None => {
                    let path = run_path(dir, meta.seq, s, *i);
                    vfs.write(&path, &run)
                        .map_err(|e| io_err("write run", &path, e))?;
                    vfs.sync_file(&path)
                        .map_err(|e| io_err("sync run", &path, e))?;
                    RunRef {
                        file_seq: meta.seq,
                        len,
                        digest,
                    }
                }
            };
            runs.insert((s, *i), run_ref);
            put_u32(&mut manifest, *i as u32);
            put_u64(&mut manifest, run_ref.file_seq);
            put_u64(&mut manifest, run_ref.len);
            put_u64(&mut manifest, run_ref.digest);
        }
    }
    let trailer = fnv1a(&manifest);
    put_u64(&mut manifest, trailer);

    let tmp = dir.join(format!("MANIFEST-{}.tmp", meta.seq));
    let path = manifest_path(dir, meta.seq);
    vfs.write(&tmp, &manifest)
        .map_err(|e| io_err("write manifest", &tmp, e))?;
    vfs.sync_file(&tmp)
        .map_err(|e| io_err("sync manifest", &tmp, e))?;
    vfs.rename(&tmp, &path)
        .map_err(|e| io_err("publish manifest", &path, e))?;
    sync_dir(vfs, dir)?;
    Ok((runs, reused))
}

/// Parse and fully validate one manifest generation, loading its runs.
fn load_manifest(vfs: &Arc<dyn Vfs>, dir: &Path, seq: u64) -> Result<LoadedSnapshot> {
    let path = manifest_path(dir, seq);
    let bytes = vfs
        .read(&path)
        .map_err(|e| io_err("read manifest", &path, e))?;
    if bytes.len() < 8 {
        return Err(corrupt("short manifest", &path));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    if fnv1a(body) != u64::from_le_bytes(trailer.try_into().unwrap()) {
        return Err(corrupt("manifest checksum mismatch in", &path));
    }
    let mut cur = Cursor::new(body);
    let header = (cur.u32(), cur.u32(), cur.u64(), cur.u64(), cur.u64());
    let (Some(MANIFEST_MAGIC), Some(MANIFEST_VERSION), Some(file_seq), Some(epoch), Some(bs)) =
        header
    else {
        return Err(corrupt("bad manifest header in", &path));
    };
    if file_seq != seq {
        return Err(corrupt("manifest sequence mismatch in", &path));
    }
    let nsplit = cur
        .u32()
        .ok_or_else(|| corrupt("truncated manifest", &path))?;
    let mut split_points = Vec::with_capacity(nsplit as usize);
    for _ in 0..nsplit {
        split_points.push(
            cur.u32()
                .ok_or_else(|| corrupt("truncated manifest", &path))?,
        );
    }
    let nshards = cur
        .u32()
        .ok_or_else(|| corrupt("truncated manifest", &path))?;
    let mut shards = Vec::with_capacity(nshards as usize);
    let mut run_refs = RunMap::new();
    for s in 0..nshards as usize {
        let nlevels = cur
            .u32()
            .ok_or_else(|| corrupt("truncated manifest", &path))?;
        let mut levels = Vec::with_capacity(nlevels as usize);
        for _ in 0..nlevels {
            let entry = (cur.u32(), cur.u64(), cur.u64(), cur.u64());
            let (Some(i), Some(run_seq), Some(len), Some(digest)) = entry else {
                return Err(corrupt("truncated manifest", &path));
            };
            let rpath = run_path(dir, run_seq, s, i as usize);
            let run = vfs
                .read(&rpath)
                .map_err(|e| io_err("read run", &rpath, e))?;
            if fnv1a(&run) != digest {
                return Err(corrupt("run checksum mismatch in", &rpath));
            }
            let (keys, values) = decode_run(&run, &rpath)?;
            if keys.len() as u64 != len {
                return Err(corrupt("run length mismatch in", &rpath));
            }
            run_refs.insert(
                (s, i as usize),
                RunRef {
                    file_seq: run_seq,
                    len,
                    digest,
                },
            );
            levels.push((i as usize, keys, values));
        }
        shards.push(SnapshotShard { levels });
    }
    if cur.pos != body.len() {
        return Err(corrupt("trailing bytes in manifest", &path));
    }
    Ok(LoadedSnapshot {
        seq,
        epoch,
        batch_size: bs as usize,
        split_points,
        shards,
        run_refs,
        corrupt_skipped: 0,
    })
}

/// All manifest sequence numbers present in `dir`, descending.
fn manifest_seqs(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<Vec<u64>> {
    let mut seqs: Vec<u64> = vfs
        .read_dir_names(dir)
        .map_err(|e| io_err("list durability dir", dir, e))?
        .iter()
        .filter_map(|name| parse_seq(name, "MANIFEST-", ""))
        .collect();
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Load the newest manifest that fully validates, skipping (and counting)
/// corrupt newer ones.  `Ok(None)` means no usable snapshot exists.
pub(crate) fn load_newest_snapshot(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
) -> Result<Option<LoadedSnapshot>> {
    let mut skipped = 0u64;
    for seq in manifest_seqs(vfs, dir)? {
        match load_manifest(vfs, dir, seq) {
            Ok(mut snapshot) => {
                snapshot.corrupt_skipped = skipped;
                return Ok(Some(snapshot));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// WAL segments with sequence number `>= min_seq`, ascending — the replay
/// order (older generations first, records within a segment in append
/// order).
pub(crate) fn list_segments(
    vfs: &Arc<dyn Vfs>,
    dir: &Path,
    min_seq: u64,
) -> Result<Vec<(u64, PathBuf)>> {
    let mut segments: Vec<(u64, PathBuf)> = vfs
        .read_dir_names(dir)
        .map_err(|e| io_err("list durability dir", dir, e))?
        .iter()
        .filter_map(|name| {
            let seq = parse_seq(name, "wal-", ".log")?;
            (seq >= min_seq).then(|| (seq, segment_path(dir, seq)))
        })
        .collect();
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Remove everything belonging to generations older than `keep_seq` (plus
/// stray `.tmp` manifests), *except* run files the live manifest still
/// references — incremental snapshots carry runs across generations.
/// Failures no longer vanish: the returned count feeds
/// [`DurabilityStats::gc_failures`] so operators can alarm on a disk that
/// refuses deletes.  The stale files themselves stay harmless (older
/// manifests are shadowed, older segments replay idempotently) and are
/// retried by the next snapshot's sweep.
pub(crate) fn collect_garbage(vfs: &Arc<dyn Vfs>, dir: &Path, keep_seq: u64, live: &RunMap) -> u64 {
    let live_names: HashSet<String> = live
        .iter()
        .map(|(&(s, i), r)| run_file_name(r.file_seq, s, i))
        .collect();
    let names = match vfs.read_dir_names(dir) {
        Ok(names) => names,
        Err(_) => return 1, // the whole sweep failed
    };
    let mut failures = 0u64;
    for name in names {
        let stale = name.ends_with(".tmp")
            || parse_seq(&name, "MANIFEST-", "").is_some_and(|s| s < keep_seq)
            || parse_seq(&name, "wal-", ".log").is_some_and(|s| s < keep_seq)
            || (!live_names.contains(&name)
                && name
                    .strip_prefix("run-")
                    .and_then(|rest| rest.split('-').next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .is_some_and(|s| s < keep_seq));
        if stale && vfs.remove_file(&dir.join(&name)).is_err() {
            failures += 1;
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Fault, FaultOp, FaultVfs};
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gpu-lsm-wal-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn real() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }

    fn batch(ops: &[(u32, Option<u32>)]) -> UpdateBatch {
        let mut b = UpdateBatch::new();
        for &(k, v) in ops {
            match v {
                Some(v) => b.insert(k, v),
                None => b.delete(k),
            };
        }
        b
    }

    fn meta(seq: u64, epoch: u64, batch_size: usize) -> SnapshotMeta {
        SnapshotMeta {
            seq,
            epoch,
            batch_size,
        }
    }

    #[test]
    fn records_round_trip_including_tombstones() {
        let dir = temp_dir("roundtrip");
        let vfs = real();
        let path = segment_path(&dir, 0);
        let b1 = batch(&[(1, Some(10)), (2, None), (3, Some(30))]);
        let b2 = batch(&[(2, Some(20))]);
        let mut wal = Wal::create(&vfs, path.clone(), 1, RetryPolicy::none()).unwrap();
        wal.append(&b1).unwrap();
        wal.append(&b2).unwrap();
        assert_eq!(wal.records, 2);
        assert_eq!(wal.syncs, 2); // interval 1 syncs every record
        let scan = scan_segment(&vfs, &path).unwrap();
        assert_eq!(scan.records, vec![b1, b2]);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.record_ends.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_batching_groups_appends() {
        let dir = temp_dir("fsync");
        let vfs = real();
        let mut wal = Wal::create(&vfs, segment_path(&dir, 0), 4, RetryPolicy::none()).unwrap();
        for i in 0..10u32 {
            wal.append(&batch(&[(i, Some(i))])).unwrap();
        }
        assert_eq!(wal.syncs, 2); // after records 4 and 8
        wal.sync().unwrap();
        assert_eq!(wal.syncs, 3);
        wal.sync().unwrap(); // nothing new: no extra fsync
        assert_eq!(wal.syncs, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_skipped() {
        let dir = temp_dir("torn");
        let vfs = real();
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(&vfs, path.clone(), 1, RetryPolicy::none()).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap();
        wal.append(&batch(&[(2, Some(2))])).unwrap();
        drop(wal);
        let clean = scan_segment(&vfs, &path).unwrap();
        // Cut mid-way through the second record: only the first survives.
        let cut = (clean.record_ends[0] + clean.record_ends[1]) / 2;
        fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let scan = scan_segment(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, clean.record_ends[0]);
        assert_eq!(scan.torn_bytes, cut - clean.record_ends[0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checksum_truncates_from_that_record() {
        let dir = temp_dir("corrupt");
        let vfs = real();
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(&vfs, path.clone(), 1, RetryPolicy::none()).unwrap();
        for i in 0..3u32 {
            wal.append(&batch(&[(i, Some(i))])).unwrap();
        }
        drop(wal);
        let clean = scan_segment(&vfs, &path).unwrap();
        // Flip one payload byte inside the second record.
        let mut bytes = fs::read(&path).unwrap();
        let offset = clean.record_ends[0] as usize + 17;
        bytes[offset] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_segment(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_append_and_sync_faults_are_retried_invisibly() {
        let dir = temp_dir("retry");
        let path = segment_path(&dir, 0);
        let fault = FaultVfs::scripted(vec![
            Fault::transient(FaultOp::Append, 1, std::io::ErrorKind::StorageFull),
            Fault::transient(FaultOp::Sync, 1, std::io::ErrorKind::Other),
            Fault::short_write(FaultOp::Append, 3, 5),
        ]);
        let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
        let retry = RetryPolicy::new(3, Duration::ZERO);
        let mut wal = Wal::create(&vfs, path.clone(), 1, retry).unwrap();
        for i in 0..4u32 {
            wal.append(&batch(&[(i, Some(i))])).unwrap();
        }
        assert!(
            wal.retries >= 3,
            "all three faults absorbed: {}",
            wal.retries
        );
        assert_eq!(wal.records, 4);
        // The log is byte-clean despite the torn intermediate write.
        let scan = scan_segment(&real(), &path).unwrap();
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.torn_bytes, 0);
        assert!(fault.injected_faults() >= 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exhausted_retry_fails_the_append_and_rolls_back() {
        let dir = temp_dir("exhaust");
        let path = segment_path(&dir, 0);
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::scripted(vec![Fault::transient(
            FaultOp::Append,
            1,
            std::io::ErrorKind::StorageFull,
        )]));
        let mut wal = Wal::create(&vfs, path.clone(), 1, RetryPolicy::none()).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap();
        let err = wal.append(&batch(&[(2, Some(2))])).unwrap_err();
        assert!(matches!(err, LsmError::Durability { .. }));
        // The writer survives the failure and the log stays clean.
        wal.append(&batch(&[(3, Some(3))])).unwrap();
        let scan = scan_segment(&real(), &path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_interval_sync_rolls_back_the_record_and_seal_truncates() {
        let dir = temp_dir("sealsync");
        let path = segment_path(&dir, 0);
        let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::scripted(vec![Fault::permanent(
            FaultOp::Sync,
            0,
            std::io::ErrorKind::Other,
        )]));
        let mut wal = Wal::create(&vfs, path.clone(), 2, RetryPolicy::none()).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap(); // below interval: no sync yet
        let err = wal.append(&batch(&[(2, Some(2))])).unwrap_err();
        assert!(matches!(err, LsmError::Durability { .. }));
        // The rejected record was rolled back; the acked one remains.
        let scan = scan_segment(&real(), &path).unwrap();
        assert_eq!(scan.records.len(), 1);
        // Sealing truncates to the durable boundary: nothing was synced.
        assert_eq!(wal.seal(), 0);
        assert!(wal.is_sealed());
        assert!(wal.append(&batch(&[(3, Some(3))])).is_err());
        let scan = scan_segment(&real(), &path).unwrap();
        assert_eq!(scan.records.len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_round_trips_and_newest_valid_wins() {
        let dir = temp_dir("snapshot");
        let vfs = real();
        let shard = SnapshotShard {
            levels: vec![(0, vec![2, 5, 9, 12], vec![1, 2, 3, 4])],
        };
        write_snapshot(&vfs, &dir, meta(1, 0, 4), &[], &[shard], &RunMap::new()).unwrap();
        let shard2 = SnapshotShard {
            levels: vec![(1, vec![2, 5, 9, 12, 14, 17, 21, 25], vec![0; 8])],
        };
        write_snapshot(
            &vfs,
            &dir,
            meta(2, 3, 4),
            &[1000],
            &[shard2, SnapshotShard { levels: vec![] }],
            &RunMap::new(),
        )
        .unwrap();
        let loaded = load_newest_snapshot(&vfs, &dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.epoch, 3);
        assert_eq!(loaded.batch_size, 4);
        assert_eq!(loaded.split_points, vec![1000]);
        assert_eq!(loaded.shards.len(), 2);
        assert_eq!(loaded.shards[0].levels[0].0, 1);
        assert_eq!(loaded.shards[0].levels[0].1.len(), 8);
        assert_eq!(loaded.corrupt_skipped, 0);
        assert_eq!(loaded.run_refs[&(0, 1)].file_seq, 2);

        // Corrupt the newest manifest: recovery falls back to seq 1.
        let mut bytes = fs::read(manifest_path(&dir, 2)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(manifest_path(&dir, 2), &bytes).unwrap();
        let loaded = load_newest_snapshot(&vfs, &dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 1);
        assert_eq!(loaded.corrupt_skipped, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unchanged_runs_are_reused_across_generations() {
        let dir = temp_dir("incremental");
        let vfs = real();
        let stable = (0usize, vec![2u32, 5, 9, 12], vec![1u32, 2, 3, 4]);
        let shards1 = [SnapshotShard {
            levels: vec![stable.clone(), (1, vec![14, 17], vec![7, 8])],
        }];
        let (runs1, reused1) =
            write_snapshot(&vfs, &dir, meta(1, 0, 2), &[], &shards1, &RunMap::new()).unwrap();
        assert_eq!(reused1, 0);
        // Generation 2: level 0 unchanged, level 1 changed.
        let shards2 = [SnapshotShard {
            levels: vec![stable.clone(), (1, vec![14, 17, 21, 25], vec![7, 8, 9, 10])],
        }];
        let (runs2, reused2) =
            write_snapshot(&vfs, &dir, meta(2, 0, 2), &[], &shards2, &runs1).unwrap();
        assert_eq!(reused2, 1);
        assert_eq!(runs2[&(0, 0)].file_seq, 1, "level 0 carried over");
        assert_eq!(runs2[&(0, 1)].file_seq, 2, "level 1 rewritten");
        assert!(!run_path(&dir, 2, 0, 0).exists());
        // GC of generation 1 must spare the carried-over run.
        assert_eq!(collect_garbage(&vfs, &dir, 2, &runs2), 0);
        assert!(run_path(&dir, 1, 0, 0).exists());
        assert!(!run_path(&dir, 1, 0, 1).exists());
        assert!(!manifest_path(&dir, 1).exists());
        // And the surviving generation still loads in full.
        let loaded = load_newest_snapshot(&vfs, &dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.shards[0].levels[0].1, stable.1);
        assert_eq!(loaded.run_refs[&(0, 0)].file_seq, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_collection_keeps_current_generation() {
        let dir = temp_dir("gc");
        let vfs = real();
        let empty = || SnapshotShard {
            levels: vec![(0, vec![3], vec![7])],
        };
        let (_, _) =
            write_snapshot(&vfs, &dir, meta(1, 0, 1), &[], &[empty()], &RunMap::new()).unwrap();
        let (runs2, _) =
            write_snapshot(&vfs, &dir, meta(2, 0, 1), &[], &[empty()], &RunMap::new()).unwrap();
        drop(Wal::create(&vfs, segment_path(&dir, 1), 1, RetryPolicy::none()).unwrap());
        drop(Wal::create(&vfs, segment_path(&dir, 2), 1, RetryPolicy::none()).unwrap());
        assert_eq!(collect_garbage(&vfs, &dir, 2, &runs2), 0);
        assert!(!manifest_path(&dir, 1).exists());
        assert!(!segment_path(&dir, 1).exists());
        assert!(!run_path(&dir, 1, 0, 0).exists());
        assert!(manifest_path(&dir, 2).exists());
        assert!(segment_path(&dir, 2).exists());
        assert!(run_path(&dir, 2, 0, 0).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_failures_are_counted_not_swallowed() {
        let dir = temp_dir("gcfail");
        let vfs = real();
        let shard = || SnapshotShard {
            levels: vec![(0, vec![3], vec![7])],
        };
        write_snapshot(&vfs, &dir, meta(1, 0, 1), &[], &[shard()], &RunMap::new()).unwrap();
        let (runs2, _) =
            write_snapshot(&vfs, &dir, meta(2, 0, 1), &[], &[shard()], &RunMap::new()).unwrap();
        let faulty: Arc<dyn Vfs> = Arc::new(FaultVfs::scripted(vec![Fault::permanent(
            FaultOp::Remove,
            0,
            std::io::ErrorKind::PermissionDenied,
        )]));
        let failures = collect_garbage(&faulty, &dir, 2, &runs2);
        assert!(
            failures >= 2,
            "manifest-1 and run-1 both failed: {failures}"
        );
        assert!(manifest_path(&dir, 1).exists(), "nothing actually removed");
        // A healthy sweep afterwards drains the backlog.
        assert_eq!(collect_garbage(&vfs, &dir, 2, &runs2), 0);
        assert!(!manifest_path(&dir, 1).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_truncates_the_torn_tail_physically() {
        let dir = temp_dir("reopen");
        let vfs = real();
        let path = segment_path(&dir, 0);
        let mut wal = Wal::create(&vfs, path.clone(), 1, RetryPolicy::none()).unwrap();
        wal.append(&batch(&[(1, Some(1))])).unwrap();
        let keep = wal.valid_len;
        drop(wal);
        // Simulate a torn write after the good record.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);
        let mut wal = Wal::open_append(&vfs, path.clone(), 1, keep, RetryPolicy::none()).unwrap();
        wal.append(&batch(&[(2, Some(2))])).unwrap();
        drop(wal);
        let scan = scan_segment(&vfs, &path).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
