//! The carry-chain compaction path, split into a **planner** and an
//! **executor**.
//!
//! Inserting a batch is a binary-counter increment (paper §III-B): the
//! sorted buffer merges with full levels from level 0 upward until an empty
//! level receives the result.  The old write path interleaved the decision
//! ("which level next?") with the data movement and rebuilt every
//! acceleration structure (Bloom filter, fence array) from the full merged
//! key array at the end.  Here the two concerns are separated:
//!
//! * [`CompactionPlan`] computes the whole cascade **before any data
//!   moves**: which levels participate, where the output lands, how big it
//!   will be, and — via the same lifetime-amortization policy the levels
//!   use — whether the output deserves a Bloom filter at all.
//! * The executor runs the planned merges and maintains the output's
//!   acceleration structures **incrementally**:
//!   - the **fence array** of each merge step is produced by merging the
//!     two inputs' sampled keys with exact positions computed from rank
//!     oracles over the pre-merge runs ([`FenceArray::merge_with`]) — no
//!     resampling pass over the merged array — falling back to a rebuild
//!     only when repeated merging has widened the worst-case search window
//!     past [`FENCE_MERGE_MAX_WINDOW`];
//!   - the **Bloom filter** of the final output reuses the consumed level's
//!     filter where one exists, **re-hashing** only the buffer's keys into
//!     a copy of it (half the hashing of a rebuild; the equal-geometry
//!     OR-union [`BloomFilter::try_union`] exists as a primitive, but a
//!     carry buffer never carries its own filter, so re-hash is the
//!     incremental path here), and falls back to a full rebuild when the
//!     level has no filter or the accumulated load would push the
//!     false-positive rate past [`FILTER_MERGE_MIN_EFFECTIVE_BITS`].
//!
//! Every choice is counted in [`crate::stats::MergeCounters`], so the
//! incremental-vs-rebuilt split is observable from [`crate::LsmStats`].

use gpu_primitives::fence::{FenceArray, DEFAULT_FENCE_INTERVAL};
use gpu_primitives::filter::{config_bits_per_key, BloomFilter};
use gpu_primitives::merge::{merge_pairs_by, merge_pairs_by_into};
use gpu_primitives::search::upper_bound_by;
use gpu_sim::AccessPattern;

use crate::alloc_scope::MergeScopeGuard;
use crate::arena::Storage;
use crate::key::{key_less, original_key, EncodedKey, Value};
use crate::level::{carry_filter_min_len, Level, LevelSet, FILTER_MIN_LEN};
use crate::lsm::GpuLsm;

/// Widest search window tolerated before a merged fence array is rebuilt
/// from the output: each merge step can add one input's window to the
/// other's, so this caps the degradation at two extra probes per search
/// (`4 × 256`-element windows) while keeping the incremental path on every
/// realistic carry depth.
pub const FENCE_MERGE_MAX_WINDOW: usize = 4 * DEFAULT_FENCE_INTERVAL;

/// Minimum effective bits per key an incrementally merged filter may end up
/// with: unions and re-hashes raise a filter's load instead of its size, so
/// below this the false-positive rate no longer earns the skipped searches
/// and the executor rebuilds at full sizing instead.
pub const FILTER_MERGE_MIN_EFFECTIVE_BITS: f64 = 4.0;

/// The planned merge cascade of one batch insertion, computed from the
/// level occupancy alone — no element is read or moved to produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Occupied levels the cascade consumes, smallest first (always the
    /// contiguous run `0..target_level`).
    pub participating: Vec<usize>,
    /// The empty level that receives the merged output.
    pub target_level: usize,
    /// Number of elements in the output (`b · 2^target_level`).
    pub output_len: usize,
    /// Whether the output is a carry-chain resident that a future cascade
    /// will consume (true for batch inserts; bulk rebuilds are long-lived).
    pub transient: bool,
    /// Whether the output should carry a Bloom filter, per the lifetime
    /// policy of [`crate::level`] — decided here so the executor knows
    /// before the final merge whether to maintain one incrementally.
    pub build_filter: bool,
}

impl CompactionPlan {
    /// Plan the cascade for inserting one batch into `levels`: the
    /// participating levels are the occupied prefix (the trailing set bits
    /// of the batch counter), the target is the first empty level.
    pub fn for_insert(levels: &LevelSet, batch_size: usize) -> Self {
        let mut target = 0usize;
        while levels.is_full(target) {
            target += 1;
        }
        let output_len = batch_size << target;
        let min_len = carry_filter_min_len();
        CompactionPlan {
            participating: (0..target).collect(),
            target_level: target,
            output_len,
            transient: true,
            build_filter: config_bits_per_key() > 0 && output_len >= min_len,
        }
    }

    /// Number of merge steps the executor will run.
    pub fn merge_steps(&self) -> usize {
        self.participating.len()
    }

    /// Total elements the cascade's merges read and write (the carry cost
    /// the plan exists to expose before paying it).
    pub fn merged_elements(&self, batch_size: usize) -> usize {
        self.participating
            .iter()
            .map(|&i| 2 * (batch_size << i))
            .sum()
    }
}

impl GpuLsm {
    /// The cascade the *next* batch insertion will run — observability into
    /// the planner without moving any data.
    pub fn plan_next_insert(&self) -> CompactionPlan {
        CompactionPlan::for_insert(&self.levels, self.batch_size())
    }

    /// The carry chain: plan the cascade, execute it, place the output.
    pub(crate) fn push_sorted_buffer(&mut self, keys: Vec<EncodedKey>, values: Vec<Value>) {
        let plan = CompactionPlan::for_insert(&self.levels, self.batch_size());
        let level = self.execute_plan(&plan, keys, values);
        self.levels.place(plan.target_level, level);
        self.num_batches += 1;
    }

    /// Run a planned cascade: merge the sorted buffer with each
    /// participating level in order, maintaining fences across every step
    /// and the filter across the final one, then assemble the output level.
    ///
    /// With the slab arena enabled, every step merges **into a pre-reserved
    /// arena region** instead of a fresh vector: the consumed level's
    /// region and the previous intermediate's region return to the arena
    /// free list as the chain climbs, so after one warm-up cascade per
    /// level the merge inner loop performs no heap allocation at all (the
    /// double-buffering of §III-A; asserted by the counting-allocator
    /// test via [`crate::alloc_scope`]).
    fn execute_plan(
        &mut self,
        plan: &CompactionPlan,
        keys: Vec<EncodedKey>,
        values: Vec<Value>,
    ) -> Level {
        // The buffer's fences: one cheap sampling pass over the sorted
        // batch, merged (not rebuilt) at every subsequent step.
        let mut fences = FenceArray::build_with(keys.len(), DEFAULT_FENCE_INTERVAL, |i| {
            original_key(keys[i])
        });
        let mut filter: Option<BloomFilter> = None;
        let mut keys: Storage = keys.into();
        let mut values: Storage = values.into();

        let steps = plan.merge_steps();
        for (step, &i) in plan.participating.iter().enumerate() {
            let level = self.levels.take(i).expect("planned level is occupied");
            self.merge_activity.record_carry_step();

            // Incremental aux maintenance needs the *pre-merge* runs, so it
            // runs before the data merge consumes them.
            let merged_fences = self.merge_fences(fences.as_ref(), &level, &keys);
            // Only the final step's output survives (intermediates are
            // consumed by the next step), so the filter — whose maintenance
            // costs hashing, unlike the fences — is produced exactly once.
            if step + 1 == steps && plan.build_filter {
                filter = self.merge_filters(&level, &keys);
            }

            // Merge comparing original keys only (status bit ignored), with
            // the more recent buffer as the first argument so it wins ties
            // and the §III-D ordering invariants hold.
            match &self.arena {
                Some(arena) => {
                    let out_len = keys.len() + level.len();
                    let (out_keys, out_values) =
                        self.device().timer().time("insert::merge", || {
                            let _scope = MergeScopeGuard::enter();
                            let mut out_keys = arena.reserve(out_len);
                            let mut out_values = arena.reserve(out_len);
                            merge_pairs_by_into(
                                self.device(),
                                &keys,
                                &values,
                                level.keys(),
                                level.values(),
                                out_keys.as_mut_slice(),
                                out_values.as_mut_slice(),
                                key_less,
                            );
                            (out_keys, out_values)
                        });
                    // Recycle the consumed level's region before the old
                    // intermediate's: the replaced `keys`/`values` drop
                    // right after.
                    drop(level);
                    let old_keys = std::mem::replace(&mut keys, out_keys.into());
                    let old_values = std::mem::replace(&mut values, out_values.into());
                    if step == 0 {
                        self.reclaim_encode_scratch(old_keys, old_values);
                    }
                }
                None => {
                    let (level_keys, level_values) = level.into_parts();
                    let (merged_keys, merged_values) =
                        self.device().timer().time("insert::merge", || {
                            merge_pairs_by(
                                self.device(),
                                &keys,
                                &values,
                                &level_keys,
                                &level_values,
                                key_less,
                            )
                        });
                    let old_keys = std::mem::replace(&mut keys, merged_keys.into());
                    let old_values = std::mem::replace(&mut values, merged_values.into());
                    if step == 0 {
                        self.reclaim_encode_scratch(old_keys, old_values);
                    }
                }
            }

            // Accept the merged fences unless repeated merging widened the
            // worst-case window past tolerance; the rebuild resamples the
            // freshly merged array (an O(len / interval) pass).
            fences = match merged_fences {
                Some(f) if f.max_window() <= FENCE_MERGE_MAX_WINDOW => {
                    self.merge_activity.record_fence(true);
                    Some(f)
                }
                _ => {
                    self.merge_activity.record_fence(false);
                    self.record_fence_rebuild(keys.len());
                    FenceArray::build_with(keys.len(), DEFAULT_FENCE_INTERVAL, |i| {
                        original_key(keys[i])
                    })
                }
            };
        }

        // Filter fallback: the policy wants one but no input could seed it
        // incrementally (or the incremental result was refused) — build at
        // full sizing from the output keys, like the old write path always
        // did.
        if plan.build_filter && filter.is_none() {
            filter =
                BloomFilter::build(keys.iter().map(|&k| original_key(k)), config_bits_per_key());
            if filter.is_some() {
                self.merge_activity.record_filter_rebuild();
                self.record_filter_build(keys.len(), filter.as_ref());
            }
        }

        Level::from_sorted_with_aux(keys, values, filter, fences)
    }

    /// Hand the batch-encode buffers the first merge step just consumed
    /// back to [`GpuLsm::update`]'s scratch, so the next encode reuses the
    /// allocation (arena-backed intermediates fall through untouched).
    fn reclaim_encode_scratch(&mut self, keys: Storage, values: Storage) {
        if let (Storage::Owned(k), Storage::Owned(v)) = (keys, values) {
            self.encode_scratch = (k, v);
        }
    }

    /// Merge the buffer's fences with a consumed level's, translating both
    /// sample sets into exact output positions via rank oracles over the
    /// pre-merge runs (the level's own fence-narrowed searches on its side,
    /// plain binary searches over the buffer on the other).
    ///
    /// Returns `None` when either side has no fences (empty inputs only —
    /// the caller then rebuilds).
    fn merge_fences(
        &self,
        buffer_fences: Option<&FenceArray>,
        level: &Level,
        buffer_keys: &[EncodedKey],
    ) -> Option<FenceArray> {
        let fa = buffer_fences?;
        let fb = level.fences()?;
        let merged = FenceArray::merge_with(
            fa,
            fb,
            |k| level.lower_bound(k),
            |k| upper_bound_by(buffer_keys, &((k << 1) | 1), |a, b| (a >> 1) < (b >> 1)),
        );
        // Traffic of the incremental path: stream both sample arrays, pay
        // one narrowed search per sample for the rank oracles, write the
        // merged samples.
        let kernel = "lsm_fence_merge";
        let metrics = self.device().metrics();
        let samples = (fa.num_samples() + fb.num_samples()) as u64;
        metrics.record_launch(kernel);
        metrics.record_read(kernel, samples * 8, AccessPattern::Coalesced);
        metrics.record_scattered_probes(
            kernel,
            samples * u64::from(level.search_probe_depth().max(1)),
            std::mem::size_of::<EncodedKey>() as u64,
        );
        metrics.record_write(kernel, merged.size_bytes() as u64, AccessPattern::Coalesced);
        Some(merged)
    }

    /// Produce the output's filter from the final merge step's inputs: a
    /// one-sided **re-hash** of only the buffer's keys into a copy of the
    /// consumed level's filter — half the hashing of a rebuild.  The
    /// buffer side never carries a filter of its own (intermediate carry
    /// outputs are consumed before any query sees them), which is also why
    /// the equal-geometry OR-union ([`BloomFilter::try_union`]) is a
    /// primitive for bulk-side callers rather than a carry-chain path.
    /// Returns `None` — caller rebuilds — when the level has no filter or
    /// the re-hashed load would fall under
    /// [`FILTER_MERGE_MIN_EFFECTIVE_BITS`].
    fn merge_filters(&self, level: &Level, buffer_keys: &[EncodedKey]) -> Option<BloomFilter> {
        let fl = level.filter()?;
        let grown = fl.with_keys_inserted(buffer_keys.iter().map(|&k| original_key(k)));
        if grown.effective_bits_per_key() < FILTER_MERGE_MIN_EFFECTIVE_BITS {
            return None;
        }
        self.merge_activity.record_filter_rehash();
        self.record_filter_build(buffer_keys.len(), Some(&grown));
        Some(grown)
    }

    // ------------------------------------------------------------------
    // Traffic accounting for the incremental/fallback aux paths
    // ------------------------------------------------------------------

    /// A fence rebuild streams the merged keys once (sampled read) and
    /// writes the fresh samples.
    fn record_fence_rebuild(&self, len: usize) {
        let kernel = "lsm_accel_build";
        let metrics = self.device().metrics();
        metrics.record_launch(kernel);
        metrics.record_read(
            kernel,
            (len * std::mem::size_of::<EncodedKey>()) as u64,
            AccessPattern::Coalesced,
        );
    }

    /// A filter build / re-hash reads `hashed` keys and writes the filter.
    fn record_filter_build(&self, hashed: usize, filter: Option<&BloomFilter>) {
        let kernel = "lsm_accel_build";
        let metrics = self.device().metrics();
        metrics.record_launch(kernel);
        metrics.record_read(
            kernel,
            (hashed * std::mem::size_of::<EncodedKey>()) as u64,
            AccessPattern::Coalesced,
        );
        if let Some(f) = filter {
            metrics.record_write(kernel, f.size_bytes() as u64, AccessPattern::Coalesced);
        }
    }
}

/// The long-lived (bulk rebuild) filter threshold, re-exported for plan
/// consumers that compare the two policies.
pub const BULK_FILTER_MIN_LEN: usize = FILTER_MIN_LEN;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn planner_follows_binary_counter() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        // Empty structure: no merges, land at level 0.
        let plan = lsm.plan_next_insert();
        assert_eq!(plan.target_level, 0);
        assert!(plan.participating.is_empty());
        assert_eq!(plan.merge_steps(), 0);
        assert_eq!(plan.output_len, 4);
        assert!(plan.transient);

        for b in 0..7u32 {
            let pairs: Vec<(u32, u32)> = (0..4).map(|i| (b * 8 + i, i)).collect();
            let plan = lsm.plan_next_insert();
            // The cascade consumes the trailing set bits of r.
            let r = lsm.num_batches();
            let expected_target = (!r).trailing_zeros() as usize;
            assert_eq!(plan.target_level, expected_target, "r = {r}");
            assert_eq!(plan.participating, (0..expected_target).collect::<Vec<_>>());
            assert_eq!(plan.output_len, 4 << expected_target);
            assert_eq!(
                plan.merged_elements(4),
                (0..expected_target).map(|i| 2 * (4 << i)).sum::<usize>()
            );
            lsm.insert(&pairs).unwrap();
            // The executor placed the output exactly where planned.
            assert!(lsm.levels.is_full(plan.target_level));
        }
    }

    #[test]
    fn executor_counts_carry_steps_and_fence_merges() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        for b in 0..8u32 {
            let pairs: Vec<(u32, u32)> = (0..8).map(|i| (b * 64 + i * 3, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        // 8 batches: carries at r=2 (1 step), r=4 (2 steps), r=6 (1 step),
        // r=8 (3 steps) — 7 merge steps in total.
        let merges = lsm.stats().merges;
        assert_eq!(merges.carry_merge_steps, 7);
        assert_eq!(merges.fence_merges + merges.fence_rebuilds, 7);
        // Shallow carries at the default interval never exceed the window
        // guard, so every fence was merged incrementally.
        assert_eq!(merges.fence_merges, 7);
    }
}
