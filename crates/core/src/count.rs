//! Count queries: how many *valid* keys fall in `[k1, k2]`.
//!
//! The five-stage pipeline of §IV-C:
//!
//! 1. **Initial count estimate** — per query and per occupied level, a lower
//!    bound on `k1` and an upper bound on `k2` give the number of candidate
//!    elements in that level.
//! 2. **Scanning** — a device-wide exclusive scan over the per-(query,
//!    level) estimates yields every candidate group's output offset.
//! 3. **Initial key storage** — candidate encoded keys are gathered into one
//!    contiguous array, level by level per query (most recent level first).
//! 4. **Segmented sort** — each query's segment is sorted by original key,
//!    status bits ignored, preserving the newest-first order of equal keys.
//! 5. **Final counting** — within each segment, each run of identical keys
//!    contributes one to the count iff its first (newest) element is a
//!    regular element, not a tombstone.

use gpu_primitives::scan::exclusive_scan;
use gpu_primitives::segmented_sort::segmented_sort_pairs_by;
use gpu_sim::AccessPattern;
use rayon::prelude::*;

use crate::key::{is_regular, key_less, EncodedKey, Key, Value};
use crate::lsm::GpuLsm;

/// The gathered candidates of a set of interval queries: one contiguous
/// segment per query, sorted by original key, newest instance of each key
/// first.  Shared by count and range queries.
pub(crate) struct Candidates {
    /// Gathered encoded keys, all queries concatenated.
    pub keys: Vec<EncodedKey>,
    /// Gathered values, parallel to `keys`.
    pub values: Vec<Value>,
    /// Per-query segment offsets (`queries.len() + 1` entries).
    pub segment_offsets: Vec<usize>,
}

impl GpuLsm {
    /// Count, for each `(k1, k2)` query, the number of distinct valid keys
    /// `k` with `k1 <= k <= k2` (replaced and deleted keys excluded).
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        let candidates = self.device().timer().time("count::gather", || {
            self.gather_candidates(queries, "lsm_count")
        });
        self.device()
            .timer()
            .time("count::validate", || validate_counts(&candidates))
    }

    /// Stages 1–4 of the count/range pipeline, shared by [`GpuLsm::count`]
    /// and [`GpuLsm::range`].
    pub(crate) fn gather_candidates(&self, queries: &[(Key, Key)], kernel: &str) -> Candidates {
        let num_queries = queries.len();
        let levels: Vec<_> = self.levels().iter_occupied().map(|(_, l)| l).collect();
        let num_levels = levels.len();
        self.device().metrics().record_launch(kernel);

        if num_queries == 0 || num_levels == 0 {
            return Candidates {
                keys: Vec::new(),
                values: Vec::new(),
                segment_offsets: vec![0; num_queries + 1],
            };
        }

        // Stage 1: per-(query, level) candidate bounds, fence-narrowed (the
        // level's fence array brackets both binary searches to one ≤ 256
        // element window each, and its min/max clamp lets disjoint levels
        // answer (0, 0) with no search at all).  Laid out query-major,
        // level-minor so each query's groups are contiguous.  Scattered
        // probes are charged for the searches that actually ran — pairs the
        // min/max clamp skipped cost nothing, so modelled device time
        // reflects the pruning win.
        let probes_done = std::sync::atomic::AtomicU64::new(0);
        let bounds: Vec<(usize, usize)> = queries
            .par_iter()
            .flat_map_iter(|&(k1, k2)| {
                // Clamp the upper bound into the 31-bit domain (no stored
                // key can exceed it, and `k2 << 1` would wrap past it).
                // After the clamp, k1 > k2 covers both genuinely inverted
                // bounds and a lower bound above the domain — either way
                // the interval can contain no storable key and is empty
                // (shifting an out-of-domain k1 would wrap and silently
                // select everything instead).
                let k2 = k2.min(crate::key::MAX_KEY);
                let empty = k1 > k2;
                let probes_done = &probes_done;
                levels.iter().map(move |level| {
                    if empty || !level.interval_intersects(k1, k2) {
                        return (0, 0);
                    }
                    probes_done.fetch_add(
                        2 * u64::from(level.search_probe_depth()),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    let lo = level.lower_bound(k1);
                    let hi = level.upper_bound(k2);
                    (lo, hi.max(lo))
                })
            })
            .collect();
        self.device().metrics().record_scattered_probes(
            kernel,
            probes_done.into_inner(),
            std::mem::size_of::<EncodedKey>() as u64,
        );
        let estimates: Vec<u64> = bounds.iter().map(|&(lo, hi)| (hi - lo) as u64).collect();

        // Stage 2: exclusive scan of the estimates gives output offsets.
        let (offsets, total) = exclusive_scan(self.device(), &estimates);
        let total = total as usize;

        // Stage 3: gather candidate keys and values.  Each query's segment is
        // a contiguous range; each (query, level) group within it is too, so
        // groups can be copied in parallel per query.
        let mut keys = vec![0u32; total];
        let mut values = vec![0u32; total];
        self.device()
            .metrics()
            .record_read(kernel, (total * 8) as u64, AccessPattern::Scattered);
        self.device()
            .metrics()
            .record_write(kernel, (total * 8) as u64, AccessPattern::Coalesced);
        // Split the output into per-query mutable segments.
        let mut segment_offsets = Vec::with_capacity(num_queries + 1);
        for q in 0..num_queries {
            segment_offsets.push(offsets[q * num_levels] as usize);
        }
        segment_offsets.push(total);

        {
            let key_segments = split_by_offsets(&mut keys, &segment_offsets);
            let value_segments = split_by_offsets(&mut values, &segment_offsets);
            key_segments
                .into_par_iter()
                .zip(value_segments.into_par_iter())
                .enumerate()
                .for_each(|(q, (kseg, vseg))| {
                    let mut cursor = 0usize;
                    for (li, level) in levels.iter().enumerate() {
                        let (lo, hi) = bounds[q * num_levels + li];
                        let n = hi - lo;
                        kseg[cursor..cursor + n].copy_from_slice(&level.keys()[lo..hi]);
                        vseg[cursor..cursor + n].copy_from_slice(&level.values()[lo..hi]);
                        cursor += n;
                    }
                });
        }

        // Stage 4: segmented sort by original key (status bit ignored).  The
        // sort is stable and the gather visited levels newest-first, so equal
        // keys stay ordered newest-first.
        segmented_sort_pairs_by(
            self.device(),
            &mut keys,
            &mut values,
            &segment_offsets,
            key_less,
        );

        Candidates {
            keys,
            values,
            segment_offsets,
        }
    }
}

/// Stage 5 of the count pipeline: per segment, count key runs whose first
/// (newest) element is a regular element.
pub(crate) fn validate_counts(candidates: &Candidates) -> Vec<u32> {
    let num_queries = candidates.segment_offsets.len() - 1;
    (0..num_queries)
        .into_par_iter()
        .map(|q| {
            let start = candidates.segment_offsets[q];
            let end = candidates.segment_offsets[q + 1];
            let keys = &candidates.keys[start..end];
            let mut count = 0u32;
            let mut i = 0usize;
            while i < keys.len() {
                let key = keys[i] >> 1;
                if is_regular(keys[i]) {
                    count += 1;
                }
                // Skip the rest of this key's run (older instances are stale).
                i += 1;
                while i < keys.len() && keys[i] >> 1 == key {
                    i += 1;
                }
            }
            count
        })
        .collect()
}

/// Split `data` into mutable, disjoint segments described by `offsets`.
pub(crate) fn split_by_offsets<'a, T>(data: &'a mut [T], offsets: &[usize]) -> Vec<&'a mut [T]> {
    let mut segments = Vec::with_capacity(offsets.len().saturating_sub(1));
    let mut rest = data;
    let mut consumed = 0usize;
    for w in offsets.windows(2) {
        let len = w[1] - w[0];
        debug_assert_eq!(w[0], consumed);
        let (seg, tail) = rest.split_at_mut(len);
        segments.push(seg);
        rest = tail;
        consumed += len;
    }
    segments
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::batch::UpdateBatch;
    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn counts_simple_ranges() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (k * 10, k)).collect();
        lsm.insert(&pairs).unwrap(); // keys 0, 10, ..., 70
        assert_eq!(lsm.count(&[(0, 70)]), vec![8]);
        assert_eq!(lsm.count(&[(5, 35)]), vec![3]); // 10, 20, 30
        assert_eq!(lsm.count(&[(71, 100)]), vec![0]);
        assert_eq!(lsm.count(&[(0, 0)]), vec![1]);
    }

    #[test]
    fn count_excludes_deleted_keys() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        lsm.delete(&[2, 3]).unwrap();
        assert_eq!(lsm.count(&[(1, 4)]), vec![2]);
        assert_eq!(lsm.count(&[(2, 3)]), vec![0]);
    }

    #[test]
    fn count_does_not_double_count_replaced_keys() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(5, 1), (6, 1), (7, 1), (8, 1)]).unwrap();
        lsm.insert(&[(5, 2), (6, 2), (9, 1), (10, 1)]).unwrap();
        // Keys present: 5..=10 — each counted once despite duplicates.
        assert_eq!(lsm.count(&[(5, 10)]), vec![6]);
        assert_eq!(lsm.count(&[(5, 6)]), vec![2]);
    }

    #[test]
    fn count_after_delete_and_reinsert() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(3, 1), (4, 1)]).unwrap();
        lsm.delete(&[3, 4]).unwrap();
        lsm.insert(&[(3, 2)]).unwrap();
        assert_eq!(lsm.count(&[(3, 4)]), vec![1]);
    }

    #[test]
    fn multiple_queries_in_parallel() {
        let mut lsm = GpuLsm::new(device(), 64).unwrap();
        let pairs: Vec<(u32, u32)> = (0..64).map(|k| (k, k)).collect();
        lsm.insert(&pairs).unwrap();
        let queries: Vec<(u32, u32)> = (0..32).map(|i| (i, i + 7)).collect();
        let counts = lsm.count(&queries);
        for (i, c) in counts.iter().enumerate() {
            let expected = (i as u32 + 7).min(63) - i as u32 + 1;
            assert_eq!(*c, expected, "query {i}");
        }
    }

    #[test]
    fn count_on_empty_structure_or_no_queries() {
        let lsm = GpuLsm::new(device(), 4).unwrap();
        assert_eq!(lsm.count(&[(0, 100)]), vec![0]);
        let empty: Vec<(u32, u32)> = vec![];
        assert!(lsm.count(&empty).is_empty());
    }

    #[test]
    fn count_spanning_multiple_levels() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        for b in 0..5u32 {
            let pairs: Vec<(u32, u32)> = (0..8).map(|i| (b * 8 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        // Keys 0..40 present across levels 0 and 2.
        assert_eq!(lsm.count(&[(0, 39)]), vec![40]);
        assert_eq!(lsm.count(&[(4, 35)]), vec![32]);
    }

    #[test]
    fn count_with_mixed_batch_tombstones() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        let mut batch = UpdateBatch::new();
        batch.delete(1).insert(5, 5).delete(4).insert(6, 6);
        lsm.update(&batch).unwrap();
        // Present: 2, 3, 5, 6.
        assert_eq!(lsm.count(&[(1, 6)]), vec![4]);
    }
}
