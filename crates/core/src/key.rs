//! Key encoding: 31-bit keys with a tombstone status bit in the LSB.
//!
//! The paper dedicates one bit of the 32-bit key word to distinguish regular
//! elements from tombstones (§IV-A): "The 32-bit key variable is the 31-bit
//! original key shifted once and placed next to the status bit."  A set LSB
//! marks a regular element, a zero LSB marks a tombstone.  Because the batch
//! sort orders by the *full* encoded word while level merges compare only
//! the original key (`encoded >> 1`), a tombstone sorts before a same-key
//! regular element from the same batch — which is what makes
//! insert-then-delete-in-one-batch resolve to "deleted" (semantics rule 6).

/// A logical (user-facing) key: at most 31 bits.
pub type Key = u32;

/// A 32-bit value stored alongside each key.
pub type Value = u32;

/// The largest representable logical key (2³¹ − 1).
pub const MAX_KEY: Key = (1 << 31) - 1;

/// Encoded key word: `(key << 1) | status`, status 1 = regular, 0 = tombstone.
pub type EncodedKey = u32;

/// Encode a regular (inserted) element's key.
#[inline]
pub fn encode_regular(key: Key) -> EncodedKey {
    debug_assert!(key <= MAX_KEY, "key exceeds 31 bits");
    (key << 1) | 1
}

/// Encode a tombstone (deletion marker) for `key`.
#[inline]
pub fn encode_tombstone(key: Key) -> EncodedKey {
    debug_assert!(key <= MAX_KEY, "key exceeds 31 bits");
    key << 1
}

/// Recover the original 31-bit key from an encoded word.
#[inline]
pub fn original_key(encoded: EncodedKey) -> Key {
    encoded >> 1
}

/// Whether the encoded word is a tombstone (status bit clear).
#[inline]
pub fn is_tombstone(encoded: EncodedKey) -> bool {
    encoded & 1 == 0
}

/// Whether the encoded word is a regular element (status bit set).
#[inline]
pub fn is_regular(encoded: EncodedKey) -> bool {
    encoded & 1 == 1
}

/// The padding ("placebo") element appended during cleanup and bulk build:
/// a tombstone with the maximum key, invisible to queries and guaranteed to
/// stay at the very end of the last level (paper footnote 5).
#[inline]
pub fn placebo() -> EncodedKey {
    encode_tombstone(MAX_KEY)
}

/// Comparator on original keys only (status bit ignored), used for level
/// merges, segmented sorts and searches.
#[inline]
pub fn key_less(a: &EncodedKey, b: &EncodedKey) -> bool {
    (a >> 1) < (b >> 1)
}

/// A key–value pair as stored in the data structure (encoded key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Entry {
    /// Encoded key word (original key + status bit).
    pub key: EncodedKey,
    /// Associated value (meaningless for tombstones).
    pub value: Value,
}

impl Entry {
    /// A regular entry for (`key`, `value`).
    pub fn regular(key: Key, value: Value) -> Self {
        Entry {
            key: encode_regular(key),
            value,
        }
    }

    /// A tombstone entry for `key`.
    pub fn tombstone(key: Key) -> Self {
        Entry {
            key: encode_tombstone(key),
            value: 0,
        }
    }

    /// The original 31-bit key.
    pub fn original_key(&self) -> Key {
        original_key(self.key)
    }

    /// Whether this entry is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        is_tombstone(self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for key in [0, 1, 12345, MAX_KEY] {
            assert_eq!(original_key(encode_regular(key)), key);
            assert_eq!(original_key(encode_tombstone(key)), key);
            assert!(is_regular(encode_regular(key)));
            assert!(is_tombstone(encode_tombstone(key)));
        }
    }

    #[test]
    fn tombstone_sorts_before_regular_in_full_word_order() {
        // The batch radix sort orders by the full encoded word; for the same
        // key the tombstone (LSB 0) must come first.
        let key = 777;
        assert!(encode_tombstone(key) < encode_regular(key));
    }

    #[test]
    fn key_less_ignores_status_bit() {
        assert!(!key_less(&encode_tombstone(5), &encode_regular(5)));
        assert!(!key_less(&encode_regular(5), &encode_tombstone(5)));
        assert!(key_less(&encode_regular(4), &encode_tombstone(5)));
        assert!(!key_less(&encode_regular(6), &encode_tombstone(5)));
    }

    #[test]
    fn placebo_is_max_key_tombstone() {
        let p = placebo();
        assert!(is_tombstone(p));
        assert_eq!(original_key(p), MAX_KEY);
        // No regular encoded key with a valid key compares greater under the
        // key-only ordering.
        assert!(!key_less(&p, &encode_regular(MAX_KEY)));
        assert!(!key_less(&encode_regular(MAX_KEY), &p));
    }

    #[test]
    fn entry_constructors() {
        let e = Entry::regular(10, 99);
        assert_eq!(e.original_key(), 10);
        assert!(!e.is_tombstone());
        assert_eq!(e.value, 99);
        let t = Entry::tombstone(10);
        assert!(t.is_tombstone());
        assert_eq!(t.original_key(), 10);
    }

    #[test]
    fn max_key_is_31_bits() {
        assert_eq!(MAX_KEY, 0x7FFF_FFFF);
        assert_eq!(encode_regular(MAX_KEY), u32::MAX);
    }
}
