//! Structure statistics: occupancy, memory usage and staleness accounting.
//!
//! The paper's discussion of cleanup scheduling (§III-F, §V-D) is driven by
//! how many levels are occupied and how many stale elements have
//! accumulated; [`LsmStats`] exposes exactly those quantities so
//! applications (and the experiment harness) can decide when a cleanup pays
//! off.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::key::is_regular;
use crate::lsm::GpuLsm;

/// Lifetime Bloom-filter activity counters of one structure, shared across
/// clones of its handle (lock-free; updated by the lookup paths).
#[derive(Debug, Default)]
pub struct FilterActivity {
    probes: AtomicU64,
    skips: AtomicU64,
}

impl FilterActivity {
    /// Add a batch's worth of probes and skips.
    pub(crate) fn record(&self, probes: u64, skips: u64) {
        if probes > 0 {
            self.probes.fetch_add(probes, Ordering::Relaxed);
        }
        if skips > 0 {
            self.skips.fetch_add(skips, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.probes.load(Ordering::Relaxed),
            self.skips.load(Ordering::Relaxed),
        )
    }
}

/// Lifetime operation counters of one structure, shared across clones of
/// its handle (lock-free).  These are what the sharded service's hot-shard
/// detection reads: per-shard update traffic deltas decide which shard to
/// split and which adjacent pair to merge.
#[derive(Debug, Default)]
pub struct OpActivity {
    update_ops: AtomicU64,
    lookup_ops: AtomicU64,
}

impl OpActivity {
    /// Record `n` update operations applied to this structure.
    pub(crate) fn record_updates(&self, n: u64) {
        if n > 0 {
            self.update_ops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` point lookups served by this structure.
    pub(crate) fn record_lookups(&self, n: u64) {
        if n > 0 {
            self.lookup_ops.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.update_ops.load(Ordering::Relaxed),
            self.lookup_ops.load(Ordering::Relaxed),
        )
    }
}

/// Lifetime write-path counters of one structure: how many carry-chain
/// merge steps ran and, for each, whether the output's fence array and
/// Bloom filter were maintained *incrementally* (merged / re-hashed from
/// the inputs' structures) or fell back to a full rebuild.  Shared across
/// clones of the handle; the observable proof that the incremental
/// write path of [`crate::compaction`] is actually taken.
#[derive(Debug, Default)]
pub struct MergeActivity {
    carry_merge_steps: AtomicU64,
    fence_merges: AtomicU64,
    fence_rebuilds: AtomicU64,
    filter_rehashes: AtomicU64,
    filter_rebuilds: AtomicU64,
}

/// A point-in-time copy of [`MergeActivity`], embedded in [`LsmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeCounters {
    /// Carry-chain merge steps executed (one per consumed level).
    pub carry_merge_steps: u64,
    /// Fence arrays produced by merging the inputs' samples (incremental).
    pub fence_merges: u64,
    /// Fence arrays rebuilt from the merged key array (fallback).
    pub fence_rebuilds: u64,
    /// Filters produced by re-hashing only the buffer's keys into a copy
    /// of the consumed level's filter (half the hashing of a rebuild).
    pub filter_rehashes: u64,
    /// Filters rebuilt from scratch over the merged key array (fallback).
    pub filter_rebuilds: u64,
}

impl MergeCounters {
    /// Element-wise sum (used by the sharded aggregation).
    pub(crate) fn add(&mut self, other: &MergeCounters) {
        self.carry_merge_steps += other.carry_merge_steps;
        self.fence_merges += other.fence_merges;
        self.fence_rebuilds += other.fence_rebuilds;
        self.filter_rehashes += other.filter_rehashes;
        self.filter_rebuilds += other.filter_rebuilds;
    }

    /// Fence and filter maintenance events that took the incremental path.
    pub fn incremental_events(&self) -> u64 {
        self.fence_merges + self.filter_rehashes
    }
}

impl MergeActivity {
    pub(crate) fn record_carry_step(&self) {
        self.carry_merge_steps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_fence(&self, incremental: bool) {
        if incremental {
            self.fence_merges.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fence_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_filter_rehash(&self) {
        self.filter_rehashes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_filter_rebuild(&self) {
        self.filter_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MergeCounters {
        MergeCounters {
            carry_merge_steps: self.carry_merge_steps.load(Ordering::Relaxed),
            fence_merges: self.fence_merges.load(Ordering::Relaxed),
            fence_rebuilds: self.fence_rebuilds.load(Ordering::Relaxed),
            filter_rehashes: self.filter_rehashes.load(Ordering::Relaxed),
            filter_rebuilds: self.filter_rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the GPU LSM's shape and contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmStats {
    /// The fixed batch size `b`.
    pub batch_size: usize,
    /// Number of resident batches `r`.
    pub num_batches: usize,
    /// Total resident elements (`r·b`), stale elements included.
    pub total_elements: usize,
    /// Number of occupied levels (popcount of `r`).
    pub occupied_levels: usize,
    /// Sizes of the occupied levels, smallest level index first.
    pub level_sizes: Vec<usize>,
    /// Bytes of device memory used by keys and values.
    pub memory_bytes: usize,
    /// Number of elements that are currently *valid* (the newest instance of
    /// a key, regular, not a placebo).  Everything else is stale.
    pub valid_elements: usize,
    /// `total_elements - valid_elements`.
    pub stale_elements: usize,
    /// Bytes of device memory used by the per-level Bloom filters.
    pub filter_bytes: usize,
    /// Bytes of device memory used by the per-level fence arrays.
    pub fence_bytes: usize,
    /// Lifetime count of Bloom-filter membership tests performed by
    /// lookups on this structure (each one cache-line block read).
    pub filter_probes: u64,
    /// Lifetime count of level searches skipped outright because the
    /// filter proved the key absent.
    pub filter_skips: u64,
    /// Lifetime write-path merge counters: carry steps and how their fence
    /// / filter structures were produced (incremental vs. rebuilt).
    pub merges: MergeCounters,
    /// Lifetime count of update operations applied (inserts + deletes,
    /// before padding).  Feeds the sharded service's hot-shard detection.
    pub update_ops: u64,
    /// Lifetime count of point lookups served.
    pub lookup_ops: u64,
    /// Slab-arena occupancy (all-zero when the arena is disabled): bytes
    /// resident in live regions, the high-water mark, and how many
    /// reservations were served by recycling a freed region.
    pub arena: crate::arena::ArenaStats,
}

impl LsmStats {
    /// Fraction of resident elements that are stale (0.0 for an empty LSM).
    pub fn stale_fraction(&self) -> f64 {
        if self.total_elements == 0 {
            0.0
        } else {
            self.stale_elements as f64 / self.total_elements as f64
        }
    }
}

impl GpuLsm {
    /// Compute a statistics snapshot.  This scans the structure (it is a
    /// diagnostic, not a hot-path operation).
    pub fn stats(&self) -> LsmStats {
        let level_sizes: Vec<usize> = self
            .levels()
            .iter_occupied()
            .map(|(_, l)| l.len())
            .collect();
        let memory_bytes = self.levels().size_bytes();
        let valid_elements = self.count_valid_elements();
        let total_elements = self.num_resident_elements();
        let (filter_bytes, fence_bytes) = self
            .levels()
            .iter_occupied()
            .map(|(_, l)| l.accel_bytes())
            .fold((0, 0), |(f, s), (df, ds)| (f + df, s + ds));
        let (filter_probes, filter_skips) = self.filter_activity.snapshot();
        let (update_ops, lookup_ops) = self.op_activity.snapshot();
        LsmStats {
            batch_size: self.batch_size(),
            num_batches: self.num_batches(),
            total_elements,
            occupied_levels: self.num_occupied_levels(),
            level_sizes,
            memory_bytes,
            valid_elements,
            stale_elements: total_elements - valid_elements,
            filter_bytes,
            fence_bytes,
            filter_probes,
            filter_skips,
            merges: self.merge_activity.snapshot(),
            update_ops,
            lookup_ops,
            arena: self.arena.as_ref().map(|a| a.stats()).unwrap_or_default(),
        }
    }

    /// Count the currently valid elements: for every distinct key, the most
    /// recent instance if it is a regular element (placebos never count).
    pub fn count_valid_elements(&self) -> usize {
        // Collect every distinct key's newest instance by walking levels
        // newest-first and keeping the first sighting of each key.
        let mut seen = std::collections::HashSet::new();
        let mut valid = 0usize;
        for (_, level) in self.levels().iter_occupied() {
            let keys = level.keys();
            // Within a level equal keys are adjacent, newest first; consider
            // only each run's first element.
            let mut i = 0usize;
            while i < keys.len() {
                let key = keys[i] >> 1;
                let newest = keys[i];
                if seen.insert(key) && is_regular(newest) {
                    valid += 1;
                }
                i += 1;
                while i < keys.len() && keys[i] >> 1 == key {
                    i += 1;
                }
            }
        }
        valid
    }

    /// Total bytes of device memory used by the structure's levels.
    pub fn memory_bytes(&self) -> usize {
        self.levels().size_bytes()
    }

    /// Record Bloom-filter activity from a lookup path (no-op when no
    /// filter was consulted).
    pub(crate) fn record_filter_activity(&self, probes: u64, skips: u64) {
        self.filter_activity.record(probes, skips);
    }

    /// Smallest original key resident in any level (tombstones and placebo
    /// padding included), `None` when the structure is empty.  O(levels),
    /// read straight off the per-level fences — this is what lets a
    /// sharded service skip whole shards in order queries.
    pub fn min_resident_key(&self) -> Option<crate::key::Key> {
        self.levels()
            .iter_occupied()
            .map(|(_, l)| l.min_key())
            .min()
    }

    /// Largest original key resident in any level (tombstones and placebo
    /// padding included), `None` when the structure is empty.
    pub fn max_resident_key(&self) -> Option<crate::key::Key> {
        self.levels()
            .iter_occupied()
            .map(|(_, l)| l.max_key())
            .max()
    }

    /// The original keys of every resident level's fence samples, merged
    /// and sorted — an order-statistics sketch of the resident key
    /// distribution at zero extra memory (the fences already exist for
    /// query acceleration).  Placebo padding (max-key) is excluded so the
    /// sketch reflects real data.  This is what split-point fitting reads.
    pub fn fence_sample_keys(&self) -> Vec<crate::key::Key> {
        let mut keys: Vec<crate::key::Key> = self
            .levels()
            .iter_occupied()
            .filter_map(|(_, l)| l.fences())
            .flat_map(|f| f.sorted_samples().into_iter().map(|(k, _)| k))
            .filter(|&k| k < crate::key::MAX_KEY)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Per-level element counts, keyed by level index.
    pub fn level_occupancy(&self) -> Vec<(usize, usize)> {
        self.levels()
            .iter_occupied()
            .map(|(i, l)| (i, l.len()))
            .collect()
    }

    /// Sum over occupied levels of a query's worst-case binary-search probes
    /// (`log2` of each level size) — the quantity that governs lookup cost
    /// in Table I.
    pub fn worst_case_lookup_probes(&self) -> u32 {
        self.levels()
            .iter_occupied()
            .map(|(_, l)| usize::BITS - l.len().leading_zeros())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn stats_of_empty_lsm() {
        let lsm = GpuLsm::new(device(), 8).unwrap();
        let stats = lsm.stats();
        assert_eq!(stats.total_elements, 0);
        assert_eq!(stats.valid_elements, 0);
        assert_eq!(stats.occupied_levels, 0);
        assert_eq!(stats.stale_fraction(), 0.0);
        assert!(stats.level_sizes.is_empty());
    }

    #[test]
    fn stats_track_inserts_and_deletes() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        lsm.delete(&[2]).unwrap();
        let stats = lsm.stats();
        assert_eq!(stats.batch_size, 4);
        assert_eq!(stats.num_batches, 2);
        assert_eq!(stats.total_elements, 8);
        assert_eq!(stats.valid_elements, 3); // 1, 3, 4
        assert_eq!(stats.stale_elements, 5);
        assert!(stats.stale_fraction() > 0.0);
        assert_eq!(stats.occupied_levels, 1);
        assert_eq!(stats.level_sizes, vec![8]);
        assert_eq!(stats.memory_bytes, 8 * 8);
    }

    #[test]
    fn level_occupancy_matches_binary_counter() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        for i in 0..5u32 {
            lsm.insert(&[(i * 2, 0), (i * 2 + 1, 0)]).unwrap();
        }
        // r = 5 = 0b101: levels 0 and 2.
        let occ = lsm.level_occupancy();
        assert_eq!(occ, vec![(0, 2), (2, 8)]);
        assert!(lsm.worst_case_lookup_probes() >= 2);
        assert!(lsm.memory_bytes() > 0);
    }

    #[test]
    fn accel_memory_and_counters_are_reported() {
        // Bulk-built levels at this size carry filters (when enabled) and
        // always carry fences.
        let pairs: Vec<(u32, u32)> = (0..4096).map(|k| (k * 2, k)).collect();
        let lsm = GpuLsm::bulk_build(device(), 1 << 12, &pairs).unwrap();
        let before = lsm.stats();
        assert!(before.fence_bytes > 0);
        assert_eq!(before.filter_probes, 0);
        let _ = lsm.lookup_individual(&[1, 3, 5, 4096 * 2]);
        let after = lsm.stats();
        if after.filter_bytes > 0 {
            // All four queries miss; each consults the single level's filter.
            assert!(after.filter_probes >= 4);
            assert!(after.filter_skips > 0);
        }
        assert!(lsm.min_resident_key().is_some());
        assert_eq!(lsm.min_resident_key(), Some(0));
        assert_eq!(lsm.max_resident_key(), Some(4095 * 2));
        let empty = GpuLsm::new(device(), 8).unwrap();
        assert_eq!(empty.min_resident_key(), None);
        assert_eq!(empty.max_resident_key(), None);
    }

    #[test]
    fn op_counters_track_updates_and_lookups() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2)]).unwrap();
        lsm.delete(&[2]).unwrap();
        let _ = lsm.lookup_individual(&[1, 2, 3]);
        let stats = lsm.stats();
        assert_eq!(stats.update_ops, 3);
        assert_eq!(stats.lookup_ops, 3);
    }

    #[test]
    fn fence_samples_sketch_the_resident_keys() {
        let pairs: Vec<(u32, u32)> = (0..4096).map(|k| (k * 3, k)).collect();
        let lsm = GpuLsm::bulk_build(device(), 1 << 12, &pairs).unwrap();
        let sample = lsm.fence_sample_keys();
        assert!(!sample.is_empty());
        assert!(sample.windows(2).all(|w| w[0] <= w[1]));
        assert!(sample.iter().all(|&k| k <= 4095 * 3));
        assert!(GpuLsm::new(device(), 8)
            .unwrap()
            .fence_sample_keys()
            .is_empty());
    }

    #[test]
    fn valid_count_ignores_replaced_duplicates() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(7, 1), (8, 1)]).unwrap();
        lsm.insert(&[(7, 2), (8, 2)]).unwrap();
        assert_eq!(lsm.count_valid_elements(), 2);
        let stats = lsm.stats();
        assert_eq!(stats.stale_elements, 2);
    }
}
