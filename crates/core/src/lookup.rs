//! Bulk lookup queries.
//!
//! Each query is independent (the paper's "individual approach", §IV-B): a
//! thread walks the occupied levels from the smallest (most recent) to the
//! largest, probing each level for the key.  The first element found with a
//! matching key decides the outcome — a regular element returns its value,
//! a tombstone means the key was deleted — because the building invariants
//! of §III-D order equal keys newest-first within a level and newer levels
//! are searched first.
//!
//! ## Query acceleration
//!
//! Per-level probes are accelerated by the structures every [`Level`]
//! carries (see [`crate::level`]): a blocked Bloom filter answers
//! "definitely absent" with a single cache-line read — the common case for
//! misses, which otherwise pay the full `O(levels · log n)` — and a fence
//! array narrows the remaining binary searches to one ≤ 256-element window.
//! Both are conservative, so results are bit-identical to plain searches.
//!
//! [`GpuLsm::lookup`] additionally **adapts between the two batch
//! strategies** the paper compares: below a calibrated query-count
//! threshold it runs the individual approach; above it, it switches to
//! [`GpuLsm::lookup_bulk_sorted`], which sorts the queries once and then
//! streams every level with coalesced accesses — profitable exactly when
//! the batch is large relative to the structure
//! (see [`GpuLsm::bulk_lookup_threshold`]).
//!
//! [`Level`]: crate::level::Level

use std::sync::OnceLock;

use gpu_primitives::filter::BLOCK_BYTES;
use gpu_sim::AccessPattern;
use rayon::prelude::*;

use crate::key::{is_regular, original_key, Key, Value};
use crate::lsm::GpuLsm;

/// Never dispatch to the bulk sorted path below this many queries: the
/// query sort has a fixed per-launch cost that tiny batches cannot win
/// back, whatever the structure size.
const MIN_BULK_QUERIES: usize = 256;

/// Default warp-group width for [`GpuLsm::bulk_get`]: sorted queries march
/// through the levels in groups of this many, sharing one fence descent
/// and one coalesced block sweep per group — the CPU analogue of a GPU
/// warp resolving 64 neighbouring needles with shared loads.
const DEFAULT_BULK_GROUP: usize = 64;

/// The lenient `LSM_BULK_GROUP` fallback (strict parsing lives in
/// [`crate::config::LsmConfig::from_env`]): unparsable or zero values are
/// ignored here so ad-hoc shells cannot poison the default.
fn bulk_group_from_env() -> Option<usize> {
    static GROUP: OnceLock<Option<usize>> = OnceLock::new();
    *GROUP.get_or_init(|| {
        std::env::var("LSM_BULK_GROUP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&g| g >= 1)
    })
}

/// Per-query cost trace of one individual lookup, accumulated into the
/// device's traffic metrics and the structure's filter counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LookupTrace {
    /// Bloom filter blocks read (one coalesced cache-line read each).
    pub filter_blocks: u64,
    /// Levels skipped outright by a filter negative.
    pub filter_skips: u64,
    /// Scattered binary-search probes performed.
    pub search_probes: u64,
}

/// Calibrated per-scattered-probe and per-streamed-element costs (ns),
/// measured once per process the same way the worker pool's sequential
/// cutoff is (PR 2): tiny representative kernels timed at startup, pinned
/// behind a `OnceLock`.
fn lookup_costs() -> (f64, f64) {
    static COSTS: OnceLock<(f64, f64)> = OnceLock::new();
    *COSTS.get_or_init(|| {
        let n: usize = 1 << 16;
        let data: Vec<u32> = (0..n as u32).map(|i| i * 2).collect();
        // Scattered cost: data-dependent binary searches with pseudo-random
        // probes, charged per probe (log2 n probes per search).
        let searches = 1usize << 12;
        let mut acc = 0usize;
        let mut x = 0x9E37_79B9u32;
        let start = std::time::Instant::now();
        for _ in 0..searches {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            acc += data.partition_point(|&k| k < (x >> 15));
        }
        std::hint::black_box(acc);
        let probes = searches as u32 * (usize::BITS - n.leading_zeros());
        let probe_ns = start.elapsed().as_nanos() as f64 / f64::from(probes);
        // Streaming cost: one linear reduction pass, charged per element.
        let start = std::time::Instant::now();
        let sum: u64 = std::hint::black_box(data.as_slice())
            .iter()
            .map(|&k| u64::from(k))
            .sum();
        std::hint::black_box(sum);
        let stream_ns = start.elapsed().as_nanos() as f64 / n as f64;
        (probe_ns.max(0.1), stream_ns.max(0.01))
    })
}

/// Calibrated per-element cost (ns) of radix-sorting a query batch — the
/// bulk path's dominant per-query toll, paid before it streams any level —
/// measured directly on a throwaway device.
fn sort_cost_ns() -> f64 {
    static COST: OnceLock<f64> = OnceLock::new();
    *COST.get_or_init(|| {
        let device = gpu_sim::Device::new(gpu_sim::DeviceConfig::small());
        let n: usize = 1 << 13;
        let mut keys: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut values: Vec<u32> = (0..n as u32).collect();
        let start = std::time::Instant::now();
        gpu_primitives::radix_sort::sort_pairs(&device, &mut keys, &mut values);
        std::hint::black_box(&keys);
        (start.elapsed().as_nanos() as f64 / n as f64).max(0.5)
    })
}

/// The `LSM_BULK_LOOKUP_FRAC` override: when set, the bulk path engages at
/// `frac · resident elements` queries instead of the calibrated threshold.
fn bulk_frac_override() -> Option<f64> {
    static FRAC: OnceLock<Option<f64>> = OnceLock::new();
    *FRAC.get_or_init(|| {
        std::env::var("LSM_BULK_LOOKUP_FRAC")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|f| *f > 0.0)
    })
}

impl GpuLsm {
    /// Look up a batch of keys in parallel.  Returns, for each query key,
    /// `Some(value)` of the most recent insertion if the key is present and
    /// not deleted, `None` otherwise.
    ///
    /// Dispatches adaptively: batches smaller than
    /// [`GpuLsm::bulk_lookup_threshold`] run the individual per-thread
    /// binary-search approach ([`GpuLsm::lookup_individual`]); larger
    /// batches switch to the sorted bulk approach
    /// ([`GpuLsm::lookup_bulk_sorted`]).  Both return identical results.
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        if queries.len() >= self.bulk_lookup_threshold() {
            self.lookup_bulk_sorted(queries)
        } else {
            self.lookup_individual(queries)
        }
    }

    /// The query count at which [`GpuLsm::lookup`] switches to the bulk
    /// sorted path for the structure's *current* shape.
    ///
    /// Derived from the same style of per-process calibration as the worker
    /// pool's sequential cutoff: with calibrated scattered-probe, streaming
    /// and query-sort costs, the individual approach costs about
    /// `Σ per-level probe depth · c_probe` per query while the bulk
    /// approach costs `n · c_stream` once plus sort/stream work per query —
    /// the threshold is where the two lines cross, floored at a minimum
    /// batch size and overridable with `LSM_BULK_LOOKUP_FRAC` (a fraction
    /// of the resident element count).
    pub fn bulk_lookup_threshold(&self) -> usize {
        let n = self.num_resident_elements();
        if n == 0 {
            return usize::MAX;
        }
        if let Some(frac) = self.bulk_lookup_frac.or_else(bulk_frac_override) {
            return (((n as f64) * frac) as usize).max(MIN_BULK_QUERIES);
        }
        let levels = self.num_occupied_levels();
        let (probe_ns, stream_ns) = lookup_costs();
        // Individual per-query cost: filtered levels are usually decided by
        // one cache-line filter read (modelled as ~2 probe-equivalents to
        // cover false positives); unfiltered levels pay a fence-narrowed
        // binary search.
        let per_query_individual: f64 = self
            .levels()
            .iter_occupied()
            .map(|(_, l)| {
                if l.filter().is_some() {
                    2.0 * probe_ns
                } else {
                    f64::from(l.search_probe_depth()) * probe_ns
                }
            })
            .sum();
        // Bulk per-query cost: the query sort plus one streamed needle pass
        // and result reconciliation per level.
        let per_query_bulk = sort_cost_ns() + (levels as f64 + 2.0) * stream_ns;
        let margin = per_query_individual - per_query_bulk;
        if margin <= 0.0 {
            return usize::MAX; // individual is never beaten for this shape
        }
        (((n as f64) * stream_ns / margin) as usize).max(MIN_BULK_QUERIES)
    }

    /// The individual (per-thread binary search) batch lookup.
    pub fn lookup_individual(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let kernel = "lsm_lookup";
        self.op_activity.record_lookups(queries.len() as u64);
        self.device().metrics().record_launch(kernel);
        self.device().metrics().record_read(
            kernel,
            std::mem::size_of_val(queries) as u64,
            AccessPattern::Coalesced,
        );
        let traced: Vec<(Option<Value>, LookupTrace)> =
            self.device().timer().time("lookup", || {
                queries
                    .par_iter()
                    .map(|&q| self.lookup_one_traced(q))
                    .collect()
            });
        // Traffic accounting from what the batch actually did: every filter
        // consultation is a single coalesced cache-line block read; only
        // the searches that survived the filters pay scattered probes.
        let mut total = LookupTrace::default();
        let mut results = Vec::with_capacity(traced.len());
        for (value, trace) in traced {
            results.push(value);
            total.filter_blocks += trace.filter_blocks;
            total.filter_skips += trace.filter_skips;
            total.search_probes += trace.search_probes;
        }
        self.device()
            .metrics()
            .record_block_reads(kernel, total.filter_blocks, BLOCK_BYTES as u64);
        self.device().metrics().record_scattered_probes(
            kernel,
            total.search_probes,
            std::mem::size_of::<Key>() as u64,
        );
        self.record_filter_activity(total.filter_blocks, total.filter_skips);
        results
    }

    /// Look up a single key (the per-thread body of the individual batch
    /// lookup, usable on its own for asynchronous individual queries).
    pub fn lookup_one(&self, query: Key) -> Option<Value> {
        let (value, trace) = self.lookup_one_traced(query);
        self.record_filter_activity(trace.filter_blocks, trace.filter_skips);
        value
    }

    /// The traced lookup body: walk levels newest-first, let the first
    /// probe that returns an element decide.
    pub(crate) fn lookup_one_traced(&self, query: Key) -> (Option<Value>, LookupTrace) {
        let mut trace = LookupTrace::default();
        for (_, level) in self.levels().iter_occupied() {
            let probe = level.find(query);
            trace.filter_blocks += u64::from(probe.filter_probed);
            trace.search_probes += u64::from(probe.probes);
            if probe.filter_skipped {
                trace.filter_skips += 1;
                continue;
            }
            if let Some((encoded, value)) = probe.entry {
                let result = if is_regular(encoded) {
                    Some(value)
                } else {
                    None // most recent instance is a tombstone: deleted
                };
                return (result, trace);
            }
        }
        (None, trace)
    }

    /// Whether `key` is currently present (not deleted).
    pub fn contains(&self, key: Key) -> bool {
        self.lookup_one(key).is_some()
    }

    /// The paper's *bulk* lookup alternative (§IV-B): sort all queries once,
    /// then resolve them against every occupied level with warp-style
    /// grouped sweeps instead of per-query binary searches.
    ///
    /// Returns results in the original query order, identical to
    /// [`GpuLsm::lookup`].  The trade-off it exists to expose: the query
    /// sort is an extra bulk pass, but each level is then swept with
    /// coalesced accesses rather than probed randomly — profitable when
    /// there are many queries relative to the structure size, which is
    /// exactly when [`GpuLsm::lookup`] dispatches here.
    ///
    /// This is [`GpuLsm::bulk_get`] under its historical name and kernel
    /// label; both run the same grouped execution.
    pub fn lookup_bulk_sorted(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.bulk_get_with_kernel(queries, "lsm_lookup_bulk", "lookup_bulk")
    }

    /// Warp-style bulk lookup — the paper's answer to the "PCIe tax" of
    /// issuing GPU queries one at a time: amortise the launch over a large
    /// batch and resolve it with *shared* work per warp-sized group.
    ///
    /// The batch is sorted once; fixed-size groups of
    /// [`GpuLsm::bulk_group_size`] neighbouring queries then march through
    /// each occupied level **together**:
    ///
    /// 1. **Shared fence descent** — two Eytzinger descents per group (its
    ///    smallest and largest undecided key) bracket every member's lower
    ///    bound in one combined window, instead of one descent per query.
    /// 2. **Coalesced block sweep** — the group resolves its members with a
    ///    monotone cursor over that window, so the level's key blocks are
    ///    touched once each, in order, and are charged as coalesced block
    ///    reads (deduplicated across overlapping groups) rather than
    ///    scattered probes.
    ///
    /// Levels carrying a Bloom filter keep the **filter-aware pre-pass**:
    /// still-undecided needles are tested first (one coalesced block read
    /// each) and only survivors join the sweep, so a mostly-missing batch
    /// skips whole levels.  Results are bit-identical to
    /// [`GpuLsm::lookup`], in the original query order.
    pub fn bulk_get(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.bulk_get_with_kernel(queries, "lsm_bulk_get", "bulk_get")
    }

    /// The warp-group width [`GpuLsm::bulk_get`] marches with: the
    /// per-instance config override when set, else `LSM_BULK_GROUP`, else
    /// the built-in default of 64.
    pub fn bulk_group_size(&self) -> usize {
        self.bulk_group
            .or_else(bulk_group_from_env)
            .unwrap_or(DEFAULT_BULK_GROUP)
            .max(1)
    }

    /// Shared body of [`GpuLsm::bulk_get`] / [`GpuLsm::lookup_bulk_sorted`]:
    /// sort, resolve with warp-style groups, scatter back.
    fn bulk_get_with_kernel(
        &self,
        queries: &[Key],
        kernel: &'static str,
        timer_label: &'static str,
    ) -> Vec<Option<Value>> {
        self.op_activity.record_lookups(queries.len() as u64);
        self.device().metrics().record_launch(kernel);
        if queries.is_empty() {
            return Vec::new();
        }
        self.device().timer().time(timer_label, || {
            // Sort the queries, remembering their original positions.
            let mut sorted_queries: Vec<Key> = queries.to_vec();
            let mut positions: Vec<u32> = (0..queries.len() as u32).collect();
            gpu_primitives::radix_sort::sort_pairs(
                self.device(),
                &mut sorted_queries,
                &mut positions,
            );
            let sorted_results = self.resolve_sorted_warp(kernel, &sorted_queries);
            // Scatter back to the callers' query order.
            let mut results: Vec<Option<Value>> = vec![None; queries.len()];
            for (sorted_idx, &original) in positions.iter().enumerate() {
                results[original as usize] = sorted_results[sorted_idx];
            }
            results
        })
    }

    /// Resolve an already-sorted query batch against every occupied level
    /// with warp-style groups, returning results in *sorted* order.
    ///
    /// Results and decisions are tracked in sorted query order so every
    /// per-level pass is a perfectly aligned zip over fixed group chunks —
    /// embarrassingly parallel over the vendored pool.  A query decided by
    /// a newer level is never overwritten (newest-level-wins).
    fn resolve_sorted_warp(
        &self,
        kernel: &'static str,
        sorted_queries: &[Key],
    ) -> Vec<Option<Value>> {
        let n = sorted_queries.len();
        let group = self.bulk_group_size();
        let word = std::mem::size_of::<Key>() as u64;
        let mut sorted_results: Vec<Option<Value>> = vec![None; n];
        let mut decided: Vec<bool> = vec![false; n];
        let (lo_q, hi_q) = (sorted_queries[0], sorted_queries[n - 1]);
        let mut filter_blocks = 0u64;
        let mut filter_skips = 0u64;
        let mut swept_blocks = 0u64;
        let mut fence_descents = 0u64;
        for (_, level) in self.levels().iter_occupied() {
            // Fence min/max pruning: a level whose key range is disjoint
            // from the whole (sorted) query range cannot decide anything.
            if level.max_key() < lo_q || level.min_key() > hi_q {
                continue;
            }
            let keys = level.keys();
            let values = level.values();
            // Filter-aware pre-pass: test every still-undecided needle
            // against the level's Bloom filter (one coalesced block read
            // each); only survivors join the sweep.  The filter is
            // conservative, so dropped needles provably have no match here.
            let has_filter = level.filter().is_some();
            let pass: Vec<bool> = match level.filter() {
                Some(filter) => sorted_queries
                    .par_iter()
                    .zip(decided.par_iter())
                    .map(|(&q, &done)| !done && filter.contains(q))
                    .collect(),
                None => decided.iter().map(|&done| !done).collect(),
            };
            if has_filter {
                for (qi, &p) in pass.iter().enumerate() {
                    if decided[qi] {
                        continue;
                    }
                    filter_blocks += 1;
                    if !p {
                        filter_skips += 1;
                    }
                }
            }
            // Warp-style march: each fixed group of neighbouring sorted
            // queries shares two fence descents (group min/max) and sweeps
            // the combined window with one monotone cursor.  Groups cover
            // disjoint query ranges, so they resolve in parallel; each
            // returns the half-open block range its sweep touched.
            let touched: Vec<Option<(u64, u64)>> = sorted_results
                .par_chunks_mut(group)
                .zip(decided.par_chunks_mut(group))
                .zip(sorted_queries.par_chunks(group))
                .zip(pass.par_chunks(group))
                .map(|(((results, decided), queries), pass)| {
                    let first = pass.iter().position(|&p| p)?;
                    let last = pass.iter().rposition(|&p| p).unwrap_or(first);
                    // Shared descent: the two group extremes bracket every
                    // member's lower bound (bounds are monotone in the key).
                    let (win_lo, win_hi) = match level.fences() {
                        Some(f) => (
                            f.lower_bound_window(queries[first]).0,
                            f.lower_bound_window(queries[last]).1,
                        ),
                        None => (0, keys.len()),
                    };
                    // Coalesced sweep: the cursor only moves forward, so the
                    // group touches each key block of its window once.
                    let mut cursor = win_lo;
                    let mut touched_hi = win_lo;
                    for i in first..=last {
                        if !pass[i] {
                            continue;
                        }
                        let q = queries[i];
                        cursor += keys[cursor..win_hi].partition_point(|&k| (k >> 1) < q);
                        touched_hi = touched_hi.max((cursor + 1).min(keys.len()));
                        if cursor < keys.len() && original_key(keys[cursor]) == q {
                            decided[i] = true;
                            results[i] = if is_regular(keys[cursor]) {
                                Some(values[cursor])
                            } else {
                                None
                            };
                        }
                    }
                    let b_lo = win_lo as u64 * word / BLOCK_BYTES as u64;
                    let b_hi = (touched_hi.max(win_lo + 1) as u64 * word - 1) / BLOCK_BYTES as u64;
                    Some((b_lo, b_hi))
                })
                .collect();
            // Charge the sweeps as deduplicated coalesced block reads:
            // group windows ascend with the sorted queries, so a running
            // high-water mark removes the overlap between neighbours
            // exactly.
            let mut charged_through: Option<u64> = None;
            for (b_lo, b_hi) in touched.into_iter().flatten() {
                fence_descents += 2;
                let from = charged_through.map_or(b_lo, |c| b_lo.max(c + 1));
                if b_hi >= from {
                    swept_blocks += b_hi - from + 1;
                }
                charged_through = Some(charged_through.map_or(b_hi, |c| c.max(b_hi)));
            }
        }
        // Each filter consultation and each swept key block is one
        // coalesced cache-line read; only the per-group fence descents are
        // scattered.
        self.device().metrics().record_block_reads(
            kernel,
            filter_blocks + swept_blocks,
            BLOCK_BYTES as u64,
        );
        self.device()
            .metrics()
            .record_scattered_probes(kernel, fence_descents, word);
        self.record_filter_activity(filter_blocks, filter_skips);
        sorted_results
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::batch::UpdateBatch;
    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn finds_inserted_keys_and_misses_absent_ones() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (k * 2, k * 100)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(lsm.lookup(&[0, 2, 14]), vec![Some(0), Some(100), Some(700)]);
        assert_eq!(lsm.lookup(&[1, 3, 99]), vec![None, None, None]);
        assert!(lsm.contains(4));
        assert!(!lsm.contains(5));
    }

    #[test]
    fn most_recent_insertion_wins_across_batches() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.insert(&[(2, 999), (5, 50), (6, 60), (7, 70)]).unwrap();
        assert_eq!(lsm.lookup(&[2]), vec![Some(999)]);
        assert_eq!(lsm.lookup(&[1]), vec![Some(10)]);
    }

    #[test]
    fn deletion_hides_older_insertions() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.delete(&[2, 3]).unwrap();
        assert_eq!(
            lsm.lookup(&[1, 2, 3, 4]),
            vec![Some(10), None, None, Some(40)]
        );
    }

    #[test]
    fn reinsert_after_delete_is_visible() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(7, 70), (8, 80)]).unwrap();
        lsm.delete(&[7]).unwrap();
        lsm.insert(&[(7, 71)]).unwrap();
        assert_eq!(lsm.lookup(&[7]), vec![Some(71)]);
    }

    #[test]
    fn insert_and_delete_same_batch_resolves_to_deleted() {
        // Semantics rule 6: a key inserted and deleted within the same batch
        // is considered deleted.
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(5, 50).delete(5).insert(6, 60).insert(7, 70);
        lsm.update(&batch).unwrap();
        assert_eq!(lsm.lookup(&[5, 6, 7]), vec![None, Some(60), Some(70)]);
    }

    #[test]
    fn duplicate_keys_in_one_batch_resolve_deterministically() {
        // Semantics rule 4: one of the duplicates is chosen; with a stable
        // sort and first-match lookups it is the first one pushed.
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(9, 1), (9, 2), (9, 3), (9, 4)]).unwrap();
        assert_eq!(lsm.lookup(&[9]), vec![Some(1)]);
    }

    #[test]
    fn lookup_on_empty_lsm_returns_none() {
        let lsm = GpuLsm::new(device(), 4).unwrap();
        assert_eq!(lsm.lookup(&[1, 2, 3]), vec![None, None, None]);
    }

    #[test]
    fn lookup_across_many_batches_and_levels() {
        let mut lsm = GpuLsm::new(device(), 16).unwrap();
        // 9 batches → levels 0 and 3 occupied; keys 0..144.
        for b in 0..9u32 {
            let pairs: Vec<(u32, u32)> = (0..16).map(|i| (b * 16 + i, b * 1000 + i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        let queries: Vec<u32> = (0..144).collect();
        let results = lsm.lookup(&queries);
        for (q, r) in queries.iter().zip(results.iter()) {
            let batch = q / 16;
            let i = q % 16;
            assert_eq!(*r, Some(batch * 1000 + i), "query {q}");
        }
        assert_eq!(lsm.lookup(&[144, 1000]), vec![None, None]);
    }

    #[test]
    fn bulk_sorted_lookup_matches_individual_lookup() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut lsm = GpuLsm::new(device(), 64).unwrap();
        for round in 0..7u32 {
            let mut batch = UpdateBatch::new();
            let mut used = std::collections::HashSet::new();
            while used.len() < 64 {
                let key = rng.gen_range(0..2000u32);
                if !used.insert(key) {
                    continue;
                }
                if rng.gen_bool(0.2) {
                    batch.delete(key);
                } else {
                    batch.insert(key, round * 10_000 + key);
                }
            }
            lsm.update(&batch).unwrap();
        }
        let queries: Vec<u32> = (0..2500).map(|i| (i * 17) % 2600).collect();
        assert_eq!(
            lsm.lookup_bulk_sorted(&queries),
            lsm.lookup_individual(&queries)
        );
        // The adaptive entry point agrees with both, whichever it picked.
        assert_eq!(lsm.lookup(&queries), lsm.lookup_individual(&queries));
        // Empty query set and empty structure are handled.
        assert!(lsm.lookup_bulk_sorted(&[]).is_empty());
        let empty = GpuLsm::new(device(), 8).unwrap();
        assert_eq!(empty.lookup_bulk_sorted(&[1, 2]), vec![None, None]);
        assert_eq!(empty.bulk_lookup_threshold(), usize::MAX);
    }

    #[test]
    fn bulk_lookup_prefilters_with_level_filters() {
        // A bulk-built structure large enough to carry a filter; all-miss
        // needles must be decided by the pre-pass (filter skips recorded)
        // and results must stay identical to the individual path.
        let pairs: Vec<(u32, u32)> = (0..4096u32).map(|k| (k * 4, k)).collect();
        let lsm = GpuLsm::bulk_build(device(), 1 << 12, &pairs).unwrap();
        let queries: Vec<u32> = (0..2048u32).map(|i| i * 8 + 2).collect(); // all absent
        let before = lsm.stats();
        let bulk = lsm.lookup_bulk_sorted(&queries);
        assert_eq!(bulk, lsm.lookup_individual(&queries));
        assert!(bulk.iter().all(Option::is_none));
        let after = lsm.stats();
        if after.filter_bytes > 0 {
            assert!(
                after.filter_probes > before.filter_probes,
                "bulk path must consult the level filters"
            );
            assert!(
                after.filter_skips > before.filter_skips,
                "all-miss needles must be skipped by the pre-pass"
            );
        }
        // Present keys still resolve through the pre-pass.
        let hits: Vec<u32> = (0..512u32).map(|k| k * 8).collect();
        assert_eq!(lsm.lookup_bulk_sorted(&hits), lsm.lookup_individual(&hits));
    }

    #[test]
    fn bulk_get_matches_individual_across_group_sizes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        // Group sizes straddling every boundary case: degenerate singles,
        // non-dividing odd widths, the default, and one group per batch.
        for group in [1usize, 3, 64, 1 << 20] {
            let config = crate::config::LsmConfig::default().bulk_group(group);
            let mut lsm = GpuLsm::with_config(device(), 32, &config).unwrap();
            assert_eq!(lsm.bulk_group_size(), group);
            for round in 0..9u32 {
                let mut batch = UpdateBatch::new();
                let mut used = std::collections::HashSet::new();
                while used.len() < 32 {
                    let key = rng.gen_range(0..1200u32);
                    if !used.insert(key) {
                        continue;
                    }
                    if rng.gen_bool(0.25) {
                        batch.delete(key);
                    } else {
                        batch.insert(key, round * 10_000 + key);
                    }
                }
                lsm.update(&batch).unwrap();
            }
            // Hits, misses, duplicates and out-of-range probes together.
            let mut queries: Vec<u32> = (0..1500).map(|i| (i * 13) % 1400).collect();
            queries.extend([0, 0, 7, 7, 7, 5000]);
            assert_eq!(lsm.bulk_get(&queries), lsm.lookup_individual(&queries));
            assert_eq!(
                lsm.lookup_bulk_sorted(&queries),
                lsm.lookup_individual(&queries)
            );
        }
    }

    #[test]
    fn bulk_get_charges_coalesced_sweeps() {
        // A single large level with fences: the grouped sweep must charge
        // block reads on its kernel and still answer exactly.
        let pairs: Vec<(u32, u32)> = (0..8192u32).map(|k| (k * 3, k)).collect();
        let lsm = GpuLsm::bulk_build(device(), 1 << 13, &pairs).unwrap();
        let queries: Vec<u32> = (0..4096u32).map(|i| i * 6).collect(); // half hit
        let results = lsm.bulk_get(&queries);
        assert_eq!(results, lsm.lookup_individual(&queries));
        let snapshot = lsm.device().metrics().snapshot();
        let traffic = snapshot
            .get("lsm_bulk_get")
            .expect("bulk_get kernel traffic");
        assert!(
            traffic.coalesced_read_bytes > 0,
            "grouped sweep must charge coalesced block reads"
        );
        // Empty batches and empty structures short-circuit.
        assert!(lsm.bulk_get(&[]).is_empty());
        let empty = GpuLsm::new(device(), 8).unwrap();
        assert_eq!(empty.bulk_get(&[1, 2]), vec![None, None]);
    }

    #[test]
    fn lookup_records_traffic() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        lsm.insert(&[(1, 1)]).unwrap();
        let _ = lsm.lookup_individual(&[1, 2, 3]);
        assert!(lsm.device().metrics().snapshot().contains_key("lsm_lookup"));
    }

    #[test]
    fn bulk_threshold_respects_env_floor_and_shape() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        lsm.insert(&[(1, 1)]).unwrap();
        // Whatever the calibration says, tiny batches stay individual.
        assert!(lsm.bulk_lookup_threshold() >= super::MIN_BULK_QUERIES);
    }

    #[test]
    fn per_instance_config_frac_controls_bulk_dispatch() {
        // The explicit-config route to the dispatch fraction: no env var
        // involved, and the override is scoped to this instance.
        let config = crate::config::LsmConfig::default().bulk_lookup_frac(0.5);
        let mut lsm = GpuLsm::with_config(device(), 1 << 12, &config).unwrap();
        let pairs: Vec<(u32, u32)> = (0..4096u32).map(|k| (k, k)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(lsm.bulk_lookup_threshold(), 2048);
        // An unconfigured instance of the same shape keeps the calibrated
        // (or env-driven) threshold, which at minimum honours the floor.
        let mut plain = GpuLsm::new(device(), 1 << 12).unwrap();
        plain.insert(&pairs).unwrap();
        assert!(plain.bulk_lookup_threshold() >= super::MIN_BULK_QUERIES);
    }
}
