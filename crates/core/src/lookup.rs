//! Bulk lookup queries.
//!
//! Each query is independent (the paper's "individual approach", §IV-B): a
//! thread walks the occupied levels from the smallest (most recent) to the
//! largest, performing a lower-bound binary search per level on the original
//! key.  The first element found with a matching key decides the outcome —
//! a regular element returns its value, a tombstone means the key was
//! deleted — because the building invariants of §III-D order equal keys
//! newest-first within a level and newer levels are searched first.

use gpu_sim::AccessPattern;
use rayon::prelude::*;

use crate::key::{is_regular, original_key, Key, Value};
use crate::lsm::GpuLsm;

impl GpuLsm {
    /// Look up a batch of keys in parallel.  Returns, for each query key,
    /// `Some(value)` of the most recent insertion if the key is present and
    /// not deleted, `None` otherwise.
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let kernel = "lsm_lookup";
        self.device().metrics().record_launch(kernel);
        self.device().metrics().record_read(
            kernel,
            std::mem::size_of_val(queries) as u64,
            AccessPattern::Coalesced,
        );
        // Traffic accounting: each query performs a binary search in every
        // occupied level until it finds a hit; the worst case (miss) probes
        // every level.  Each probe is a scattered (random) access.
        let probes: u64 = self
            .levels()
            .iter_occupied()
            .map(|(_, level)| (usize::BITS - level.len().leading_zeros()) as u64)
            .sum();
        self.device().metrics().record_scattered_probes(
            kernel,
            probes * queries.len() as u64,
            std::mem::size_of::<Key>() as u64,
        );

        self.device().timer().time("lookup", || {
            queries.par_iter().map(|&q| self.lookup_one(q)).collect()
        })
    }

    /// Look up a single key (the per-thread body of [`GpuLsm::lookup`],
    /// usable on its own for asynchronous individual queries).
    pub fn lookup_one(&self, query: Key) -> Option<Value> {
        for (_, level) in self.levels().iter_occupied() {
            let keys = level.keys();
            // Lower bound on the original key: first element with key >= query.
            let idx = gpu_primitives::search::lower_bound_by(keys, &(query << 1), |a, b| {
                (a >> 1) < (b >> 1)
            });
            if idx < keys.len() && original_key(keys[idx]) == query {
                return if is_regular(keys[idx]) {
                    Some(level.values()[idx])
                } else {
                    None // most recent instance is a tombstone: deleted
                };
            }
        }
        None
    }

    /// Whether `key` is currently present (not deleted).
    pub fn contains(&self, key: Key) -> bool {
        self.lookup_one(key).is_some()
    }

    /// The paper's *bulk* lookup alternative (§IV-B): sort all queries once,
    /// then resolve them against every occupied level with a streaming
    /// sorted search instead of per-query binary searches.
    ///
    /// Returns results in the original query order, identical to
    /// [`GpuLsm::lookup`].  The trade-off it exists to expose: the query
    /// sort is an extra bulk pass, but each level is then scanned with
    /// coalesced accesses rather than probed randomly — profitable when
    /// there are many queries relative to the structure size.
    pub fn lookup_bulk_sorted(&self, queries: &[Key]) -> Vec<Option<Value>> {
        let kernel = "lsm_lookup_bulk";
        self.device().metrics().record_launch(kernel);
        if queries.is_empty() {
            return Vec::new();
        }
        self.device().timer().time("lookup_bulk", || {
            // Sort the queries, remembering their original positions.
            let mut sorted_queries: Vec<Key> = queries.to_vec();
            let mut positions: Vec<u32> = (0..queries.len() as u32).collect();
            gpu_primitives::radix_sort::sort_pairs(
                self.device(),
                &mut sorted_queries,
                &mut positions,
            );
            // Encode the probes like stored keys (key << 1) so the key-only
            // comparator applies uniformly to needles and haystack.
            let probes: Vec<u32> = sorted_queries.iter().map(|&q| q << 1).collect();

            // Resolve levels newest-first; the first level that decides a
            // query (hit or tombstone) wins.
            let mut results: Vec<Option<Value>> = vec![None; queries.len()];
            let mut decided: Vec<bool> = vec![false; queries.len()];
            for (_, level) in self.levels().iter_occupied() {
                let keys = level.keys();
                let lower_bounds = gpu_primitives::sorted_search::sorted_lower_bound(
                    self.device(),
                    keys,
                    &probes,
                    |a, b| (a >> 1) < (b >> 1),
                );
                for (qi, &idx) in lower_bounds.iter().enumerate() {
                    let original = positions[qi] as usize;
                    if decided[original] {
                        continue;
                    }
                    if idx < keys.len() && original_key(keys[idx]) == sorted_queries[qi] {
                        decided[original] = true;
                        results[original] = if is_regular(keys[idx]) {
                            Some(level.values()[idx])
                        } else {
                            None
                        };
                    }
                }
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::batch::UpdateBatch;
    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn finds_inserted_keys_and_misses_absent_ones() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (k * 2, k * 100)).collect();
        lsm.insert(&pairs).unwrap();
        assert_eq!(lsm.lookup(&[0, 2, 14]), vec![Some(0), Some(100), Some(700)]);
        assert_eq!(lsm.lookup(&[1, 3, 99]), vec![None, None, None]);
        assert!(lsm.contains(4));
        assert!(!lsm.contains(5));
    }

    #[test]
    fn most_recent_insertion_wins_across_batches() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.insert(&[(2, 999), (5, 50), (6, 60), (7, 70)]).unwrap();
        assert_eq!(lsm.lookup(&[2]), vec![Some(999)]);
        assert_eq!(lsm.lookup(&[1]), vec![Some(10)]);
    }

    #[test]
    fn deletion_hides_older_insertions() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.delete(&[2, 3]).unwrap();
        assert_eq!(
            lsm.lookup(&[1, 2, 3, 4]),
            vec![Some(10), None, None, Some(40)]
        );
    }

    #[test]
    fn reinsert_after_delete_is_visible() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(7, 70), (8, 80)]).unwrap();
        lsm.delete(&[7]).unwrap();
        lsm.insert(&[(7, 71)]).unwrap();
        assert_eq!(lsm.lookup(&[7]), vec![Some(71)]);
    }

    #[test]
    fn insert_and_delete_same_batch_resolves_to_deleted() {
        // Semantics rule 6: a key inserted and deleted within the same batch
        // is considered deleted.
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(5, 50).delete(5).insert(6, 60).insert(7, 70);
        lsm.update(&batch).unwrap();
        assert_eq!(lsm.lookup(&[5, 6, 7]), vec![None, Some(60), Some(70)]);
    }

    #[test]
    fn duplicate_keys_in_one_batch_resolve_deterministically() {
        // Semantics rule 4: one of the duplicates is chosen; with a stable
        // sort and first-match lookups it is the first one pushed.
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(9, 1), (9, 2), (9, 3), (9, 4)]).unwrap();
        assert_eq!(lsm.lookup(&[9]), vec![Some(1)]);
    }

    #[test]
    fn lookup_on_empty_lsm_returns_none() {
        let lsm = GpuLsm::new(device(), 4).unwrap();
        assert_eq!(lsm.lookup(&[1, 2, 3]), vec![None, None, None]);
    }

    #[test]
    fn lookup_across_many_batches_and_levels() {
        let mut lsm = GpuLsm::new(device(), 16).unwrap();
        // 9 batches → levels 0 and 3 occupied; keys 0..144.
        for b in 0..9u32 {
            let pairs: Vec<(u32, u32)> = (0..16).map(|i| (b * 16 + i, b * 1000 + i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        let queries: Vec<u32> = (0..144).collect();
        let results = lsm.lookup(&queries);
        for (q, r) in queries.iter().zip(results.iter()) {
            let batch = q / 16;
            let i = q % 16;
            assert_eq!(*r, Some(batch * 1000 + i), "query {q}");
        }
        assert_eq!(lsm.lookup(&[144, 1000]), vec![None, None]);
    }

    #[test]
    fn bulk_sorted_lookup_matches_individual_lookup() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut lsm = GpuLsm::new(device(), 64).unwrap();
        for round in 0..7u32 {
            let mut batch = UpdateBatch::new();
            let mut used = std::collections::HashSet::new();
            while used.len() < 64 {
                let key = rng.gen_range(0..2000u32);
                if !used.insert(key) {
                    continue;
                }
                if rng.gen_bool(0.2) {
                    batch.delete(key);
                } else {
                    batch.insert(key, round * 10_000 + key);
                }
            }
            lsm.update(&batch).unwrap();
        }
        let queries: Vec<u32> = (0..2500).map(|i| (i * 17) % 2600).collect();
        assert_eq!(lsm.lookup_bulk_sorted(&queries), lsm.lookup(&queries));
        // Empty query set and empty structure are handled.
        assert!(lsm.lookup_bulk_sorted(&[]).is_empty());
        let empty = GpuLsm::new(device(), 8).unwrap();
        assert_eq!(empty.lookup_bulk_sorted(&[1, 2]), vec![None, None]);
    }

    #[test]
    fn lookup_records_traffic() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        lsm.insert(&[(1, 1)]).unwrap();
        let _ = lsm.lookup(&[1, 2, 3]);
        assert!(lsm.device().metrics().snapshot().contains_key("lsm_lookup"));
    }
}
