//! Virtual filesystem seam for the durability pipeline.
//!
//! Every syscall the write-ahead log and snapshot machinery issue goes
//! through the [`Vfs`] trait: open, append, truncate, sync, rename,
//! directory sync, remove, and directory listing.  [`RealVfs`] is the
//! zero-cost default that forwards straight to `std::fs`.  [`FaultVfs`]
//! is a deterministic test implementation that injects transient and
//! permanent errors — `ENOSPC`, `EIO`, failed `fsync`, failed `rename`,
//! torn short-writes — at chosen operation counts (a *script*) or at
//! seeded pseudo-random points, extending the recovery harness's
//! kill-at-arbitrary-point discipline to injected IO faults.
//!
//! The seam exists so the chaos harness
//! (`crates/core/tests/fault_injection.rs`) can prove, differentially
//! against the `BTreeMap` model, that the pipeline *retries* transient
//! faults invisibly, *fails stop* or *degrades to volatile* on permanent
//! ones (per [`crate::wal::DegradeMode`]), and that a degraded pipeline's
//! durable prefix still recovers exactly.

use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open, writable file handle produced by [`Vfs::open_write`].
pub trait VfsFile: Send + Debug {
    /// Append the whole buffer at the current position.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the write position to `pos` bytes from the start.
    fn seek_start(&mut self, pos: u64) -> io::Result<()>;
    /// `fdatasync`: flush file contents to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`: flush contents and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability pipeline performs.  All paths
/// are absolute (the caller joins against the durability directory).
pub trait Vfs: Send + Sync + Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create (truncate) a file and write `bytes` to it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Open a file for writing: `truncate` starts it empty, otherwise the
    /// existing contents are kept (append-style reopen).
    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>>;
    /// `fsync` an already-written file by path.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of a directory's entries.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// `fsync` the directory entry itself (durability of renames/creates).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create the directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

// ----------------------------------------------------------------------
// RealVfs: the std::fs passthrough
// ----------------------------------------------------------------------

/// The production [`Vfs`]: every operation forwards to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_start(&mut self, pos: u64) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(truncate)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}

// ----------------------------------------------------------------------
// FaultVfs: deterministic fault injection
// ----------------------------------------------------------------------

/// The operation classes [`FaultVfs`] counts and can fault independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// [`Vfs::open_write`] (segment create / reopen).
    Open,
    /// [`Vfs::read`] (segment scan, manifest and run loads).
    Read,
    /// [`Vfs::write`] (whole-file writes: runs, tmp manifests, markers).
    Write,
    /// [`VfsFile::write_all`] (WAL record appends).
    Append,
    /// [`VfsFile::set_len`] (rollback / truncation).
    SetLen,
    /// Any sync: [`VfsFile::sync_data`], [`VfsFile::sync_all`],
    /// [`Vfs::sync_file`].
    Sync,
    /// [`Vfs::rename`] (manifest publication).
    Rename,
    /// [`Vfs::remove_file`] (garbage collection).
    Remove,
    /// [`Vfs::read_dir_names`] (manifest/segment discovery).
    ReadDir,
    /// [`Vfs::sync_dir`].
    DirSync,
    /// [`Vfs::create_dir_all`].
    CreateDir,
}

const NUM_OPS: usize = 11;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Open => 0,
            FaultOp::Read => 1,
            FaultOp::Write => 2,
            FaultOp::Append => 3,
            FaultOp::SetLen => 4,
            FaultOp::Sync => 5,
            FaultOp::Rename => 6,
            FaultOp::Remove => 7,
            FaultOp::ReadDir => 8,
            FaultOp::DirSync => 9,
            FaultOp::CreateDir => 10,
        }
    }
}

/// How a scripted fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail exactly the matching occurrence with this error kind; the next
    /// attempt (a retry) succeeds.
    Transient(io::ErrorKind),
    /// Fail the matching occurrence **and every later one** of the same
    /// operation class — a dead disk, not a hiccup.
    Permanent(io::ErrorKind),
    /// Write only the first `n` bytes of the buffer, then fail once — a
    /// torn write.  Only meaningful for [`FaultOp::Append`] /
    /// [`FaultOp::Write`]; on other ops it behaves like a transient error.
    ShortWrite(usize),
}

/// One scripted fault: fire when the `nth` occurrence (0-based, counted
/// per operation class) of `op` happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The operation class to fault.
    pub op: FaultOp,
    /// 0-based occurrence index within that class.
    pub nth: u64,
    /// Transient, permanent, or torn.
    pub kind: FaultKind,
}

impl Fault {
    /// A transient fault (fails once, retry succeeds).
    pub fn transient(op: FaultOp, nth: u64, kind: io::ErrorKind) -> Self {
        Fault {
            op,
            nth,
            kind: FaultKind::Transient(kind),
        }
    }
    /// A permanent fault (fails from `nth` onwards).
    pub fn permanent(op: FaultOp, nth: u64, kind: io::ErrorKind) -> Self {
        Fault {
            op,
            nth,
            kind: FaultKind::Permanent(kind),
        }
    }
    /// A torn short-write of `bytes` bytes at occurrence `nth`.
    pub fn short_write(op: FaultOp, nth: u64, bytes: usize) -> Self {
        Fault {
            op,
            nth,
            kind: FaultKind::ShortWrite(bytes),
        }
    }
}

#[derive(Debug)]
struct FaultState {
    counts: [u64; NUM_OPS],
    script: Vec<Fault>,
    /// xorshift64* state + period for seeded transient faults (`None` =
    /// script-only).  Roughly one op in `period` faults.
    seeded: Option<(u64, u64)>,
    injected: u64,
}

enum Decision {
    Pass,
    Fail(io::Error),
    Short(usize, io::Error),
}

impl FaultState {
    fn decide(&mut self, op: FaultOp) -> Decision {
        let i = op.index();
        let occurrence = self.counts[i];
        self.counts[i] += 1;
        for fault in &self.script {
            if fault.op != op {
                continue;
            }
            let (fires, error) = match fault.kind {
                FaultKind::Transient(kind) => (
                    occurrence == fault.nth,
                    io::Error::new(kind, "injected transient fault"),
                ),
                FaultKind::Permanent(kind) => (
                    occurrence >= fault.nth,
                    io::Error::new(kind, "injected permanent fault"),
                ),
                FaultKind::ShortWrite(n) => {
                    if occurrence == fault.nth {
                        self.injected += 1;
                        return Decision::Short(
                            n,
                            io::Error::new(io::ErrorKind::WriteZero, "injected torn write"),
                        );
                    }
                    (false, io::Error::other("unreachable"))
                }
            };
            if fires {
                self.injected += 1;
                return Decision::Fail(error);
            }
        }
        if let Some((state, period)) = &mut self.seeded {
            // xorshift64*: deterministic per construction seed and op
            // sequence (durability ops are serialized under the WAL lock).
            let mut x = *state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *state = x;
            if x.wrapping_mul(0x2545_F491_4F6C_DD1D) % *period == 0 {
                self.injected += 1;
                return Decision::Fail(io::Error::other("injected seeded transient fault"));
            }
        }
        Decision::Pass
    }
}

/// A deterministic fault-injecting [`Vfs`] wrapping an inner
/// implementation ([`RealVfs`] by default).  Cloning shares the fault
/// state, so file handles and the vfs draw from one operation counter
/// sequence.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// Script-driven faults over [`RealVfs`].
    pub fn scripted(script: Vec<Fault>) -> Self {
        Self::new(Arc::new(RealVfs), script, None)
    }

    /// Seeded pseudo-random transient faults over [`RealVfs`]: roughly one
    /// operation in `period` fails once with a retryable error.
    pub fn seeded(seed: u64, period: u64) -> Self {
        Self::new(
            Arc::new(RealVfs),
            Vec::new(),
            Some((seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1, period.max(1))),
        )
    }

    /// Full control: explicit inner vfs, script, and optional seeded mode.
    pub fn new(inner: Arc<dyn Vfs>, script: Vec<Fault>, seeded: Option<(u64, u64)>) -> Self {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                counts: [0; NUM_OPS],
                script,
                seeded,
                injected: 0,
            })),
        }
    }

    /// Total faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Operations of class `op` observed so far (including faulted ones).
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.state.lock().unwrap().counts[op.index()]
    }

    fn gate(&self, op: FaultOp) -> io::Result<()> {
        match self.state.lock().unwrap().decide(op) {
            Decision::Pass => Ok(()),
            Decision::Fail(e) => Err(e),
            // Short writes only make sense against a buffer; path-level
            // ops treat them as plain failures.
            Decision::Short(_, e) => Err(e),
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultFile {
    fn gate(&self, op: FaultOp) -> io::Result<()> {
        match self.state.lock().unwrap().decide(op) {
            Decision::Pass => Ok(()),
            Decision::Fail(e) | Decision::Short(_, e) => Err(e),
        }
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.state.lock().unwrap().decide(FaultOp::Append) {
            Decision::Pass => self.inner.write_all(bytes),
            Decision::Fail(e) => Err(e),
            Decision::Short(n, e) => {
                // Torn write: part of the frame lands on disk, then the
                // device gives up.  The caller sees the error with the
                // partial bytes already durable-in-page-cache.
                self.inner.write_all(&bytes[..n.min(bytes.len())])?;
                Err(e)
            }
        }
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.gate(FaultOp::SetLen)?;
        self.inner.set_len(len)
    }
    fn seek_start(&mut self, pos: u64) -> io::Result<()> {
        self.inner.seek_start(pos)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.gate(FaultOp::Sync)?;
        self.inner.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.gate(FaultOp::Sync)?;
        self.inner.sync_all()
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate(FaultOp::Read)?;
        self.inner.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.state.lock().unwrap().decide(FaultOp::Write) {
            Decision::Pass => self.inner.write(path, bytes),
            Decision::Fail(e) => Err(e),
            Decision::Short(n, e) => {
                self.inner.write(path, &bytes[..n.min(bytes.len())])?;
                Err(e)
            }
        }
    }
    fn open_write(&self, path: &Path, truncate: bool) -> io::Result<Box<dyn VfsFile>> {
        self.gate(FaultOp::Open)?;
        let inner = self.inner.open_write(path, truncate)?;
        Ok(Box::new(FaultFile {
            inner,
            state: Arc::clone(&self.state),
        }))
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.gate(FaultOp::Sync)?;
        self.inner.sync_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(FaultOp::Rename)?;
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(FaultOp::Remove)?;
        self.inner.remove_file(path)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.gate(FaultOp::ReadDir)?;
        self.inner.read_dir_names(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(FaultOp::DirSync)?;
        self.inner.sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gate(FaultOp::CreateDir)?;
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gpu-lsm-vfs-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips() {
        let dir = temp_dir("real");
        let vfs = RealVfs;
        let path = dir.join("a.bin");
        vfs.write(&path, b"hello").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");
        let mut f = vfs.open_write(&path, false).unwrap();
        f.seek_start(5).unwrap();
        f.write_all(b" world").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        vfs.rename(&path, &dir.join("b.bin")).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert!(vfs.read_dir_names(&dir).unwrap().contains(&"b.bin".into()));
        vfs.remove_file(&dir.join("b.bin")).unwrap();
        assert!(vfs.read_dir_names(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_fault_fires_exactly_once() {
        let dir = temp_dir("transient");
        let vfs = FaultVfs::scripted(vec![Fault::transient(
            FaultOp::Write,
            1,
            io::ErrorKind::StorageFull,
        )]);
        let path = dir.join("x");
        vfs.write(&path, b"0").unwrap(); // occurrence 0: passes
        let err = vfs.write(&path, b"1").unwrap_err(); // occurrence 1: faults
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        vfs.write(&path, b"2").unwrap(); // occurrence 2: retry succeeds
        assert_eq!(vfs.injected_faults(), 1);
        assert_eq!(vfs.op_count(FaultOp::Write), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permanent_fault_fires_forever() {
        let dir = temp_dir("permanent");
        let vfs = FaultVfs::scripted(vec![Fault::permanent(
            FaultOp::Sync,
            2,
            io::ErrorKind::Other,
        )]);
        let path = dir.join("x");
        vfs.write(&path, b"data").unwrap();
        vfs.sync_file(&path).unwrap(); // 0
        vfs.sync_file(&path).unwrap(); // 1
        for _ in 0..3 {
            assert!(vfs.sync_file(&path).is_err()); // 2, 3, 4: all fail
        }
        assert_eq!(vfs.injected_faults(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_tears_the_frame() {
        let dir = temp_dir("short");
        let vfs = FaultVfs::scripted(vec![Fault::short_write(FaultOp::Append, 1, 3)]);
        let path = dir.join("x");
        let mut f = vfs.open_write(&path, true).unwrap();
        f.write_all(b"aaaa").unwrap(); // occurrence 0: full write
        let err = f.write_all(b"bbbb").unwrap_err(); // occurrence 1: torn
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        f.write_all(b"cc").unwrap(); // occurrence 2: fine again
        drop(f);
        // Exactly 3 of the 4 torn bytes landed between the good writes.
        assert_eq!(RealVfs.read(&path).unwrap(), b"aaaabbbcc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_faults_are_deterministic_and_transient() {
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let dir = temp_dir("seeded");
                let vfs = FaultVfs::seeded(42, 3);
                let path = dir.join("x");
                let outcomes = (0..64)
                    .map(|i| vfs.write(&path, &[i]).is_ok())
                    .collect::<Vec<_>>();
                assert!(vfs.injected_faults() > 0, "period 3 over 64 ops must fire");
                std::fs::remove_dir_all(&dir).unwrap();
                outcomes
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed, same fault sequence");
        assert!(runs[0].iter().any(|ok| !ok));
        assert!(runs[0].iter().any(|ok| *ok));
    }
}
