//! Levels of the GPU LSM: sorted arrays of exactly `b·2^i` elements.
//!
//! With `r` resident batches the occupied levels are the set bits of the
//! binary representation of `r` (paper §III-B).  Each level stores its
//! encoded keys and values as two parallel arrays (structure-of-arrays, the
//! layout the real implementation uses for coalesced access), sorted by the
//! original key with same-key elements ordered newest-first.
//!
//! ## Query acceleration
//!
//! Alongside the arrays, every level carries two read-only side structures
//! built **once** when the level is constructed (i.e. during the insert
//! path's sort/merge or a bulk rebuild, never on the query path):
//!
//! * a blocked **Bloom filter** over the level's original keys
//!   ([`gpu_primitives::filter`], sized by `LSM_BLOOM_BITS`), and
//! * a **fence array** ([`gpu_primitives::fence`]) sampling every 256th
//!   key, which narrows every binary search to one ≤ 256-element window and
//!   exposes the level's min/max key for level/shard skipping.
//!
//! Fences cost ~0.4 % of the level's memory and a `len / 256`-sample pass,
//! so every level gets them.  Filter construction hashes every key, which
//! is comparable to the cost of merging it, so whether a filter is built
//! depends on how long the level will live (how many queries will amortize
//! the build): levels produced by a **bulk rebuild** (bulk build, cleanup)
//! are long-lived and get filters from [`FILTER_MIN_LEN`] elements up,
//! while **carry-chain** levels — level `i` is consumed by a merge after at
//! most `2^i` further batches — only get filters from
//! [`CARRY_FILTER_MIN_LEN`] up, where the lifetime is long enough for the
//! build to pay for itself and short-lived small levels keep the insert
//! path untaxed.  The carry-chain policy decision is made by the
//! compaction planner ([`crate::compaction::CompactionPlan`]), whose
//! executor assembles the output through the crate-internal
//! `Level::from_sorted_with_aux` with incrementally maintained structures.
//!
//! Both structures are conservative: a filter negative or an empty fence
//! window proves the level cannot affect a query, and otherwise the
//! narrowed search returns exactly the index a full search would.  Query
//! results are therefore bit-identical with the acceleration on or off.

use std::sync::atomic::{AtomicUsize, Ordering};

use gpu_primitives::fence::FenceArray;
use gpu_primitives::filter::{config_bits_per_key, BloomFilter};

use crate::arena::{RegionSpan, Storage};
use crate::key::{key_less, original_key, EncodedKey, Key, Value};

/// Minimum level length for a Bloom filter on long-lived (bulk-rebuilt)
/// levels: below this a fence-narrowed search is already about as cheap as
/// a filter probe.
pub const FILTER_MIN_LEN: usize = 1 << 10;

/// Minimum level length for a Bloom filter on carry-chain levels, which are
/// consumed by a future merge after ~`len / b` more batches: the build
/// (one hash per key) only amortizes once the level lives long enough.
pub const CARRY_FILTER_MIN_LEN: usize = 1 << 17;

/// `usize::MAX` = no override; anything else replaces
/// [`CARRY_FILTER_MIN_LEN`] (tests force the carry-chain filter paths at
/// small sizes with this).
static CARRY_MIN_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// The effective carry-chain filter threshold: a test override if one is
/// set, otherwise [`CARRY_FILTER_MIN_LEN`].
pub fn carry_filter_min_len() -> usize {
    let o = CARRY_MIN_OVERRIDE.load(Ordering::Relaxed);
    if o == usize::MAX {
        CARRY_FILTER_MIN_LEN
    } else {
        o
    }
}

/// Test-only override of the carry-chain filter threshold; `None` restores
/// the default.  Lets differential tests exercise the incremental filter
/// maintenance paths without building 128Ki-element structures.
#[doc(hidden)]
pub fn set_carry_filter_min_len_override(len: Option<usize>) {
    CARRY_MIN_OVERRIDE.store(len.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// Outcome of probing a level for one key (see [`Level::find`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelProbe {
    /// The newest element with the queried key, if the level holds one.
    pub entry: Option<(EncodedKey, Value)>,
    /// Whether a Bloom filter membership test ran (one block read).
    pub filter_probed: bool,
    /// Whether the Bloom filter answered "definitely absent" (in which case
    /// no binary search ran).
    pub filter_skipped: bool,
    /// Scattered binary-search probes the lookup performed.
    pub probes: u32,
}

/// One occupied level of the LSM.
///
/// Key and value arrays live in `Storage` (see `crate::arena`): a plain vector
/// for long-lived bulk-built levels (and arena-off operation), or a
/// reserved slab-arena region for carry-chain outputs.  Cloning a level
/// deep-copies arena-backed storage to owned vectors, so clones never alias
/// the arena.
#[derive(Debug, Clone, Default)]
pub struct Level {
    keys: Storage,
    values: Storage,
    filter: Option<BloomFilter>,
    fences: Option<FenceArray>,
}

/// Level equality is over contents only; the filter and fences are a pure
/// function of the keys (plus process-wide sizing) and are excluded so that
/// filters-on and filters-off structures holding the same data compare equal.
impl PartialEq for Level {
    fn eq(&self, other: &Self) -> bool {
        self.keys.as_slice() == other.keys.as_slice()
            && self.values.as_slice() == other.values.as_slice()
    }
}

impl Eq for Level {}

impl Level {
    /// Build a long-lived level (bulk build, cleanup redistribution) from
    /// already-sorted parallel key/value arrays: fences always, a Bloom
    /// filter from [`FILTER_MIN_LEN`] elements up.
    pub fn from_sorted(keys: Vec<EncodedKey>, values: Vec<Value>) -> Self {
        Self::build(keys, values, FILTER_MIN_LEN)
    }

    /// Assemble a level from already-sorted arrays **and** pre-built
    /// acceleration structures — the carry-chain executor's constructor,
    /// which maintains filters and fences incrementally across merges
    /// instead of rebuilding them here (see [`crate::compaction`]).
    ///
    /// The caller guarantees the aux structures describe exactly these
    /// keys: the fences' min/max and window invariants and the filter's
    /// no-false-negative property are what queries rely on.
    pub(crate) fn from_sorted_with_aux(
        keys: impl Into<Storage>,
        values: impl Into<Storage>,
        filter: Option<BloomFilter>,
        fences: Option<FenceArray>,
    ) -> Self {
        let keys = keys.into();
        let values = values.into();
        debug_assert_eq!(keys.len(), values.len());
        debug_assert!(
            keys.windows(2).all(|w| !key_less(&w[1], &w[0])),
            "level keys must be sorted by original key"
        );
        if let Some(f) = &fences {
            debug_assert_eq!(f.indexed_len(), keys.len());
            debug_assert_eq!(f.min_key(), original_key(keys[0]));
            debug_assert_eq!(f.max_key(), original_key(keys[keys.len() - 1]));
        }
        Level {
            keys,
            values,
            filter,
            fences,
        }
    }

    /// Shared constructor: the query-acceleration structures are built
    /// here, in one streaming pass over the freshly produced keys, and are
    /// never touched again until the level is consumed by a merge.
    fn build(keys: Vec<EncodedKey>, values: Vec<Value>, filter_min_len: usize) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        debug_assert!(
            keys.windows(2).all(|w| !key_less(&w[1], &w[0])),
            "level keys must be sorted by original key"
        );
        let filter = if keys.len() >= filter_min_len {
            BloomFilter::build(keys.iter().map(|&k| original_key(k)), config_bits_per_key())
        } else {
            None
        };
        let fences = FenceArray::build_with(
            keys.len(),
            gpu_primitives::fence::DEFAULT_FENCE_INTERVAL,
            |i| original_key(keys[i]),
        );
        Level {
            keys: keys.into(),
            values: values.into(),
            filter,
            fences,
        }
    }

    // ------------------------------------------------------------------
    // Accelerated searches
    // ------------------------------------------------------------------

    /// Probe the level for `query`: consult the Bloom filter (if present),
    /// then run a fence-narrowed lower-bound search.  Returns the newest
    /// element with the queried original key, if any, plus the probe's
    /// modelled cost (see [`LevelProbe`]).
    ///
    /// Exactly equivalent to a full binary search: the filter can only skip
    /// keys that are provably absent, and the fence window provably
    /// brackets the lower bound.
    pub fn find(&self, query: Key) -> LevelProbe {
        let filter_probed = self.filter.is_some();
        if let Some(filter) = &self.filter {
            if !filter.contains(query) {
                return LevelProbe {
                    entry: None,
                    filter_probed,
                    filter_skipped: true,
                    probes: 0,
                };
            }
        }
        let idx = self.lower_bound(query);
        let entry = (idx < self.keys.len() && original_key(self.keys[idx]) == query)
            .then(|| (self.keys[idx], self.values[idx]));
        LevelProbe {
            entry,
            filter_probed,
            filter_skipped: false,
            probes: self.search_probe_depth(),
        }
    }

    /// Index of the first element whose original key is `>= query`
    /// (fence-narrowed; identical to a full-array lower bound).
    pub fn lower_bound(&self, query: Key) -> usize {
        let (lo, hi) = match &self.fences {
            Some(f) => f.lower_bound_window(query),
            None => (0, self.keys.len()),
        };
        lo + gpu_primitives::search::lower_bound_by(&self.keys[lo..hi], &(query << 1), |a, b| {
            (a >> 1) < (b >> 1)
        })
    }

    /// Index of the first element whose original key is `> query`
    /// (fence-narrowed; identical to a full-array upper bound).
    pub fn upper_bound(&self, query: Key) -> usize {
        let (lo, hi) = match &self.fences {
            Some(f) => f.upper_bound_window(query),
            None => (0, self.keys.len()),
        };
        lo + gpu_primitives::search::upper_bound_by(
            &self.keys[lo..hi],
            &((query << 1) | 1),
            |a, b| (a >> 1) < (b >> 1),
        )
    }

    /// Smallest original key resident in the level (tombstones included —
    /// a tombstone inside a query interval still decides queries).
    pub fn min_key(&self) -> Key {
        match &self.fences {
            Some(f) => f.min_key(),
            None => self.keys.first().map_or(Key::MAX, |&k| original_key(k)),
        }
    }

    /// Largest original key resident in the level (tombstones and placebo
    /// padding included, so pruning against it is always conservative).
    pub fn max_key(&self) -> Key {
        match &self.fences {
            Some(f) => f.max_key(),
            None => self.keys.last().map_or(0, |&k| original_key(k)),
        }
    }

    /// Worst-case scattered probes of one fence-narrowed search: the hot
    /// top of the Eytzinger fence tree is modelled as one cached touch,
    /// plus a binary search of one ≤ interval window (never more than the
    /// un-narrowed search would pay).
    pub fn search_probe_depth(&self) -> u32 {
        let full = usize::BITS - self.keys.len().leading_zeros();
        match &self.fences {
            Some(f) => (1 + f.window_probe_depth()).min(full.max(1)),
            None => full,
        }
    }

    /// Whether the closed interval `[k1, k2]` overlaps the level's resident
    /// key range — the single source of the fence min/max skip predicate
    /// used by count/range gathering and its traffic accounting.
    pub fn interval_intersects(&self, k1: Key, k2: Key) -> bool {
        k2 >= self.min_key() && k1 <= self.max_key()
    }

    /// The level's Bloom filter, when one was built.
    pub fn filter(&self) -> Option<&BloomFilter> {
        self.filter.as_ref()
    }

    /// The level's fence array (absent only for empty levels).
    pub fn fences(&self) -> Option<&FenceArray> {
        self.fences.as_ref()
    }

    /// Memory of the query-acceleration structures (filter + fences).
    pub fn accel_bytes(&self) -> (usize, usize) {
        (
            self.filter.as_ref().map_or(0, |f| f.size_bytes()),
            self.fences.as_ref().map_or(0, |f| f.size_bytes()),
        )
    }

    /// Number of elements in the level.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the level holds no elements.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The encoded keys, sorted by original key.
    pub fn keys(&self) -> &[EncodedKey] {
        self.keys.as_slice()
    }

    /// The values, parallel to [`Level::keys`].
    pub fn values(&self) -> &[Value] {
        self.values.as_slice()
    }

    /// Consume the level, returning its key and value arrays (copies when
    /// arena-backed; only cold paths — cleanup, snapshots — consume levels
    /// this way, the carry chain borrows and merges into arena regions).
    pub fn into_parts(self) -> (Vec<EncodedKey>, Vec<Value>) {
        (self.keys.into_vec(), self.values.into_vec())
    }

    /// The arena spans backing this level's arrays (empty when Vec-backed)
    /// — the `validate` overlap/aliasing invariant reads these.
    pub(crate) fn arena_spans(&self) -> impl Iterator<Item = RegionSpan> + '_ {
        self.keys
            .arena_span()
            .into_iter()
            .chain(self.values.arena_span())
    }

    /// Memory footprint of the level in bytes (keys + values).
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<EncodedKey>()
            + self.values.len() * std::mem::size_of::<Value>()
    }
}

/// The set of levels of an LSM with batch size `b` and `r` resident batches.
/// `levels[i]` is `Some` iff bit `i` of `r` is set.
#[derive(Debug, Clone, Default)]
pub struct LevelSet {
    levels: Vec<Option<Level>>,
}

impl LevelSet {
    /// An empty level set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of level slots (occupied or not) currently allocated.
    pub fn num_slots(&self) -> usize {
        self.levels.len()
    }

    /// The level at index `i`, if occupied.
    pub fn get(&self, i: usize) -> Option<&Level> {
        self.levels.get(i).and_then(|l| l.as_ref())
    }

    /// Whether level `i` is occupied.
    pub fn is_full(&self, i: usize) -> bool {
        self.get(i).is_some()
    }

    /// Take (empty) level `i`, returning its contents.
    pub fn take(&mut self, i: usize) -> Option<Level> {
        self.levels.get_mut(i).and_then(|l| l.take())
    }

    /// Place `level` at index `i`, which must currently be empty.
    pub fn place(&mut self, i: usize, level: Level) {
        while self.levels.len() <= i {
            self.levels.push(None);
        }
        debug_assert!(self.levels[i].is_none(), "placing into an occupied level");
        self.levels[i] = Some(level);
    }

    /// Remove and return every occupied level, smallest index first.
    pub fn drain_occupied(&mut self) -> Vec<(usize, Level)> {
        let mut out = Vec::new();
        for (i, slot) in self.levels.iter_mut().enumerate() {
            if let Some(level) = slot.take() {
                out.push((i, level));
            }
        }
        self.levels.clear();
        out
    }

    /// Iterate over occupied levels, smallest (most recent) index first.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &Level)> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|level| (i, level)))
    }

    /// Number of occupied levels.
    pub fn num_occupied(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Total number of elements across all occupied levels.
    pub fn total_elements(&self) -> usize {
        self.iter_occupied().map(|(_, l)| l.len()).sum()
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.iter_occupied().map(|(_, l)| l.size_bytes()).sum()
    }

    /// Remove all levels.
    pub fn clear(&mut self) {
        self.levels.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::encode_regular;

    fn level_of(keys: &[u32]) -> Level {
        let encoded: Vec<u32> = keys.iter().map(|&k| encode_regular(k)).collect();
        let values: Vec<u32> = keys.iter().map(|&k| k * 10).collect();
        Level::from_sorted(encoded, values)
    }

    #[test]
    fn level_accessors() {
        let level = level_of(&[1, 2, 3]);
        assert_eq!(level.len(), 3);
        assert!(!level.is_empty());
        assert_eq!(level.values(), &[10, 20, 30]);
        assert_eq!(level.size_bytes(), 3 * 8);
        let (k, v) = level.into_parts();
        assert_eq!(k.len(), 3);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn occupancy_follows_placement() {
        let mut set = LevelSet::new();
        assert_eq!(set.num_occupied(), 0);
        set.place(1, level_of(&[1, 2]));
        set.place(3, level_of(&[3, 4, 5, 6, 7, 8, 9, 10]));
        assert!(set.is_full(1));
        assert!(!set.is_full(0));
        assert!(!set.is_full(2));
        assert!(set.is_full(3));
        assert_eq!(set.num_occupied(), 2);
        assert_eq!(set.total_elements(), 10);
    }

    #[test]
    fn take_empties_a_slot() {
        let mut set = LevelSet::new();
        set.place(0, level_of(&[5]));
        let taken = set.take(0).unwrap();
        assert_eq!(taken.len(), 1);
        assert!(!set.is_full(0));
        assert!(set.take(0).is_none());
        assert!(set.take(99).is_none());
    }

    #[test]
    fn drain_returns_levels_in_index_order() {
        let mut set = LevelSet::new();
        set.place(2, level_of(&[1, 2, 3, 4]));
        set.place(0, level_of(&[9]));
        let drained = set.drain_occupied();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[1].0, 2);
        assert_eq!(set.num_occupied(), 0);
    }

    #[test]
    fn iter_occupied_skips_empty_slots() {
        let mut set = LevelSet::new();
        set.place(1, level_of(&[1, 1]));
        let occupied: Vec<usize> = set.iter_occupied().map(|(i, _)| i).collect();
        assert_eq!(occupied, vec![1]);
    }

    #[test]
    fn clear_removes_everything() {
        let mut set = LevelSet::new();
        set.place(0, level_of(&[1]));
        set.clear();
        assert_eq!(set.total_elements(), 0);
        assert_eq!(set.num_slots(), 0);
    }

    #[test]
    fn accelerated_bounds_match_full_search() {
        let keys: Vec<u32> = (0..3000u32).map(|i| i / 2 * 3).collect(); // dups + gaps
        let level = level_of(&keys);
        let origs: Vec<u32> = keys.clone();
        for q in (0..4600).step_by(7) {
            assert_eq!(
                level.lower_bound(q),
                origs.partition_point(|&k| k < q),
                "lower_bound({q})"
            );
            assert_eq!(
                level.upper_bound(q),
                origs.partition_point(|&k| k <= q),
                "upper_bound({q})"
            );
        }
        assert_eq!(level.min_key(), 0);
        assert_eq!(level.max_key(), origs[origs.len() - 1]);
    }

    #[test]
    fn find_reports_hits_misses_and_filter_skips() {
        // Large enough for a long-lived level to build its filter.
        let keys: Vec<u32> = (0..(super::FILTER_MIN_LEN as u32)).map(|i| i * 2).collect();
        let level = level_of(&keys);
        if gpu_primitives::filter::config_bits_per_key() > 0 {
            assert!(level.filter().is_some(), "long-lived level builds a filter");
        }
        let hit = level.find(10);
        assert_eq!(hit.entry, Some((encode_regular(10), 100)));
        assert!(!hit.filter_skipped);
        let miss = level.find(11);
        assert!(miss.entry.is_none());
        // A filterless level (aux constructor, as the carry chain builds
        // small outputs) still answers through the fence-narrowed search.
        let encoded: Vec<u32> = keys.iter().map(|&k| encode_regular(k)).collect();
        let fences = gpu_primitives::fence::FenceArray::build_with(
            encoded.len(),
            gpu_primitives::fence::DEFAULT_FENCE_INTERVAL,
            |i| encoded[i] >> 1,
        );
        let filterless = Level::from_sorted_with_aux(
            encoded,
            keys.iter().map(|&k| k * 10).collect::<Vec<u32>>(),
            None,
            fences,
        );
        assert!(filterless.filter().is_none());
        assert_eq!(filterless.find(10).entry, Some((encode_regular(10), 100)));
        assert!(level.search_probe_depth() <= 10);
        let (filter_bytes, fence_bytes) = level.accel_bytes();
        assert!(fence_bytes > 0);
        if level.filter().is_some() {
            assert!(filter_bytes > 0);
        }
    }

    #[test]
    fn tombstones_and_newest_first_order_are_respected_by_find() {
        use crate::key::encode_tombstone;
        // Key 5: tombstone (newest) then regular (older) — find must return
        // the tombstone, which is how deletions hide older insertions.
        let keys = vec![
            encode_regular(1),
            encode_tombstone(5),
            encode_regular(5),
            encode_regular(9),
        ];
        let level = Level::from_sorted(keys, vec![10, 0, 50, 90]);
        let probe = level.find(5);
        assert_eq!(probe.entry, Some((encode_tombstone(5), 0)));
        assert_eq!(level.min_key(), 1);
        assert_eq!(level.max_key(), 9);
    }
}
