//! Levels of the GPU LSM: sorted arrays of exactly `b·2^i` elements.
//!
//! With `r` resident batches the occupied levels are the set bits of the
//! binary representation of `r` (paper §III-B).  Each level stores its
//! encoded keys and values as two parallel arrays (structure-of-arrays, the
//! layout the real implementation uses for coalesced access), sorted by the
//! original key with same-key elements ordered newest-first.

use crate::key::{key_less, EncodedKey, Value};

/// One occupied level of the LSM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Level {
    keys: Vec<EncodedKey>,
    values: Vec<Value>,
}

impl Level {
    /// Build a level from already-sorted parallel key/value arrays.
    pub fn from_sorted(keys: Vec<EncodedKey>, values: Vec<Value>) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        debug_assert!(
            keys.windows(2).all(|w| !key_less(&w[1], &w[0])),
            "level keys must be sorted by original key"
        );
        Level { keys, values }
    }

    /// Number of elements in the level.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the level holds no elements.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The encoded keys, sorted by original key.
    pub fn keys(&self) -> &[EncodedKey] {
        &self.keys
    }

    /// The values, parallel to [`Level::keys`].
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the level, returning its key and value arrays.
    pub fn into_parts(self) -> (Vec<EncodedKey>, Vec<Value>) {
        (self.keys, self.values)
    }

    /// Memory footprint of the level in bytes (keys + values).
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<EncodedKey>()
            + self.values.len() * std::mem::size_of::<Value>()
    }
}

/// The set of levels of an LSM with batch size `b` and `r` resident batches.
/// `levels[i]` is `Some` iff bit `i` of `r` is set.
#[derive(Debug, Clone, Default)]
pub struct LevelSet {
    levels: Vec<Option<Level>>,
}

impl LevelSet {
    /// An empty level set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of level slots (occupied or not) currently allocated.
    pub fn num_slots(&self) -> usize {
        self.levels.len()
    }

    /// The level at index `i`, if occupied.
    pub fn get(&self, i: usize) -> Option<&Level> {
        self.levels.get(i).and_then(|l| l.as_ref())
    }

    /// Whether level `i` is occupied.
    pub fn is_full(&self, i: usize) -> bool {
        self.get(i).is_some()
    }

    /// Take (empty) level `i`, returning its contents.
    pub fn take(&mut self, i: usize) -> Option<Level> {
        self.levels.get_mut(i).and_then(|l| l.take())
    }

    /// Place `level` at index `i`, which must currently be empty.
    pub fn place(&mut self, i: usize, level: Level) {
        while self.levels.len() <= i {
            self.levels.push(None);
        }
        debug_assert!(self.levels[i].is_none(), "placing into an occupied level");
        self.levels[i] = Some(level);
    }

    /// Remove and return every occupied level, smallest index first.
    pub fn drain_occupied(&mut self) -> Vec<(usize, Level)> {
        let mut out = Vec::new();
        for (i, slot) in self.levels.iter_mut().enumerate() {
            if let Some(level) = slot.take() {
                out.push((i, level));
            }
        }
        self.levels.clear();
        out
    }

    /// Iterate over occupied levels, smallest (most recent) index first.
    pub fn iter_occupied(&self) -> impl Iterator<Item = (usize, &Level)> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|level| (i, level)))
    }

    /// Number of occupied levels.
    pub fn num_occupied(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Total number of elements across all occupied levels.
    pub fn total_elements(&self) -> usize {
        self.iter_occupied().map(|(_, l)| l.len()).sum()
    }

    /// Total memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.iter_occupied().map(|(_, l)| l.size_bytes()).sum()
    }

    /// Remove all levels.
    pub fn clear(&mut self) {
        self.levels.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::encode_regular;

    fn level_of(keys: &[u32]) -> Level {
        let encoded: Vec<u32> = keys.iter().map(|&k| encode_regular(k)).collect();
        let values: Vec<u32> = keys.iter().map(|&k| k * 10).collect();
        Level::from_sorted(encoded, values)
    }

    #[test]
    fn level_accessors() {
        let level = level_of(&[1, 2, 3]);
        assert_eq!(level.len(), 3);
        assert!(!level.is_empty());
        assert_eq!(level.values(), &[10, 20, 30]);
        assert_eq!(level.size_bytes(), 3 * 8);
        let (k, v) = level.into_parts();
        assert_eq!(k.len(), 3);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn occupancy_follows_placement() {
        let mut set = LevelSet::new();
        assert_eq!(set.num_occupied(), 0);
        set.place(1, level_of(&[1, 2]));
        set.place(3, level_of(&[3, 4, 5, 6, 7, 8, 9, 10]));
        assert!(set.is_full(1));
        assert!(!set.is_full(0));
        assert!(!set.is_full(2));
        assert!(set.is_full(3));
        assert_eq!(set.num_occupied(), 2);
        assert_eq!(set.total_elements(), 10);
    }

    #[test]
    fn take_empties_a_slot() {
        let mut set = LevelSet::new();
        set.place(0, level_of(&[5]));
        let taken = set.take(0).unwrap();
        assert_eq!(taken.len(), 1);
        assert!(!set.is_full(0));
        assert!(set.take(0).is_none());
        assert!(set.take(99).is_none());
    }

    #[test]
    fn drain_returns_levels_in_index_order() {
        let mut set = LevelSet::new();
        set.place(2, level_of(&[1, 2, 3, 4]));
        set.place(0, level_of(&[9]));
        let drained = set.drain_occupied();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 0);
        assert_eq!(drained[1].0, 2);
        assert_eq!(set.num_occupied(), 0);
    }

    #[test]
    fn iter_occupied_skips_empty_slots() {
        let mut set = LevelSet::new();
        set.place(1, level_of(&[1, 1]));
        let occupied: Vec<usize> = set.iter_occupied().map(|(i, _)| i).collect();
        assert_eq!(occupied, vec![1]);
    }

    #[test]
    fn clear_removes_everything() {
        let mut set = LevelSet::new();
        set.place(0, level_of(&[1]));
        set.clear();
        assert_eq!(set.total_elements(), 0);
        assert_eq!(set.num_slots(), 0);
    }
}
