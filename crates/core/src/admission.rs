//! Pipelined batch admission in front of the sharded service.
//!
//! [`crate::ShardedLsm`] removed the cross-shard serialization of updates,
//! but a writer still blocks for the whole carry chain of every batch it
//! applies.  [`AdmittedLsm`] decouples the two: writers **validate and
//! enqueue** batches (split per shard, bounded queues) and return
//! immediately; a background **applier** drains the queues, **coalesces**
//! adjacent batches headed for the same shard into fewer, fuller batches,
//! and applies them through the service.  A `b`-sized batch split over `k`
//! shards otherwise pads each `b/k`-op sub-batch back to a full `b`
//! elements inside the shard — coalescing recovers exactly that waste under
//! sustained traffic, on top of taking the carry chain off the writers'
//! critical path.
//!
//! ## Ordering and exactness
//!
//! Admission never reorders: sub-batches preserve within-batch op order
//! (the split is stable) and per-shard queues are FIFO, so cross-batch
//! order per key is intact.  Coalescing `w` adjacent batches replaces them
//! with batches that are *visibly equivalent* to applying the `w` batches
//! in sequence: for every key, the **last** batch touching it decides —
//! a batch containing any deletion of the key deletes it (rule 6 exactly:
//! the tombstone shadows same-batch insertions), otherwise the batch's
//! first insertion wins (rule 4 exactly).  Queries therefore return
//! byte-identical answers to the synchronous path; the physical layout may
//! differ (fewer resident batches, fewer stale elements — coalescing is
//! also a micro-cleanup).  With coalescing disabled (`LSM_ADMIT_COALESCE=0`)
//! even the physical per-shard layout is byte-identical to synchronous
//! [`crate::ShardedLsm::update`] calls.
//!
//! ## Visibility
//!
//! The admitted view is eventually consistent: a query may miss batches
//! still in the queues.  [`AdmittedLsm::flush`] is the drain barrier
//! (returns once every previously enqueued batch is applied).  The
//! **read-your-writes** mode makes queued state visible without waiting:
//! point lookups overlay the pending per-shard queues (newest batch wins,
//! exactly the rules above) in front of the applied state, and interval /
//! order queries drain first.
//!
//! ## Rebalancing handoff
//!
//! The service can split and merge shards online (see
//! [`crate::ShardedLsm::split_shard`]); with an admission layer in front,
//! a rebalance must not strand or misroute queued batches.  The layer
//! therefore mirrors the service's routing table (router + per-shard
//! **stable queue ids** + epoch) inside its queue state and executes every
//! rebalance **on the applier thread** as an epoch-based handoff:
//!
//! 1. the affected shards' queues are drained inline (a *targeted* flush
//!    barrier — untouched shards keep queueing and applying),
//! 2. the service performs the structural split/merge (atomic table swap),
//! 3. the queue state is re-laid-out against the new table: surviving
//!    shard ids keep their queues and flush counters, replacement shards
//!    get fresh empty queues, and the mirrored router/epoch advance.
//!
//! Submitters route against the mirrored router under the queue lock, so a
//! batch is always enqueued consistently with one table generation; a
//! submitter sleeping on backpressure re-routes its remaining sub-batches
//! if the epoch moved while it slept.  Rebalances are requested with
//! [`AdmittedLsm::trigger_split`] / [`AdmittedLsm::trigger_merge`] (the
//! calls block until the applier has performed the handoff) or planned
//! automatically from hot-shard detection when the service was built with
//! [`crate::RebalanceConfig::enabled`].
//!
//! [`AdmittedLsm::flush`] stays correct across handoffs because barriers
//! wait on (queue id, enqueued count) pairs: a queue id that disappeared
//! was drained before removal, so its target is vacuously satisfied.
//!
//! ## Panic safety
//!
//! The applier runs arbitrary merge code; if it panics, the shared mutexes
//! it held are poisoned and the thread is gone.  Every lock acquisition in
//! this module recovers from poisoning (the queue state is a set of plain
//! counters and `VecDeque`s — there is no partially-applied invariant to
//! protect), the panic payload is captured, and every sleeping submitter /
//! flusher / rebalance requester is woken to observe the death.  From then
//! on [`AdmittedLsm::submit`] and [`AdmittedLsm::flush`] return
//! [`LsmError::ApplierPanicked`] instead of hanging or cascading the
//! panic, and dropping the last handle never double-panics (the join is
//! skipped while unwinding and its result is checked, not unwrapped).
//!
//! ## Durability
//!
//! Built through [`AdmittedLsm::open_durable`], the layer logs every
//! submitted batch to a write-ahead log *before* enqueueing it (same lock,
//! so log order equals admission order), writes crash-consistent snapshots
//! (manifest + immutable run files, see [`crate::wal`]) at quiescent flush
//! barriers and after rebalance epoch bumps, and on open replays the WAL
//! tail through this very admission path.  The default (no durability)
//! leaves the write path byte-identical to the in-memory layer.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::batch::{Op, UpdateBatch};
use crate::cleanup::CleanupReport;
use crate::config::LsmConfig;
use crate::error::{LsmError, Result};
use crate::key::{Key, Value, MAX_KEY};
use crate::latency::{LatencyHistogram, LatencySnapshot};
use crate::lsm::GpuLsm;
use crate::range::RangeResult;
use crate::router::ShardRouter;
use crate::shard::{RebalanceAction, ShardedLsm, ShardedStats};
use crate::validate::InvariantViolation;
use crate::vfs::Vfs;
use crate::wal::{
    self, DegradeMode, DurabilityStats, RecoveryReport, RunMap, SnapshotMeta, SnapshotShard, Wal,
};

/// Lock, recovering from poisoning: an applier panic must not turn every
/// later `submit`/`flush`/`drop` into a cascading panic.  The guarded
/// state stays structurally valid across an unwind (plain queues and
/// counters), and the applier's death itself is surfaced as a typed error
/// by the callers' liveness checks.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait with the same poison recovery as [`lock_ignore_poison`].
fn wait_ignore_poison<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Bounded condvar wait with the same poison recovery; the caller rechecks
/// both its predicate and its own deadline after every wake, so the
/// timeout flag itself is not needed.
fn wait_timeout_ignore_poison<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
        .0
}

/// Default bound of each shard's admission queue, in batches.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Most batches the applier pulls from one shard's queue per drain step —
/// the coalescing window.
pub const COALESCE_WINDOW: usize = 16;

/// The `LSM_ADMIT_QUEUE` environment knob: per-shard queue capacity in
/// batches (minimum 1, default [`DEFAULT_QUEUE_CAPACITY`]).
fn env_queue_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("LSM_ADMIT_QUEUE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(DEFAULT_QUEUE_CAPACITY, |c| c.max(1))
    })
}

/// The `LSM_ADMIT_COALESCE` environment knob: `0` disables coalescing (the
/// applier replays batches exactly as submitted), anything else (default)
/// enables it.
fn env_coalesce() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("LSM_ADMIT_COALESCE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .is_none_or(|v| v != 0)
    })
}

/// The `LSM_SUBMIT_TIMEOUT_MS` environment knob: how long `submit` may
/// block on backpressure before returning [`LsmError::SubmitTimedOut`]
/// (unset or 0 = wait forever, today's behavior).
fn env_submit_timeout() -> Option<Duration> {
    static T: OnceLock<Option<Duration>> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("LSM_SUBMIT_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

/// The `LSM_FLUSH_TIMEOUT_MS` environment knob: how long `flush` may wait
/// for the drain barrier before returning [`LsmError::FlushTimedOut`]
/// (unset or 0 = wait forever).
fn env_flush_timeout() -> Option<Duration> {
    static T: OnceLock<Option<Duration>> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("LSM_FLUSH_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    })
}

/// Tuning of one admission layer (see the `LSM_ADMIT_*` environment knobs
/// for the process-wide defaults, and [`crate::LsmConfig`] for the
/// explicit per-instance route).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Bound of each shard's queue, in batches; submitters block when the
    /// target shard's queue is full (backpressure).
    pub queue_capacity: usize,
    /// Whether the applier coalesces adjacent same-shard batches.
    pub coalesce: bool,
    /// Whether queries observe queued (not yet applied) state: lookups
    /// overlay the queues, interval/order queries drain first.
    pub read_your_writes: bool,
    /// Upper bound on a `submit`'s backpressure wait; past it the call
    /// returns [`LsmError::SubmitTimedOut`] with nothing admitted or
    /// logged, so an overloaded service sheds load instead of wedging its
    /// writers.  `None` (default) waits forever.
    pub submit_deadline: Option<Duration>,
    /// Upper bound on a `flush` drain-barrier wait; past it the call
    /// returns [`LsmError::FlushTimedOut`] (already-admitted batches still
    /// apply eventually).  `None` (default) waits forever.
    pub flush_deadline: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: env_queue_capacity(),
            coalesce: env_coalesce(),
            read_your_writes: false,
            submit_deadline: env_submit_timeout(),
            flush_deadline: env_flush_timeout(),
        }
    }
}

/// Lifetime admission counters (monotonic except the two depth gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Batches currently sitting in the per-shard queues.
    pub queued_batches: usize,
    /// Batches popped by the applier but not yet applied.
    pub in_flight_batches: usize,
    /// Whole batches accepted by [`AdmittedLsm::submit`].
    pub submitted_batches: u64,
    /// Operations across all submitted batches.
    pub submitted_ops: u64,
    /// Per-shard sub-batches enqueued (a batch spanning `k` shards counts
    /// `k` times).
    pub enqueued_sub_batches: u64,
    /// Batches the applier actually pushed into the shards.
    pub applied_batches: u64,
    /// Operations across all applied batches (after coalescing dropped
    /// superseded ops).
    pub applied_ops: u64,
    /// Sub-batches absorbed by coalescing (enqueued minus applied, counted
    /// as they happen).
    pub coalesced_batches: u64,
    /// Completed [`AdmittedLsm::flush`] barriers.
    pub flushes: u64,
    /// Rebalance handoffs (splits + merges) executed by the applier.
    pub rebalances: u64,
}

/// Per-operation latency attribution of the admission pipeline, split the
/// way a service needs it for SLO accounting: time a sub-batch spent
/// **waiting in its shard queue** (admission to applier pop — grows with
/// queue depth, the backpressure signal) versus time the applier spent
/// **applying** batches to the shards (the carry-chain cost itself).  Both
/// histograms record nanoseconds.
#[derive(Debug, Default)]
struct AdmissionLatency {
    queue_wait: LatencyHistogram,
    apply: LatencyHistogram,
}

/// Microsecond percentile summaries of the admission pipeline's two
/// latency components (see [`AdmittedLsm::latency_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionLatencyStats {
    /// Admission-to-pop wait per enqueued sub-batch.
    pub queue_wait: LatencySnapshot,
    /// Shard-apply time per batch the applier pushed (after coalescing).
    pub apply: LatencySnapshot,
}

/// A validated, shard-routed sub-batch plus the instant it was admitted —
/// the timestamp the applier turns into the queue-wait histogram.
#[derive(Debug)]
struct QueuedBatch {
    batch: UpdateBatch,
    admitted_at: Instant,
}

/// One shard's admission queue, identified by the shard's **stable id** so
/// a rebalance can re-layout the queue vector without losing queued work or
/// flush accounting for the shards it did not touch.
#[derive(Debug)]
struct ShardQueue {
    /// The service-assigned shard id this queue feeds (stable across
    /// rebalances that do not rebuild the shard).
    id: u64,
    /// FIFO of validated, shard-routed sub-batches.
    queue: VecDeque<QueuedBatch>,
    /// Batches the applier has popped but not yet applied — still pending,
    /// so the read-your-writes overlay must see them.  Populated only when
    /// read-your-writes is on (nothing else reads it).
    applying: Vec<UpdateBatch>,
    /// Lifetime batches enqueued (`submit` side of the flush barrier).
    enqueued_seq: u64,
    /// Lifetime batches fully applied.  The queue is FIFO, so
    /// `applied_seq >= e` proves the first `e` batches enqueued here are
    /// durable — what `flush` actually waits for.
    applied_seq: u64,
}

impl ShardQueue {
    fn new(id: u64) -> Self {
        ShardQueue {
            id,
            queue: VecDeque::new(),
            applying: Vec::new(),
            enqueued_seq: 0,
            applied_seq: 0,
        }
    }
}

/// A rebalance request for the applier to execute between drain windows.
#[derive(Debug, Clone, Copy)]
enum RebalanceCmd {
    /// Split shard `s` at a service-fitted key.
    Split(usize),
    /// Split shard `s` at an explicit key.
    SplitAt(usize, Key),
    /// Merge shards `s` and `s + 1`.
    Merge(usize),
    /// Run hot/cold-shard detection and execute its decision, if any.
    Plan,
}

/// Durability plumbing of one admitted service (present only when built
/// through [`AdmittedLsm::open_durable`]).
#[derive(Debug)]
struct DurabilityState {
    config: wal::DurabilityConfig,
    /// The effective filesystem (the [`crate::vfs::Vfs`] seam).
    vfs: Arc<dyn Vfs>,
    /// The active WAL segment.  Locked after `state` (append happens under
    /// the state lock so log order equals admission order), never before.
    wal: Mutex<Wal>,
    /// Records appended to the active segment since the last snapshot —
    /// the "anything to persist?" signal for flush barriers.
    records_since_snapshot: AtomicU64,
    /// Routing epoch captured by the last snapshot; a mismatch forces a
    /// snapshot even without new records (a split/merge changed the
    /// persistent layout).
    snapshot_epoch: AtomicU64,
    /// Sequence number of the newest durable manifest (0 = none yet).
    manifest_seq: AtomicU64,
    /// Snapshots written by this process.
    snapshots: AtomicU64,
    /// Lifetime record / fsync / retry counters of retired (rotated-away)
    /// segments.
    retired_records: AtomicU64,
    retired_syncs: AtomicU64,
    retired_retries: AtomicU64,
    /// Run files referenced by the newest manifest — the next snapshot's
    /// digest-reuse baseline.  Locked after `state`, like `wal`.
    prev_runs: Mutex<RunMap>,
    /// Runs carried over unchanged instead of rewritten.
    runs_reused: AtomicU64,
    /// Garbage-collection removals that failed (surfaced, not swallowed).
    gc_failures: AtomicU64,
    /// Sticky health flag ([`DegradeMode::DegradeToVolatile`]): a
    /// persistent IO failure sealed the WAL; the pipeline keeps admitting
    /// in-memory and skips all further logging and snapshots.
    degraded: AtomicBool,
    /// Off while recovery replays the log through `submit` (the replayed
    /// records are already durable; re-logging would duplicate them) —
    /// also gates snapshots, so a mid-replay flush cannot rotate away
    /// records that are still being replayed.
    logging: AtomicBool,
}

/// Everything the submitters, the applier and the queries share.
#[derive(Debug)]
struct Shared {
    service: ShardedLsm,
    config: AdmissionConfig,
    state: Mutex<QueueState>,
    /// Queue-wait and apply-time histograms (applier-written, low rate:
    /// one short lock per drained window).
    latency: Mutex<AdmissionLatency>,
    /// Applier waits here for queued work or rebalance requests.
    work: Condvar,
    /// Submitters wait here for queue space.
    space: Condvar,
    /// Flush barriers wait here for full drain.
    drained: Condvar,
    /// Rebalance requesters wait here for their request's result.
    rebalanced: Condvar,
    /// The applier's panic payload, set exactly once when it dies.
    applier_panic: Mutex<Option<String>>,
    /// Test hook: the applier panics at its next scheduling point.
    panic_injected: AtomicBool,
    /// Test hook: the applier sleeps this many milliseconds (lock
    /// released) at its next scheduling point, consuming the value —
    /// deterministic backpressure for the deadline tests.
    stall_injected: AtomicU64,
    /// WAL + snapshot machinery; `None` for in-memory layers.
    durability: Option<DurabilityState>,
    submitted_batches: AtomicU64,
    submitted_ops: AtomicU64,
    enqueued_sub_batches: AtomicU64,
    applied_batches: AtomicU64,
    applied_ops: AtomicU64,
    coalesced_batches: AtomicU64,
    flushes: AtomicU64,
    rebalances: AtomicU64,
}

impl Shared {
    /// The typed error to report if the applier thread has died.
    fn applier_failure(&self) -> Option<LsmError> {
        lock_ignore_poison(&self.applier_panic)
            .as_ref()
            .map(|payload| LsmError::ApplierPanicked {
                payload: payload.clone(),
            })
    }
}

/// Record the applier's panic payload and wake **every** waiter class:
/// blocked submitters, flush barriers and rebalance requesters must
/// observe the death instead of sleeping forever on a condvar nobody will
/// signal again.
fn record_applier_panic(shared: &Shared, payload: &(dyn std::any::Any + Send)) {
    let message = payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    *lock_ignore_poison(&shared.applier_panic) = Some(message);
    shared.work.notify_all();
    shared.space.notify_all();
    shared.drained.notify_all();
    shared.rebalanced.notify_all();
}

#[derive(Debug)]
struct QueueState {
    /// One queue per shard, in shard order — the layout always mirrors
    /// `router` (and thereby the service's current routing table).
    queues: Vec<ShardQueue>,
    /// Mirror of the service's router: submitters route against this under
    /// the state lock so every enqueue is consistent with one table
    /// generation.
    router: ShardRouter,
    /// Mirror of the service's routing epoch; bumped by every handoff.
    /// Sleeping submitters use it to detect that their routing went stale.
    epoch: u64,
    /// Total batches across the queues.
    queued: usize,
    /// Total batches popped but not yet applied.
    in_flight: usize,
    /// Round-robin cursor so no shard's queue starves.
    next_shard: usize,
    /// Rebalance requests awaiting the applier.  `None` sequence numbers
    /// are fire-and-forget (auto-planned); `Some(seq)` has a caller
    /// blocked in [`AdmittedLsm`] waiting for `rebalance_results[seq]`.
    pending_rebalances: VecDeque<(Option<u64>, RebalanceCmd)>,
    /// Completed request results, keyed by sequence number, removed by the
    /// waiting caller.
    rebalance_results: HashMap<u64, Result<Option<RebalanceAction>>>,
    /// Next rebalance request sequence number.
    next_rebalance_seq: u64,
    /// Applied windows since the last automatic detection check.
    windows_since_check: u64,
    /// Set once, by the last handle's drop; the applier drains and exits.
    shutdown: bool,
}

/// Joins the applier thread when the last user handle drops (the applier
/// drains all queued work first, so dropping implies a final flush).
#[derive(Debug)]
struct Lifecycle {
    shared: Arc<Shared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for Lifecycle {
    fn drop(&mut self) {
        lock_ignore_poison(&self.shared.state).shutdown = true;
        self.shared.work.notify_all();
        // Never join while this thread is itself unwinding: any panic out
        // of a `Drop` during unwind aborts the process, and the join adds
        // nothing — the applier sees `shutdown`, drains and exits on its
        // own.
        if std::thread::panicking() {
            return;
        }
        if let Some(handle) = lock_ignore_poison(&self.handle).take() {
            if let Err(payload) = handle.join() {
                // The applier's catch-unwind wrapper normally records the
                // payload before the thread exits; this is the backstop
                // for panics outside it.  Check the result instead of
                // unwrapping — propagate the payload to any caller still
                // holding the service, never re-panic in teardown.
                record_applier_panic(&self.shared, payload.as_ref());
            }
        }
    }
}

/// A pipelined-admission handle over a [`ShardedLsm`].
///
/// Cloning is cheap; all clones share the queues, the applier and the
/// underlying service.  The applier thread shuts down (after draining)
/// when the last handle is dropped.
///
/// While an admission layer is attached, rebalance the service through
/// [`AdmittedLsm::trigger_split`] / [`AdmittedLsm::trigger_merge`] (or the
/// automatic planner), **not** by calling [`ShardedLsm::split_shard`]
/// directly on the wrapped service — the layer must drain the affected
/// queues first.
#[derive(Debug, Clone)]
pub struct AdmittedLsm {
    shared: Arc<Shared>,
    _lifecycle: Arc<Lifecycle>,
}

impl AdmittedLsm {
    /// Wrap `service` with the admission configuration derived from the
    /// service's [`crate::LsmConfig`] (explicit knobs first, `LSM_ADMIT_*`
    /// environment fallback for the rest).
    pub fn new(service: ShardedLsm) -> Self {
        let config = service.config().admission();
        Self::with_config(service, config)
    }

    /// Wrap `service` with an explicit admission configuration.
    pub fn with_config(service: ShardedLsm, config: AdmissionConfig) -> Self {
        Self::build(service, config, None)
    }

    /// Shared constructor body: wire up the queue state and spawn the
    /// applier behind a panic-capturing wrapper.
    fn build(
        service: ShardedLsm,
        config: AdmissionConfig,
        durability: Option<DurabilityState>,
    ) -> Self {
        let table = service.table_snapshot();
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState {
                queues: table.ids.iter().map(|&id| ShardQueue::new(id)).collect(),
                router: table.router.clone(),
                epoch: table.epoch,
                queued: 0,
                in_flight: 0,
                next_shard: 0,
                pending_rebalances: VecDeque::new(),
                rebalance_results: HashMap::new(),
                next_rebalance_seq: 0,
                windows_since_check: 0,
                shutdown: false,
            }),
            service,
            latency: Mutex::new(AdmissionLatency::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            rebalanced: Condvar::new(),
            applier_panic: Mutex::new(None),
            panic_injected: AtomicBool::new(false),
            stall_injected: AtomicU64::new(0),
            durability,
            submitted_batches: AtomicU64::new(0),
            submitted_ops: AtomicU64::new(0),
            enqueued_sub_batches: AtomicU64::new(0),
            applied_batches: AtomicU64::new(0),
            applied_ops: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
        });
        let applier_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("lsm-admission".into())
            .spawn(move || {
                // Contain any applier panic: capture the payload, wake
                // every waiter, and let the thread exit cleanly so the
                // joining `Drop` can never double-panic.  The queue state
                // is poison-tolerant (see `lock_ignore_poison`).
                let run = std::panic::AssertUnwindSafe(|| applier_loop(&applier_shared));
                if let Err(payload) = std::panic::catch_unwind(run) {
                    record_applier_panic(&applier_shared, payload.as_ref());
                }
            })
            .expect("spawn admission applier");
        AdmittedLsm {
            _lifecycle: Arc::new(Lifecycle {
                shared: Arc::clone(&shared),
                handle: Mutex::new(Some(handle)),
            }),
            shared,
        }
    }

    /// Open — or crash-recover — a **durable** admitted service.
    ///
    /// `config.durability` must be set; its directory is created if
    /// missing.  An empty directory starts an empty service with
    /// `num_shards` uniform shards.  Otherwise the newest manifest that
    /// fully validates is loaded (corrupt newer ones are skipped and
    /// counted), the shards are rebuilt element-identical from its run
    /// files, and every WAL record of that generation and later is
    /// replayed **through the normal admission path** in log order — a
    /// torn or corrupt tail ends the replay and is physically truncated,
    /// never applied.  `num_shards` only applies to a fresh directory; a
    /// recovered service keeps the sharding (and routing epoch) of its
    /// manifest.
    ///
    /// Returns the recovered handle plus a [`RecoveryReport`] describing
    /// what was found.  On return the service is fully caught up (the
    /// replay has been flushed) and logging is live.
    pub fn open_durable(
        device: Arc<gpu_sim::Device>,
        batch_size: usize,
        num_shards: usize,
        config: LsmConfig,
    ) -> Result<(AdmittedLsm, RecoveryReport)> {
        let Some(dcfg) = config.durability.clone() else {
            return Err(LsmError::Durability {
                context: "open_durable requires LsmConfig::durability to be set".to_string(),
            });
        };
        let vfs = dcfg.vfs_impl();
        vfs.create_dir_all(&dcfg.dir)
            .map_err(|e| LsmError::Durability {
                context: format!("create durability dir {}: {e}", dcfg.dir.display()),
            })?;

        // A previous incarnation that degraded to volatile left a sticky
        // marker: report it, then clear it once this recovery succeeds.
        let prior_degraded = vfs
            .read_dir_names(&dcfg.dir)
            .map_err(|e| LsmError::Durability {
                context: format!("list durability dir {}: {e}", dcfg.dir.display()),
            })?
            .iter()
            .any(|name| name == wal::DEGRADED_MARKER);
        let mut report = RecoveryReport {
            prior_degraded,
            ..RecoveryReport::default()
        };
        let (service, base_seq, base_epoch, base_runs) =
            match wal::load_newest_snapshot(&vfs, &dcfg.dir)? {
                Some(snapshot) => {
                    if snapshot.batch_size != batch_size {
                        return Err(LsmError::Durability {
                            context: format!(
                                "manifest {} was written with batch size {}, not {batch_size}",
                                snapshot.seq, snapshot.batch_size
                            ),
                        });
                    }
                    report.manifest_seq = Some(snapshot.seq);
                    report.corrupt_manifests_skipped = snapshot.corrupt_skipped;
                    let router = ShardRouter::learned(snapshot.split_points.clone())?;
                    let run_refs = snapshot.run_refs;
                    let shards = snapshot
                        .shards
                        .into_iter()
                        .map(|shard| GpuLsm::from_levels(device.clone(), batch_size, shard.levels))
                        .collect::<Result<Vec<_>>>()?;
                    let epoch = snapshot.epoch;
                    let service = ShardedLsm::from_parts(
                        device,
                        batch_size,
                        router,
                        config.clone(),
                        shards,
                        epoch,
                    )?;
                    (service, snapshot.seq, epoch, run_refs)
                }
                None => {
                    let service = ShardedLsm::with_config(device, batch_size, num_shards, config)?;
                    let epoch = service.epoch();
                    (service, 0, epoch, RunMap::new())
                }
            };

        // Gather the WAL tail: every segment of the restored generation
        // and later, ascending.  (Generations older than the manifest
        // linger only when a crash interrupted garbage collection —
        // replaying them over the snapshot is idempotent, because per key
        // the last record wins and the snapshot already agrees with it.)
        let mut replay: Vec<UpdateBatch> = Vec::new();
        let mut active: Option<(u64, u64)> = None;
        for (seq, path) in wal::list_segments(&vfs, &dcfg.dir, base_seq)? {
            let scan = wal::scan_segment(&vfs, &path)?;
            report.torn_bytes += scan.torn_bytes;
            replay.extend(scan.records);
            active = Some((seq, scan.valid_len));
        }
        // Resume appending to the newest segment (discarding its torn tail
        // for good), or start this generation's first segment.
        let (wal_writer, active_seq) = match active {
            Some((seq, valid_len)) => (
                Wal::open_append(
                    &vfs,
                    wal::segment_path(&dcfg.dir, seq),
                    dcfg.fsync_interval,
                    valid_len,
                    dcfg.retry,
                )?,
                seq,
            ),
            None => (
                Wal::create(
                    &vfs,
                    wal::segment_path(&dcfg.dir, base_seq),
                    dcfg.fsync_interval,
                    dcfg.retry,
                )?,
                base_seq,
            ),
        };

        let admission = service.config().admission();
        let durability = DurabilityState {
            vfs: Arc::clone(&vfs),
            config: dcfg,
            wal: Mutex::new(wal_writer),
            records_since_snapshot: AtomicU64::new(0),
            snapshot_epoch: AtomicU64::new(base_epoch),
            // The next snapshot must outnumber every existing segment, not
            // just the restored manifest (a corrupt newer manifest leaves
            // its segment behind).
            manifest_seq: AtomicU64::new(base_seq.max(active_seq)),
            snapshots: AtomicU64::new(0),
            retired_records: AtomicU64::new(0),
            retired_syncs: AtomicU64::new(0),
            retired_retries: AtomicU64::new(0),
            prev_runs: Mutex::new(base_runs),
            runs_reused: AtomicU64::new(0),
            gc_failures: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            logging: AtomicBool::new(false),
        };
        let lsm = Self::build(service, admission, Some(durability));
        for batch in &replay {
            // Replay ignores the configured deadlines: recovery must not
            // shed its own log.
            lsm.submit_with_deadline(batch, None)?;
            report.replayed_batches += 1;
        }
        // Drain the replay before acknowledging recovery.  No snapshot
        // happens here (logging is still off), so the WAL keeps covering
        // the replayed records until the first post-recovery barrier.
        lsm.flush_with_deadline(None)?;
        let durability = lsm.shared.durability.as_ref().expect("durable build");
        if report.prior_degraded {
            // Recovery succeeded from the degraded generation's durable
            // prefix: this incarnation is healthy again.  A failed removal
            // keeps the marker (and the report flag) sticky.
            if durability
                .vfs
                .remove_file(&wal::degraded_marker_path(&durability.config.dir))
                .is_err()
            {
                durability.gc_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        durability.logging.store(true, Ordering::Relaxed);
        Ok((lsm, report))
    }

    /// The wrapped sharded service (answers reflect only *applied* state).
    pub fn service(&self) -> &ShardedLsm {
        &self.shared.service
    }

    /// The admission configuration in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.shared.config
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Validate a mixed update batch and enqueue it, blocking while any
    /// target shard's queue is at capacity.  An invalid batch is rejected
    /// in full before anything is enqueued, exactly like the synchronous
    /// path.  Admission is all-or-nothing: the batch's sub-batches land in
    /// their queues in one critical section, so the WAL record written
    /// just before (when durability is on) has exactly the admission order
    /// of the whole batch.  Routing happens against the mirrored table
    /// under the queue lock and is recomputed after every backpressure
    /// wake, so a rebalance landing while the submitter sleeps re-routes
    /// the batch against the new table (per-key op order is unaffected:
    /// all ops on one key travel in one sub-batch).
    ///
    /// # Errors
    ///
    /// Besides batch validation, fails with
    /// [`LsmError::ApplierPanicked`] once the background applier has died
    /// (nothing is enqueued or logged in that case), with
    /// [`LsmError::SubmitTimedOut`] when a configured
    /// [`AdmissionConfig::submit_deadline`] expires on backpressure
    /// (nothing admitted or logged — a load-shedding caller can drop or
    /// retry), and with [`LsmError::Durability`] when the write-ahead log
    /// cannot be appended under [`DegradeMode::FailStop`] (the batch is
    /// then *not* admitted; under
    /// [`DegradeMode::DegradeToVolatile`] the pipeline instead seals the
    /// WAL, raises the sticky `durability_degraded` flag, and admits the
    /// batch in-memory).
    pub fn submit(&self, batch: &UpdateBatch) -> Result<()> {
        self.submit_with_deadline(batch, self.shared.config.submit_deadline)
    }

    /// [`submit`](Self::submit) with an explicit deadline override
    /// (`None` = wait forever; recovery replay uses that).
    fn submit_with_deadline(&self, batch: &UpdateBatch, deadline: Option<Duration>) -> Result<()> {
        if batch.is_empty() {
            return Err(LsmError::EmptyBatch);
        }
        if batch.len() > self.shared.service.batch_size() {
            return Err(LsmError::BatchTooLarge {
                supplied: batch.len(),
                batch_size: self.shared.service.batch_size(),
            });
        }
        if let Some(op) = batch.ops().iter().find(|op| op.key() > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: op.key() });
        }
        let started = Instant::now();
        let enqueued;
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            loop {
                if let Some(err) = self.shared.applier_failure() {
                    return Err(err);
                }
                let parts = route_parts(&state.router, batch);
                let fits = parts
                    .iter()
                    .all(|(s, _)| state.queues[*s].queue.len() < self.shared.config.queue_capacity);
                if !fits {
                    state = match deadline {
                        None => wait_ignore_poison(&self.shared.space, state),
                        Some(limit) => {
                            let waited = started.elapsed();
                            if waited >= limit {
                                return Err(LsmError::SubmitTimedOut {
                                    waited_ms: waited.as_millis() as u64,
                                });
                            }
                            wait_timeout_ignore_poison(&self.shared.space, state, limit - waited)
                        }
                    };
                    continue;
                }
                // Log ahead of enqueue, under the same lock: WAL record
                // order is admission order.  A failed append admits
                // nothing under fail-stop (the writer rolled the file
                // back); under degrade-to-volatile the WAL is sealed at
                // the last durable boundary and admission continues
                // in-memory.
                if let Some(d) = &self.shared.durability {
                    if d.logging.load(Ordering::Relaxed) && !d.degraded.load(Ordering::Relaxed) {
                        // Bind the result so the WAL guard drops before the
                        // degrade path re-locks it.
                        let appended = lock_ignore_poison(&d.wal).append(batch);
                        match appended {
                            Ok(()) => {
                                d.records_since_snapshot.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => match d.config.degrade {
                                DegradeMode::FailStop => return Err(e),
                                DegradeMode::DegradeToVolatile => degrade_to_volatile(d),
                            },
                        }
                    }
                }
                // The admission timestamp is taken *after* any
                // backpressure wait: queue-wait measures time spent in
                // the queue itself, while a blocked submit is visible to
                // the client's own clock.
                let admitted_at = Instant::now();
                enqueued = parts.len() as u64;
                for (s, part) in parts {
                    state.queues[s].queue.push_back(QueuedBatch {
                        batch: part,
                        admitted_at,
                    });
                    state.queued += 1;
                    state.queues[s].enqueued_seq += 1;
                }
                break;
            }
        }
        self.shared
            .submitted_batches
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .submitted_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.shared
            .enqueued_sub_batches
            .fetch_add(enqueued, Ordering::Relaxed);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Enqueue key–value insertions (at most `b`).
    pub fn insert(&self, pairs: &[(Key, Value)]) -> Result<()> {
        self.submit(&UpdateBatch::from_pairs(pairs))
    }

    /// Enqueue deletions (at most `b`).
    pub fn delete(&self, keys: &[Key]) -> Result<()> {
        self.submit(&UpdateBatch::from_deletions(keys))
    }

    /// Drain barrier: returns once every batch enqueued **before the
    /// call** has been applied to the shards.  The wait is against
    /// per-queue (id, enqueued) pairs snapshotted at entry, so concurrent
    /// submitters can keep the queues busy without starving the barrier
    /// (each queue is FIFO, so `applied >= snapshot` proves the snapshot
    /// prefix is durable).  A queue id that disappears was drained by a
    /// rebalance handoff before removal, satisfying its target.
    ///
    /// With durability on, a completed barrier over an idle pipeline also
    /// writes a crash-consistent snapshot and rotates the write-ahead log.
    ///
    /// # Errors
    ///
    /// [`LsmError::ApplierPanicked`] once the background applier has died
    /// — even if the snapshotted targets were already met, because the
    /// barrier can no longer promise anything about applied state;
    /// [`LsmError::FlushTimedOut`] when a configured
    /// [`AdmissionConfig::flush_deadline`] expires before the drain
    /// (admitted batches still apply eventually); and
    /// [`LsmError::Durability`] when the snapshot cannot be written under
    /// [`DegradeMode::FailStop`] (the drain itself still happened; the WAL
    /// keeps covering the drained records).
    pub fn flush(&self) -> Result<()> {
        self.flush_with_deadline(self.shared.config.flush_deadline)
    }

    /// [`flush`](Self::flush) with an explicit deadline override
    /// (`None` = wait forever; recovery replay uses that).
    fn flush_with_deadline(&self, deadline: Option<Duration>) -> Result<()> {
        let started = Instant::now();
        let mut state = lock_ignore_poison(&self.shared.state);
        let targets: Vec<(u64, u64)> = state
            .queues
            .iter()
            .map(|q| (q.id, q.enqueued_seq))
            .collect();
        loop {
            if let Some(err) = self.shared.applier_failure() {
                return Err(err);
            }
            let pending = targets.iter().any(|&(id, target)| {
                state
                    .queues
                    .iter()
                    .find(|q| q.id == id)
                    .is_some_and(|q| q.applied_seq < target)
            });
            if !pending {
                break;
            }
            state = match deadline {
                None => wait_ignore_poison(&self.shared.drained, state),
                Some(limit) => {
                    let waited = started.elapsed();
                    if waited >= limit {
                        return Err(LsmError::FlushTimedOut {
                            waited_ms: waited.as_millis() as u64,
                        });
                    }
                    wait_timeout_ignore_poison(&self.shared.drained, state, limit - waited)
                }
            };
        }
        maybe_snapshot(&self.shared, &state)?;
        drop(state);
        self.shared.flushes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush, then run the service's cleanup on every shard.
    ///
    /// # Errors
    ///
    /// Propagates the [`flush`](Self::flush) failure modes; cleanup runs
    /// only after a successful drain.
    pub fn cleanup(&self) -> Result<CleanupReport> {
        self.flush()?;
        Ok(self.shared.service.cleanup())
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    /// Ask the applier to split shard `s` at a service-fitted key (see
    /// [`ShardedLsm::split_shard`]), draining the shard's queue first.
    /// Blocks until the handoff completes; returns the action taken.
    pub fn trigger_split(&self, s: usize) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Split(s))
    }

    /// Ask the applier to split shard `s` at an explicit `key` (see
    /// [`ShardedLsm::split_shard_at`]), draining the shard's queue first.
    pub fn trigger_split_at(&self, s: usize, key: Key) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::SplitAt(s, key))
    }

    /// Ask the applier to merge shards `s` and `s + 1` (see
    /// [`ShardedLsm::merge_shards`]), draining both queues first.
    pub fn trigger_merge(&self, s: usize) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Merge(s))
    }

    /// Ask the applier to run hot/cold-shard detection now and execute its
    /// decision, if any.  Returns the action taken (`Ok(None)` when no
    /// threshold tripped).
    pub fn trigger_rebalance_check(&self) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Plan)
    }

    /// Enqueue a rebalance request and block until the applier executed it.
    fn request_rebalance(&self, cmd: RebalanceCmd) -> Result<Option<RebalanceAction>> {
        let mut state = lock_ignore_poison(&self.shared.state);
        if let Some(err) = self.shared.applier_failure() {
            return Err(err);
        }
        let seq = state.next_rebalance_seq;
        state.next_rebalance_seq += 1;
        state.pending_rebalances.push_back((Some(seq), cmd));
        self.shared.work.notify_all();
        loop {
            if let Some(result) = state.rebalance_results.remove(&seq) {
                return result;
            }
            if let Some(err) = self.shared.applier_failure() {
                return Err(err);
            }
            state = wait_ignore_poison(&self.shared.rebalanced, state);
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Bulk point lookups.  In read-your-writes mode the pending queues are
    /// overlaid in front of the applied state (newest pending batch wins);
    /// otherwise only applied state is visible.
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.lookup_with(queries, ShardedLsm::lookup)
    }

    /// Warp-style bulk lookups — [`ShardedLsm::bulk_get`] behind the same
    /// read-your-writes overlay as [`AdmittedLsm::lookup`]; results are
    /// identical to it.
    pub fn bulk_get(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.lookup_with(queries, ShardedLsm::bulk_get)
    }

    /// Shared read path: overlay the pending queues (in read-your-writes
    /// mode), resolve the fall-through keys against the applied state with
    /// `resolve`.
    fn lookup_with(
        &self,
        queries: &[Key],
        resolve: impl Fn(&ShardedLsm, &[Key]) -> Vec<Option<Value>>,
    ) -> Vec<Option<Value>> {
        if !self.shared.config.read_your_writes {
            return resolve(&self.shared.service, queries);
        }
        // Decide what the pending (queued + in-flight) ops say about each
        // query under one short lock; undecided keys fall through to the
        // applied state.  Each touched shard's pending batches are folded
        // into one key → decision map in a single pass, so the lock is
        // held for O(pending ops + queries), not their product.  Routing
        // uses the mirrored router so the overlay matches the enqueue
        // layout even across rebalances.
        let overlay: Vec<Option<Option<Value>>> = {
            let state = lock_ignore_poison(&self.shared.state);
            let mut maps: Vec<Option<HashMap<Key, Option<Value>>>> = vec![None; state.queues.len()];
            queries
                .iter()
                .map(|&q| {
                    let s = state.router.shard_of(q.min(MAX_KEY));
                    maps[s]
                        .get_or_insert_with(|| pending_decisions(&state, s))
                        .get(&q)
                        .copied()
                })
                .collect()
        };
        let undecided: Vec<Key> = queries
            .iter()
            .zip(&overlay)
            .filter(|(_, o)| o.is_none())
            .map(|(&q, _)| q)
            .collect();
        let applied = resolve(&self.shared.service, &undecided);
        let mut applied_iter = applied.into_iter();
        overlay
            .into_iter()
            .map(|o| match o {
                Some(decided) => decided,
                None => applied_iter.next().expect("one applied answer per miss"),
            })
            .collect()
    }

    /// Bulk count queries (read-your-writes mode drains first).
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        if self.shared.config.read_your_writes {
            // Best-effort drain: with a dead applier the answer honestly
            // reflects applied state only, matching non-RYW mode.
            let _ = self.flush();
        }
        self.shared.service.count(queries)
    }

    /// Bulk range queries (read-your-writes mode drains first).
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        if self.shared.config.read_your_writes {
            // Best-effort drain: with a dead applier the answer honestly
            // reflects applied state only, matching non-RYW mode.
            let _ = self.flush();
        }
        self.shared.service.range(queries)
    }

    /// Bulk successor queries (read-your-writes mode drains first).
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        if self.shared.config.read_your_writes {
            // Best-effort drain: with a dead applier the answer honestly
            // reflects applied state only, matching non-RYW mode.
            let _ = self.flush();
        }
        self.shared.service.successor(queries)
    }

    /// Bulk predecessor queries (read-your-writes mode drains first).
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        if self.shared.config.read_your_writes {
            // Best-effort drain: with a dead applier the answer honestly
            // reflects applied state only, matching non-RYW mode.
            let _ = self.flush();
        }
        self.shared.service.predecessor(queries)
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Admission-layer counters and queue gauges.
    pub fn admission_stats(&self) -> AdmissionStats {
        let (queued, in_flight) = {
            let state = lock_ignore_poison(&self.shared.state);
            (state.queued, state.in_flight)
        };
        AdmissionStats {
            queued_batches: queued,
            in_flight_batches: in_flight,
            submitted_batches: self.shared.submitted_batches.load(Ordering::Relaxed),
            submitted_ops: self.shared.submitted_ops.load(Ordering::Relaxed),
            enqueued_sub_batches: self.shared.enqueued_sub_batches.load(Ordering::Relaxed),
            applied_batches: self.shared.applied_batches.load(Ordering::Relaxed),
            applied_ops: self.shared.applied_ops.load(Ordering::Relaxed),
            coalesced_batches: self.shared.coalesced_batches.load(Ordering::Relaxed),
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            rebalances: self.shared.rebalances.load(Ordering::Relaxed),
        }
    }

    /// Microsecond percentile summaries of the pipeline's queue-wait and
    /// apply-time histograms.
    pub fn latency_stats(&self) -> AdmissionLatencyStats {
        let latency = lock_ignore_poison(&self.shared.latency);
        AdmissionLatencyStats {
            queue_wait: latency.queue_wait.snapshot_us(),
            apply: latency.apply.snapshot_us(),
        }
    }

    /// Clones of the full queue-wait and apply-time histograms (nanosecond
    /// samples), for callers that need quantiles beyond the snapshot.
    pub fn latency_histograms(&self) -> (LatencyHistogram, LatencyHistogram) {
        let latency = lock_ignore_poison(&self.shared.latency);
        (latency.queue_wait.clone(), latency.apply.clone())
    }

    /// Service-wide statistics with the admission gauges folded in.
    pub fn stats(&self) -> ShardedStats {
        let mut stats = self.shared.service.stats();
        let admission = self.admission_stats();
        stats.admission_queued_batches = admission.queued_batches as u64;
        stats.admission_coalesced_batches = admission.coalesced_batches;
        stats.admission_applied_batches = admission.applied_batches;
        let latency = self.latency_stats();
        stats.admission_queue_wait = latency.queue_wait;
        stats.admission_apply = latency.apply;
        if let Some(d) = self.durability_stats() {
            stats.durability_degraded = d.degraded;
            stats.durability_gc_failures = d.gc_failures;
        }
        stats
    }

    /// Flush, then check every shard's invariants.
    pub fn check_invariants(&self) -> std::result::Result<(), InvariantViolation> {
        self.flush()
            .map_err(|e| InvariantViolation(format!("admission flush failed: {e}")))?;
        self.shared.service.check_invariants()
    }

    /// Durability counters, or `None` for an in-memory service.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let d = self.shared.durability.as_ref()?;
        let (records, syncs, retries) = {
            let wal = lock_ignore_poison(&d.wal);
            (wal.records, wal.syncs, wal.retries)
        };
        Some(DurabilityStats {
            wal_records: d.retired_records.load(Ordering::Relaxed) + records,
            wal_syncs: d.retired_syncs.load(Ordering::Relaxed) + syncs,
            wal_retries: d.retired_retries.load(Ordering::Relaxed) + retries,
            snapshots: d.snapshots.load(Ordering::Relaxed),
            runs_reused: d.runs_reused.load(Ordering::Relaxed),
            gc_failures: d.gc_failures.load(Ordering::Relaxed),
            manifest_seq: d.manifest_seq.load(Ordering::Relaxed),
            degraded: d.degraded.load(Ordering::Relaxed),
        })
    }

    /// Test hook: make the applier thread panic at its next wakeup.
    #[doc(hidden)]
    pub fn inject_applier_panic(&self) {
        self.shared.panic_injected.store(true, Ordering::Relaxed);
        self.shared.work.notify_all();
    }

    /// Test hook: make the applier sleep `ms` milliseconds (locks
    /// released) at its next wakeup, before draining anything — a
    /// deterministic backpressure window for the deadline tests.
    #[doc(hidden)]
    pub fn inject_applier_stall(&self, ms: u64) {
        self.shared.stall_injected.store(ms, Ordering::Relaxed);
        self.shared.work.notify_all();
    }
}

/// Seal the WAL at the last durable record boundary, raise the sticky
/// degraded flag, and drop a best-effort on-disk marker for the next
/// recovery to report ([`DegradeMode::DegradeToVolatile`]).  Called with
/// the queue state lock held (the WAL lock nests inside it).
fn degrade_to_volatile(d: &DurabilityState) {
    {
        let mut wal = lock_ignore_poison(&d.wal);
        if !wal.is_sealed() {
            wal.seal();
        }
    }
    if !d.degraded.swap(true, Ordering::Relaxed) {
        let _ = d.vfs.write(
            &wal::degraded_marker_path(&d.config.dir),
            b"durability degraded: WAL sealed at last durable record\n",
        );
    }
}

/// Snapshot-on-barrier: called at the end of a successful flush with the
/// queue lock held.  A snapshot is taken only when logging is live, the
/// pipeline is fully idle (nothing queued, in flight, or awaiting a
/// rebalance), and something actually changed since the last snapshot
/// (records logged, or the routing epoch moved — a split/merge re-lays
/// the shards even without new records).  On success the WAL rotates to a
/// fresh segment keyed to the new manifest and older generations are
/// garbage-collected best-effort.
fn maybe_snapshot(shared: &Shared, state: &QueueState) -> Result<()> {
    let Some(d) = &shared.durability else {
        return Ok(());
    };
    if !d.logging.load(Ordering::Relaxed) {
        // Recovery replay in progress: the WAL on disk is still the only
        // durable copy of the replayed records — don't rotate it away.
        return Ok(());
    }
    let idle = state.queued == 0 && state.in_flight == 0 && state.pending_rebalances.is_empty();
    if !idle {
        return Ok(());
    }
    if d.degraded.load(Ordering::Relaxed) {
        // Degraded mode: the state being snapshotted includes batches that
        // were never logged, so a manifest would falsely claim durability
        // for them.  Keep serving from memory instead.
        return Ok(());
    }
    let dirty = d.records_since_snapshot.load(Ordering::Relaxed) > 0
        || d.snapshot_epoch.load(Ordering::Relaxed) != state.epoch;
    if !dirty {
        return Ok(());
    }
    match snapshot_now(shared, d) {
        Ok(()) => Ok(()),
        Err(e) => match d.config.degrade {
            DegradeMode::FailStop => Err(e),
            DegradeMode::DegradeToVolatile => {
                degrade_to_volatile(d);
                Ok(())
            }
        },
    }
}

/// The snapshot body proper: sync the WAL, write the next manifest
/// generation (reusing unchanged run files), rotate to a fresh segment,
/// and garbage-collect superseded generations.
fn snapshot_now(shared: &Shared, d: &DurabilityState) -> Result<()> {
    // Everything logged so far must be on disk before the manifest can
    // supersede it (the manifest ends the previous generation).
    lock_ignore_poison(&d.wal).sync()?;
    let seq = d.manifest_seq.load(Ordering::Relaxed) + 1;
    let table = shared.service.table_snapshot();
    let shards: Vec<SnapshotShard> = table
        .shards
        .iter()
        .map(|shard| {
            shard.with_read(|lsm| SnapshotShard {
                levels: lsm
                    .levels()
                    .iter_occupied()
                    .map(|(i, level)| (i, level.keys().to_vec(), level.values().to_vec()))
                    .collect(),
            })
        })
        .collect();
    let prev = lock_ignore_poison(&d.prev_runs).clone();
    let (runs, reused) = wal::write_snapshot(
        &d.vfs,
        &d.config.dir,
        SnapshotMeta {
            seq,
            epoch: table.epoch,
            batch_size: shared.service.batch_size(),
        },
        &table.router.split_points(),
        &shards,
        &prev,
    )?;
    let fresh = Wal::create(
        &d.vfs,
        wal::segment_path(&d.config.dir, seq),
        d.config.fsync_interval,
        d.config.retry,
    )?;
    let old = std::mem::replace(&mut *lock_ignore_poison(&d.wal), fresh);
    d.retired_records.fetch_add(old.records, Ordering::Relaxed);
    d.retired_syncs.fetch_add(old.syncs, Ordering::Relaxed);
    d.retired_retries.fetch_add(old.retries, Ordering::Relaxed);
    d.records_since_snapshot.store(0, Ordering::Relaxed);
    d.snapshot_epoch.store(table.epoch, Ordering::Relaxed);
    d.manifest_seq.store(seq, Ordering::Relaxed);
    d.snapshots.fetch_add(1, Ordering::Relaxed);
    d.runs_reused.fetch_add(reused, Ordering::Relaxed);
    let failures = wal::collect_garbage(&d.vfs, &d.config.dir, seq, &runs);
    d.gc_failures.fetch_add(failures, Ordering::Relaxed);
    *lock_ignore_poison(&d.prev_runs) = runs;
    Ok(())
}

/// Split a batch by shard and keep the non-empty parts in shard order.
fn route_parts(router: &ShardRouter, batch: &UpdateBatch) -> VecDeque<(usize, UpdateBatch)> {
    router
        .split_updates(batch)
        .into_iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .collect()
}

/// Fold shard `s`'s pending batches — in-flight first (older), then the
/// queue oldest-to-newest — into one key → visible-outcome map: per batch
/// any deletion of a key shadows its insertions (rule 6) else the first
/// insertion wins (rule 4), and later batches overwrite earlier ones
/// (newest batch decides).
fn pending_decisions(state: &QueueState, s: usize) -> HashMap<Key, Option<Value>> {
    let mut decisions = HashMap::new();
    for batch in state.queues[s]
        .applying
        .iter()
        .chain(state.queues[s].queue.iter().map(|q| &q.batch))
    {
        for op in resolve_batch(batch) {
            let outcome = match op {
                Op::Insert(_, v) => Some(v),
                Op::Delete(_) => None,
            };
            decisions.insert(op.key(), outcome);
        }
    }
    decisions
}

/// The background applier: drain queues round-robin, coalesce, apply;
/// execute rebalance handoffs between windows.
fn applier_loop(shared: &Arc<Shared>) {
    loop {
        // Pop one shard's coalescing window under the lock; rebalance
        // requests take priority and run entirely under the lock (they
        // are a barrier for the affected shards by design).  With
        // read-your-writes on, the popped batches stay visible to the
        // overlay via `applying` until they are applied; otherwise nothing
        // reads `applying` and the clone is skipped.
        let (shard, window) = {
            let mut state = lock_ignore_poison(&shared.state);
            loop {
                if shared.panic_injected.swap(false, Ordering::Relaxed) {
                    panic!("injected applier panic (test hook)");
                }
                let stall = shared.stall_injected.swap(0, Ordering::Relaxed);
                if stall > 0 {
                    // Test hook: sleep with the lock released so submits
                    // can queue up against a provably idle applier.
                    drop(state);
                    std::thread::sleep(Duration::from_millis(stall));
                    state = lock_ignore_poison(&shared.state);
                    continue;
                }
                if let Some((seq, cmd)) = state.pending_rebalances.pop_front() {
                    let result = execute_rebalance(shared, &mut state, cmd);
                    if let Some(seq) = seq {
                        state.rebalance_results.insert(seq, result);
                        shared.rebalanced.notify_all();
                    }
                    continue;
                }
                if state.queued > 0 {
                    break;
                }
                if state.shutdown {
                    return; // queues fully drained: drop implies flush
                }
                state = wait_ignore_poison(&shared.work, state);
            }
            let num_shards = state.queues.len();
            let mut s = state.next_shard % num_shards;
            while state.queues[s].queue.is_empty() {
                s = (s + 1) % num_shards;
            }
            state.next_shard = (s + 1) % num_shards;
            let take = if shared.config.coalesce {
                COALESCE_WINDOW.min(state.queues[s].queue.len())
            } else {
                1
            };
            let window: Vec<QueuedBatch> = state.queues[s].queue.drain(..take).collect();
            state.queued -= take;
            state.in_flight += take;
            if shared.config.read_your_writes {
                state.queues[s].applying = window.iter().map(|q| q.batch.clone()).collect();
            }
            (s, window)
        };
        shared.space.notify_all();

        let taken = apply_window(shared, shard, window);

        let mut state = lock_ignore_poison(&shared.state);
        state.queues[shard].applying.clear();
        state.in_flight -= taken;
        state.queues[shard].applied_seq += taken as u64;
        // Every completed window can release a flush barrier (barriers
        // wait on per-queue epochs, not on full quiescence).
        shared.drained.notify_all();
        // Automatic hot/cold detection: piggybacked on the applier cadence
        // so it needs no extra thread and naturally sees applied traffic.
        let rebalance_cfg = &shared.service.config().rebalance;
        if rebalance_cfg.enabled {
            state.windows_since_check += 1;
            if state.windows_since_check >= rebalance_cfg.check_interval {
                state.windows_since_check = 0;
                // Planning failure (e.g. a lost race) is not fatal: the
                // next window plans again.
                let _ = execute_rebalance(shared, &mut state, RebalanceCmd::Plan);
            }
        }
    }
}

/// Coalesce (per config) and apply one popped window to `shard`, recording
/// the queue-wait and apply-time histograms and the lifetime counters.
/// Returns the number of batches consumed from the queue.
fn apply_window(shared: &Shared, shard: usize, window: Vec<QueuedBatch>) -> usize {
    // Queue-wait ends when the applier takes ownership of the window.
    let popped_at = Instant::now();
    let mut waits_ns: Vec<u64> = Vec::with_capacity(window.len());
    let mut batches: Vec<UpdateBatch> = Vec::with_capacity(window.len());
    for q in window {
        let wait = popped_at.saturating_duration_since(q.admitted_at);
        waits_ns.push(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        batches.push(q.batch);
    }

    let taken = batches.len();
    let to_apply = if shared.config.coalesce {
        coalesce_batches(&batches, shared.service.batch_size())
    } else {
        batches // replay mode applies the popped batch as-is
    };
    shared
        .coalesced_batches
        .fetch_add((taken - to_apply.len()) as u64, Ordering::Relaxed);
    let mut applies_ns: Vec<u64> = Vec::with_capacity(to_apply.len());
    for part in &to_apply {
        // Sub-batches were validated at submit time and coalescing keeps
        // them non-empty and within `b`; the apply holds the service's
        // table read lock so it cannot interleave with a table swap.
        let apply_start = Instant::now();
        shared
            .service
            .apply_routed(shard, part)
            .expect("validated admitted batch cannot be rejected");
        applies_ns.push(u64::try_from(apply_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        shared.applied_batches.fetch_add(1, Ordering::Relaxed);
        shared
            .applied_ops
            .fetch_add(part.len() as u64, Ordering::Relaxed);
    }
    {
        // One short lock per window keeps recording off the hot loop.
        let mut latency = lock_ignore_poison(&shared.latency);
        for ns in waits_ns {
            latency.queue_wait.record(ns);
        }
        for ns in applies_ns {
            latency.apply.record(ns);
        }
    }
    taken
}

/// Execute one rebalance handoff on the applier thread, with the queue
/// state lock held throughout: drain the affected shards' queues (a
/// targeted flush barrier), perform the structural change on the service,
/// then re-layout the queues against the new routing table.
fn execute_rebalance(
    shared: &Shared,
    state: &mut QueueState,
    cmd: RebalanceCmd,
) -> Result<Option<RebalanceAction>> {
    let action = match cmd {
        RebalanceCmd::Plan => match shared.service.plan_rebalance() {
            Some(action) => action,
            None => return Ok(None),
        },
        RebalanceCmd::Split(s) | RebalanceCmd::SplitAt(s, _) => RebalanceAction::Split(s),
        RebalanceCmd::Merge(s) => RebalanceAction::Merge(s),
    };
    let affected: Vec<usize> = match action {
        RebalanceAction::Split(s) => vec![s],
        RebalanceAction::Merge(s) => vec![s, s + 1],
    };
    if let Some(&bad) = affected.iter().find(|&&s| s >= state.queues.len()) {
        return Err(LsmError::InvalidRebalance {
            reason: format!("shard {bad} out of range for {} shards", state.queues.len()),
        });
    }
    // Targeted drain: every batch admitted for the affected shards must be
    // applied before the rebuild snapshots their contents.
    for &s in &affected {
        if state.queues[s].queue.is_empty() {
            continue;
        }
        let drained: Vec<QueuedBatch> = state.queues[s].queue.drain(..).collect();
        state.queued -= drained.len();
        let taken = apply_window(shared, s, drained);
        state.queues[s].applied_seq += taken as u64;
    }
    match cmd {
        RebalanceCmd::SplitAt(s, key) => shared.service.split_shard_at(s, key)?,
        RebalanceCmd::Split(s) => {
            shared.service.split_shard(s)?;
        }
        RebalanceCmd::Merge(s) => shared.service.merge_shards(s)?,
        RebalanceCmd::Plan => shared.service.apply_rebalance(action)?,
    }
    // Re-layout against the new table: surviving ids keep their queues and
    // flush counters, replacement shards start fresh.  The dropped queues
    // were just drained, so no admitted batch is lost.
    let table = shared.service.table_snapshot();
    let mut old: HashMap<u64, ShardQueue> = state.queues.drain(..).map(|q| (q.id, q)).collect();
    state.queues = table
        .ids
        .iter()
        .map(|&id| old.remove(&id).unwrap_or_else(|| ShardQueue::new(id)))
        .collect();
    debug_assert!(old.values().all(|q| q.queue.is_empty()));
    state.router = table.router.clone();
    state.epoch = table.epoch;
    state.queued = state.queues.iter().map(|q| q.queue.len()).sum();
    state.next_shard %= state.queues.len().max(1);
    shared.rebalances.fetch_add(1, Ordering::Relaxed);
    // Wake sleeping submitters (they must re-route) and flush barriers
    // (drained ids satisfy their targets).
    shared.space.notify_all();
    shared.drained.notify_all();
    // The routing epoch moved: persist the new shard layout if the
    // pipeline happens to be idle (otherwise the epoch-dirty check makes
    // the next flush barrier snapshot it).
    maybe_snapshot(shared, state)?;
    Ok(Some(action))
}

/// Replace a run of adjacent batches with visibly equivalent coalesced
/// batches of at most `batch_size` ops each: for every key the **last**
/// batch touching it decides (a deletion anywhere in that batch deletes,
/// otherwise its first insertion wins), and a new output batch starts
/// whenever the accumulated distinct keys would exceed `batch_size` —
/// so each output batch is exactly equivalent to a contiguous sub-run.
fn coalesce_batches(window: &[UpdateBatch], batch_size: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut acc: Vec<Op> = Vec::new();
    let mut index: HashMap<Key, usize> = HashMap::new();
    for batch in window {
        let resolved = resolve_batch(batch);
        let new_keys = resolved
            .iter()
            .filter(|op| !index.contains_key(&op.key()))
            .count();
        if !acc.is_empty() && acc.len() + new_keys > batch_size {
            let mut flushed = UpdateBatch::with_capacity(acc.len());
            for op in acc.drain(..) {
                flushed.push(op);
            }
            index.clear();
            out.push(flushed);
        }
        for op in resolved {
            match index.entry(op.key()) {
                std::collections::hash_map::Entry::Occupied(slot) => acc[*slot.get()] = op,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(acc.len());
                    acc.push(op);
                }
            }
        }
    }
    if !acc.is_empty() {
        let mut flushed = UpdateBatch::with_capacity(acc.len());
        for op in acc {
            flushed.push(op);
        }
        out.push(flushed);
    }
    out
}

/// One batch reduced to a single op per key, per the batch semantics: any
/// deletion of a key shadows the batch's insertions of it (rule 6), among
/// insertions the first wins (rule 4).  Op order follows first appearance,
/// keeping the reduction deterministic.
fn resolve_batch(batch: &UpdateBatch) -> Vec<Op> {
    let mut order: Vec<Key> = Vec::with_capacity(batch.len());
    let mut decision: HashMap<Key, Op> = HashMap::with_capacity(batch.len());
    for op in batch.ops() {
        match decision.entry(op.key()) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                order.push(op.key());
                slot.insert(*op);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if matches!(op, Op::Delete(_)) {
                    slot.insert(Op::Delete(op.key()));
                }
            }
        }
    }
    order.into_iter().map(|k| decision[&k]).collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use super::*;
    use crate::config::{LsmConfig, RebalanceConfig};

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    fn admitted(batch_size: usize, shards: usize, config: AdmissionConfig) -> AdmittedLsm {
        AdmittedLsm::with_config(
            ShardedLsm::new(device(), batch_size, shards).unwrap(),
            config,
        )
    }

    fn config(coalesce: bool, ryw: bool) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 8,
            coalesce,
            read_your_writes: ryw,
            submit_deadline: None,
            flush_deadline: None,
        }
    }

    #[test]
    fn submit_flush_query_round_trip() {
        let lsm = admitted(8, 2, config(true, false));
        lsm.insert(&[(1, 10), (1 << 30, 20)]).unwrap();
        lsm.delete(&[1 << 30]).unwrap();
        lsm.flush().unwrap();
        assert_eq!(lsm.lookup(&[1, 1 << 30]), vec![Some(10), None]);
        let stats = lsm.admission_stats();
        assert_eq!(stats.submitted_batches, 2);
        assert_eq!(stats.queued_batches, 0);
        assert!(stats.applied_batches >= 1);
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn validation_rejects_before_enqueueing() {
        let lsm = admitted(2, 2, config(true, false));
        assert_eq!(
            lsm.submit(&UpdateBatch::new()).unwrap_err(),
            LsmError::EmptyBatch
        );
        assert!(matches!(
            lsm.insert(&[(1, 1), (2, 2), (3, 3)]).unwrap_err(),
            LsmError::BatchTooLarge { .. }
        ));
        let mut batch = UpdateBatch::new();
        batch.insert(MAX_KEY + 1, 0);
        assert_eq!(
            lsm.submit(&batch).unwrap_err(),
            LsmError::KeyOutOfRange { key: MAX_KEY + 1 }
        );
        lsm.flush().unwrap();
        assert_eq!(lsm.admission_stats().submitted_batches, 0);
        assert_eq!(lsm.stats().total_elements, 0);
    }

    #[test]
    fn read_your_writes_sees_queued_state() {
        let lsm = admitted(4, 1, config(true, true));
        // Stall nothing: even before any flush, the overlay answers.
        lsm.insert(&[(5, 50), (6, 60)]).unwrap();
        assert_eq!(lsm.lookup(&[5, 6, 7]), vec![Some(50), Some(60), None]);
        lsm.delete(&[5]).unwrap();
        assert_eq!(lsm.lookup(&[5]), vec![None]);
        lsm.insert(&[(5, 51)]).unwrap();
        assert_eq!(lsm.lookup(&[5]), vec![Some(51)]);
        // Interval queries drain first in this mode.
        assert_eq!(lsm.count(&[(0, 100)]), vec![2]);
        assert_eq!(lsm.admission_stats().queued_batches, 0);
    }

    #[test]
    fn coalescing_preserves_rules_4_and_6() {
        // Same submissions through a coalescing and a replaying layer must
        // give identical answers (insert-after-delete, delete-after-insert,
        // duplicate inserts across and within batches).
        let a = admitted(8, 1, config(true, false));
        let b = admitted(8, 1, config(false, false));
        for lsm in [&a, &b] {
            lsm.insert(&[(1, 1), (2, 1), (3, 1)]).unwrap();
            lsm.delete(&[2]).unwrap();
            lsm.insert(&[(2, 7), (4, 7)]).unwrap();
            let mut mixed = UpdateBatch::new();
            mixed.insert(5, 9).delete(3).insert(5, 8).delete(5);
            lsm.submit(&mixed).unwrap();
            lsm.insert(&[(5, 42)]).unwrap();
            lsm.flush().unwrap();
        }
        let queries: Vec<u32> = (0..8).collect();
        assert_eq!(a.lookup(&queries), b.lookup(&queries));
        assert_eq!(a.count(&[(0, 100)]), b.count(&[(0, 100)]));
        assert_eq!(a.range(&[(0, 100)]), b.range(&[(0, 100)]));
        // The coalescing side actually coalesced something.
        assert!(a.admission_stats().coalesced_batches > 0);
        assert_eq!(b.admission_stats().coalesced_batches, 0);
    }

    #[test]
    fn coalesce_batches_respects_capacity_and_semantics() {
        let mut b1 = UpdateBatch::new();
        b1.insert(1, 10).insert(2, 20).delete(3);
        let mut b2 = UpdateBatch::new();
        b2.insert(3, 30).delete(1).insert(4, 40);
        let out = coalesce_batches(&[b1.clone(), b2.clone()], 8);
        assert_eq!(out.len(), 1);
        let ops = out[0].ops();
        // Last batch wins per key: 1 deleted, 3 re-inserted; 2 and 4 kept.
        assert!(ops.contains(&Op::Delete(1)));
        assert!(ops.contains(&Op::Insert(2, 20)));
        assert!(ops.contains(&Op::Insert(3, 30)));
        assert!(ops.contains(&Op::Insert(4, 40)));
        assert_eq!(ops.len(), 4);
        // A tight capacity splits instead of overflowing.
        let out = coalesce_batches(&[b1, b2], 3);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|b| b.len() <= 3));
    }

    #[test]
    fn resolve_batch_applies_rule_6() {
        let mut batch = UpdateBatch::new();
        batch
            .insert(7, 1)
            .insert(7, 2)
            .delete(8)
            .insert(8, 3)
            .delete(7);
        let resolved = resolve_batch(&batch);
        assert_eq!(resolved, vec![Op::Delete(7), Op::Delete(8)]);
    }

    #[test]
    fn backpressure_blocks_then_drains() {
        let lsm = admitted(
            4,
            1,
            AdmissionConfig {
                queue_capacity: 2,
                coalesce: true,
                read_your_writes: false,
                submit_deadline: None,
                flush_deadline: None,
            },
        );
        // Many more batches than the queue holds: submitters must block on
        // backpressure and still drain to a consistent end state.
        for i in 0..64u32 {
            lsm.insert(&[(i % 16, i)]).unwrap();
        }
        lsm.flush().unwrap();
        let got = lsm.lookup(&(0..16u32).collect::<Vec<_>>());
        for (k, v) in got.into_iter().enumerate() {
            // Key k was last written by batch 48 + k.
            assert_eq!(v, Some(48 + k as u32), "key {k}");
        }
    }

    #[test]
    fn submit_and_flush_deadlines_time_out_then_recover() {
        let lsm = admitted(
            4,
            1,
            AdmissionConfig {
                queue_capacity: 1,
                coalesce: true,
                read_your_writes: false,
                submit_deadline: Some(Duration::from_millis(40)),
                flush_deadline: Some(Duration::from_millis(40)),
            },
        );
        // Park the applier (lock released) so the queue provably backs up.
        lsm.inject_applier_stall(500);
        std::thread::sleep(Duration::from_millis(30));
        lsm.insert(&[(1, 1)]).unwrap(); // fills the capacity-1 queue
        assert!(matches!(
            lsm.insert(&[(2, 2)]).unwrap_err(),
            LsmError::SubmitTimedOut { .. }
        ));
        assert!(matches!(
            lsm.flush().unwrap_err(),
            LsmError::FlushTimedOut { .. }
        ));
        // Once the stall expires the admitted batch still applies; the
        // timed-out one was never admitted.
        std::thread::sleep(Duration::from_millis(550));
        lsm.flush().unwrap();
        assert_eq!(lsm.lookup(&[1, 2]), vec![Some(1), None]);
    }

    #[test]
    fn drop_drains_pending_work() {
        let service = ShardedLsm::new(device(), 4, 2).unwrap();
        {
            let lsm = AdmittedLsm::with_config(service.clone(), config(true, false));
            for i in 0..20u32 {
                lsm.insert(&[(i, i), ((1 << 30) + i, i)]).unwrap();
            }
            // No flush: dropping the last handle must drain the queues.
        }
        assert_eq!(
            service.lookup(&[19, (1 << 30) + 19]),
            vec![Some(19), Some(19)]
        );
    }

    #[test]
    fn clones_share_queues_and_counters() {
        let lsm = admitted(4, 1, config(true, false));
        let clone = lsm.clone();
        lsm.insert(&[(1, 1)]).unwrap();
        clone.flush().unwrap();
        assert_eq!(clone.lookup(&[1]), vec![Some(1)]);
        assert_eq!(clone.admission_stats().submitted_batches, 1);
    }

    #[test]
    fn triggered_split_and_merge_preserve_admitted_state() {
        let lsm = admitted(8, 1, config(true, false));
        for i in 0..8u32 {
            lsm.insert(&[(i * 100, i), (i * 100 + 1, i)]).unwrap();
        }
        // Split mid-stream, without flushing first: the handoff drains the
        // affected queue itself.
        let action = lsm.trigger_split_at(0, 350).unwrap();
        assert_eq!(action, Some(RebalanceAction::Split(0)));
        assert_eq!(lsm.service().num_shards(), 2);
        assert_eq!(lsm.admission_stats().rebalances, 1);
        // Traffic keeps flowing on both sides of the new boundary.
        lsm.insert(&[(349, 99), (351, 99)]).unwrap();
        lsm.flush().unwrap();
        let keys: Vec<u32> = (0..8).map(|i| i * 100).collect();
        assert_eq!(
            lsm.lookup(&keys),
            (0..8).map(Some).collect::<Vec<Option<u32>>>()
        );
        assert_eq!(lsm.lookup(&[349, 351]), vec![Some(99), Some(99)]);
        lsm.check_invariants().unwrap();
        // Merge back; answers unchanged.
        let action = lsm.trigger_merge(0).unwrap();
        assert_eq!(action, Some(RebalanceAction::Merge(0)));
        assert_eq!(lsm.service().num_shards(), 1);
        lsm.flush().unwrap();
        assert_eq!(
            lsm.lookup(&keys),
            (0..8).map(Some).collect::<Vec<Option<u32>>>()
        );
        // Invalid requests surface the service's error to the caller.
        assert!(lsm.trigger_merge(5).is_err());
        assert!(lsm.trigger_split_at(0, 0).is_err());
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn auto_rebalance_splits_hot_shard_behind_admission() {
        let lsm_config = LsmConfig::default().rebalance(RebalanceConfig {
            enabled: true,
            min_ops: 32,
            hot_fraction: 0.5,
            cold_fraction: 0.0,
            max_shards: 4,
            min_shards: 1,
            check_interval: 1,
        });
        let service = ShardedLsm::with_config(device(), 16, 1, lsm_config).unwrap();
        let lsm = AdmittedLsm::with_config(service, config(true, false));
        for round in 0..16u32 {
            let pairs: Vec<(u32, u32)> = (0..16u32).map(|i| (round * 16 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        lsm.flush().unwrap();
        assert!(
            lsm.service().num_shards() > 1,
            "hot shard should have been split behind admission, still at {}",
            lsm.service().num_shards()
        );
        assert!(lsm.stats().rebalance_splits >= 1);
        lsm.check_invariants().unwrap();
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![256]);
    }
}
