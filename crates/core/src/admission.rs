//! Pipelined batch admission in front of the sharded service.
//!
//! [`crate::ShardedLsm`] removed the cross-shard serialization of updates,
//! but a writer still blocks for the whole carry chain of every batch it
//! applies.  [`AdmittedLsm`] decouples the two: writers **validate and
//! enqueue** batches (split per shard, bounded queues) and return
//! immediately; a background **applier** drains the queues, **coalesces**
//! adjacent batches headed for the same shard into fewer, fuller batches,
//! and applies them through the service.  A `b`-sized batch split over `k`
//! shards otherwise pads each `b/k`-op sub-batch back to a full `b`
//! elements inside the shard — coalescing recovers exactly that waste under
//! sustained traffic, on top of taking the carry chain off the writers'
//! critical path.
//!
//! ## Ordering and exactness
//!
//! Admission never reorders: sub-batches preserve within-batch op order
//! (the split is stable) and per-shard queues are FIFO, so cross-batch
//! order per key is intact.  Coalescing `w` adjacent batches replaces them
//! with batches that are *visibly equivalent* to applying the `w` batches
//! in sequence: for every key, the **last** batch touching it decides —
//! a batch containing any deletion of the key deletes it (rule 6 exactly:
//! the tombstone shadows same-batch insertions), otherwise the batch's
//! first insertion wins (rule 4 exactly).  Queries therefore return
//! byte-identical answers to the synchronous path; the physical layout may
//! differ (fewer resident batches, fewer stale elements — coalescing is
//! also a micro-cleanup).  With coalescing disabled (`LSM_ADMIT_COALESCE=0`)
//! even the physical per-shard layout is byte-identical to synchronous
//! [`crate::ShardedLsm::update`] calls.
//!
//! ## Visibility
//!
//! The admitted view is eventually consistent: a query may miss batches
//! still in the queues.  [`AdmittedLsm::flush`] is the drain barrier
//! (returns once every previously enqueued batch is applied).  The
//! **read-your-writes** mode makes queued state visible without waiting:
//! point lookups overlay the pending per-shard queues (newest batch wins,
//! exactly the rules above) in front of the applied state, and interval /
//! order queries drain first.
//!
//! ## Rebalancing handoff
//!
//! The service can split and merge shards online (see
//! [`crate::ShardedLsm::split_shard`]); with an admission layer in front,
//! a rebalance must not strand or misroute queued batches.  The layer
//! therefore mirrors the service's routing table (router + per-shard
//! **stable queue ids** + epoch) inside its queue state and executes every
//! rebalance **on the applier thread** as an epoch-based handoff:
//!
//! 1. the affected shards' queues are drained inline (a *targeted* flush
//!    barrier — untouched shards keep queueing and applying),
//! 2. the service performs the structural split/merge (atomic table swap),
//! 3. the queue state is re-laid-out against the new table: surviving
//!    shard ids keep their queues and flush counters, replacement shards
//!    get fresh empty queues, and the mirrored router/epoch advance.
//!
//! Submitters route against the mirrored router under the queue lock, so a
//! batch is always enqueued consistently with one table generation; a
//! submitter sleeping on backpressure re-routes its remaining sub-batches
//! if the epoch moved while it slept.  Rebalances are requested with
//! [`AdmittedLsm::trigger_split`] / [`AdmittedLsm::trigger_merge`] (the
//! calls block until the applier has performed the handoff) or planned
//! automatically from hot-shard detection when the service was built with
//! [`crate::RebalanceConfig::enabled`].
//!
//! [`AdmittedLsm::flush`] stays correct across handoffs because barriers
//! wait on (queue id, enqueued count) pairs: a queue id that disappeared
//! was drained before removal, so its target is vacuously satisfied.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::batch::{Op, UpdateBatch};
use crate::cleanup::CleanupReport;
use crate::error::{LsmError, Result};
use crate::key::{Key, Value, MAX_KEY};
use crate::latency::{LatencyHistogram, LatencySnapshot};
use crate::range::RangeResult;
use crate::router::ShardRouter;
use crate::shard::{RebalanceAction, ShardedLsm, ShardedStats};
use crate::validate::InvariantViolation;

/// Default bound of each shard's admission queue, in batches.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Most batches the applier pulls from one shard's queue per drain step —
/// the coalescing window.
pub const COALESCE_WINDOW: usize = 16;

/// The `LSM_ADMIT_QUEUE` environment knob: per-shard queue capacity in
/// batches (minimum 1, default [`DEFAULT_QUEUE_CAPACITY`]).
fn env_queue_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("LSM_ADMIT_QUEUE")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(DEFAULT_QUEUE_CAPACITY, |c| c.max(1))
    })
}

/// The `LSM_ADMIT_COALESCE` environment knob: `0` disables coalescing (the
/// applier replays batches exactly as submitted), anything else (default)
/// enables it.
fn env_coalesce() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("LSM_ADMIT_COALESCE")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .is_none_or(|v| v != 0)
    })
}

/// Tuning of one admission layer (see the `LSM_ADMIT_*` environment knobs
/// for the process-wide defaults, and [`crate::LsmConfig`] for the
/// explicit per-instance route).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Bound of each shard's queue, in batches; submitters block when the
    /// target shard's queue is full (backpressure).
    pub queue_capacity: usize,
    /// Whether the applier coalesces adjacent same-shard batches.
    pub coalesce: bool,
    /// Whether queries observe queued (not yet applied) state: lookups
    /// overlay the queues, interval/order queries drain first.
    pub read_your_writes: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: env_queue_capacity(),
            coalesce: env_coalesce(),
            read_your_writes: false,
        }
    }
}

/// Lifetime admission counters (monotonic except the two depth gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Batches currently sitting in the per-shard queues.
    pub queued_batches: usize,
    /// Batches popped by the applier but not yet applied.
    pub in_flight_batches: usize,
    /// Whole batches accepted by [`AdmittedLsm::submit`].
    pub submitted_batches: u64,
    /// Operations across all submitted batches.
    pub submitted_ops: u64,
    /// Per-shard sub-batches enqueued (a batch spanning `k` shards counts
    /// `k` times).
    pub enqueued_sub_batches: u64,
    /// Batches the applier actually pushed into the shards.
    pub applied_batches: u64,
    /// Operations across all applied batches (after coalescing dropped
    /// superseded ops).
    pub applied_ops: u64,
    /// Sub-batches absorbed by coalescing (enqueued minus applied, counted
    /// as they happen).
    pub coalesced_batches: u64,
    /// Completed [`AdmittedLsm::flush`] barriers.
    pub flushes: u64,
    /// Rebalance handoffs (splits + merges) executed by the applier.
    pub rebalances: u64,
}

/// Per-operation latency attribution of the admission pipeline, split the
/// way a service needs it for SLO accounting: time a sub-batch spent
/// **waiting in its shard queue** (admission to applier pop — grows with
/// queue depth, the backpressure signal) versus time the applier spent
/// **applying** batches to the shards (the carry-chain cost itself).  Both
/// histograms record nanoseconds.
#[derive(Debug, Default)]
struct AdmissionLatency {
    queue_wait: LatencyHistogram,
    apply: LatencyHistogram,
}

/// Microsecond percentile summaries of the admission pipeline's two
/// latency components (see [`AdmittedLsm::latency_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionLatencyStats {
    /// Admission-to-pop wait per enqueued sub-batch.
    pub queue_wait: LatencySnapshot,
    /// Shard-apply time per batch the applier pushed (after coalescing).
    pub apply: LatencySnapshot,
}

/// A validated, shard-routed sub-batch plus the instant it was admitted —
/// the timestamp the applier turns into the queue-wait histogram.
#[derive(Debug)]
struct QueuedBatch {
    batch: UpdateBatch,
    admitted_at: Instant,
}

/// One shard's admission queue, identified by the shard's **stable id** so
/// a rebalance can re-layout the queue vector without losing queued work or
/// flush accounting for the shards it did not touch.
#[derive(Debug)]
struct ShardQueue {
    /// The service-assigned shard id this queue feeds (stable across
    /// rebalances that do not rebuild the shard).
    id: u64,
    /// FIFO of validated, shard-routed sub-batches.
    queue: VecDeque<QueuedBatch>,
    /// Batches the applier has popped but not yet applied — still pending,
    /// so the read-your-writes overlay must see them.  Populated only when
    /// read-your-writes is on (nothing else reads it).
    applying: Vec<UpdateBatch>,
    /// Lifetime batches enqueued (`submit` side of the flush barrier).
    enqueued_seq: u64,
    /// Lifetime batches fully applied.  The queue is FIFO, so
    /// `applied_seq >= e` proves the first `e` batches enqueued here are
    /// durable — what `flush` actually waits for.
    applied_seq: u64,
}

impl ShardQueue {
    fn new(id: u64) -> Self {
        ShardQueue {
            id,
            queue: VecDeque::new(),
            applying: Vec::new(),
            enqueued_seq: 0,
            applied_seq: 0,
        }
    }
}

/// A rebalance request for the applier to execute between drain windows.
#[derive(Debug, Clone, Copy)]
enum RebalanceCmd {
    /// Split shard `s` at a service-fitted key.
    Split(usize),
    /// Split shard `s` at an explicit key.
    SplitAt(usize, Key),
    /// Merge shards `s` and `s + 1`.
    Merge(usize),
    /// Run hot/cold-shard detection and execute its decision, if any.
    Plan,
}

/// Everything the submitters, the applier and the queries share.
#[derive(Debug)]
struct Shared {
    service: ShardedLsm,
    config: AdmissionConfig,
    state: Mutex<QueueState>,
    /// Queue-wait and apply-time histograms (applier-written, low rate:
    /// one short lock per drained window).
    latency: Mutex<AdmissionLatency>,
    /// Applier waits here for queued work or rebalance requests.
    work: Condvar,
    /// Submitters wait here for queue space.
    space: Condvar,
    /// Flush barriers wait here for full drain.
    drained: Condvar,
    /// Rebalance requesters wait here for their request's result.
    rebalanced: Condvar,
    submitted_batches: AtomicU64,
    submitted_ops: AtomicU64,
    enqueued_sub_batches: AtomicU64,
    applied_batches: AtomicU64,
    applied_ops: AtomicU64,
    coalesced_batches: AtomicU64,
    flushes: AtomicU64,
    rebalances: AtomicU64,
}

#[derive(Debug)]
struct QueueState {
    /// One queue per shard, in shard order — the layout always mirrors
    /// `router` (and thereby the service's current routing table).
    queues: Vec<ShardQueue>,
    /// Mirror of the service's router: submitters route against this under
    /// the state lock so every enqueue is consistent with one table
    /// generation.
    router: ShardRouter,
    /// Mirror of the service's routing epoch; bumped by every handoff.
    /// Sleeping submitters use it to detect that their routing went stale.
    epoch: u64,
    /// Total batches across the queues.
    queued: usize,
    /// Total batches popped but not yet applied.
    in_flight: usize,
    /// Round-robin cursor so no shard's queue starves.
    next_shard: usize,
    /// Rebalance requests awaiting the applier.  `None` sequence numbers
    /// are fire-and-forget (auto-planned); `Some(seq)` has a caller
    /// blocked in [`AdmittedLsm`] waiting for `rebalance_results[seq]`.
    pending_rebalances: VecDeque<(Option<u64>, RebalanceCmd)>,
    /// Completed request results, keyed by sequence number, removed by the
    /// waiting caller.
    rebalance_results: HashMap<u64, Result<Option<RebalanceAction>>>,
    /// Next rebalance request sequence number.
    next_rebalance_seq: u64,
    /// Applied windows since the last automatic detection check.
    windows_since_check: u64,
    /// Set once, by the last handle's drop; the applier drains and exits.
    shutdown: bool,
}

/// Joins the applier thread when the last user handle drops (the applier
/// drains all queued work first, so dropping implies a final flush).
#[derive(Debug)]
struct Lifecycle {
    shared: Arc<Shared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for Lifecycle {
    fn drop(&mut self) {
        self.shared.state.lock().expect("admission lock").shutdown = true;
        self.shared.work.notify_all();
        if let Some(handle) = self.handle.lock().expect("lifecycle lock").take() {
            let _ = handle.join();
        }
    }
}

/// A pipelined-admission handle over a [`ShardedLsm`].
///
/// Cloning is cheap; all clones share the queues, the applier and the
/// underlying service.  The applier thread shuts down (after draining)
/// when the last handle is dropped.
///
/// While an admission layer is attached, rebalance the service through
/// [`AdmittedLsm::trigger_split`] / [`AdmittedLsm::trigger_merge`] (or the
/// automatic planner), **not** by calling [`ShardedLsm::split_shard`]
/// directly on the wrapped service — the layer must drain the affected
/// queues first.
#[derive(Debug, Clone)]
pub struct AdmittedLsm {
    shared: Arc<Shared>,
    _lifecycle: Arc<Lifecycle>,
}

impl AdmittedLsm {
    /// Wrap `service` with the admission configuration derived from the
    /// service's [`crate::LsmConfig`] (explicit knobs first, `LSM_ADMIT_*`
    /// environment fallback for the rest).
    pub fn new(service: ShardedLsm) -> Self {
        let config = service.config().admission();
        Self::with_config(service, config)
    }

    /// Wrap `service` with an explicit admission configuration.
    pub fn with_config(service: ShardedLsm, config: AdmissionConfig) -> Self {
        let table = service.table_snapshot();
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState {
                queues: table.ids.iter().map(|&id| ShardQueue::new(id)).collect(),
                router: table.router.clone(),
                epoch: table.epoch,
                queued: 0,
                in_flight: 0,
                next_shard: 0,
                pending_rebalances: VecDeque::new(),
                rebalance_results: HashMap::new(),
                next_rebalance_seq: 0,
                windows_since_check: 0,
                shutdown: false,
            }),
            service,
            latency: Mutex::new(AdmissionLatency::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            rebalanced: Condvar::new(),
            submitted_batches: AtomicU64::new(0),
            submitted_ops: AtomicU64::new(0),
            enqueued_sub_batches: AtomicU64::new(0),
            applied_batches: AtomicU64::new(0),
            applied_ops: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
        });
        let applier_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("lsm-admission".into())
            .spawn(move || applier_loop(&applier_shared))
            .expect("spawn admission applier");
        AdmittedLsm {
            _lifecycle: Arc::new(Lifecycle {
                shared: Arc::clone(&shared),
                handle: Mutex::new(Some(handle)),
            }),
            shared,
        }
    }

    /// The wrapped sharded service (answers reflect only *applied* state).
    pub fn service(&self) -> &ShardedLsm {
        &self.shared.service
    }

    /// The admission configuration in effect.
    pub fn config(&self) -> &AdmissionConfig {
        &self.shared.config
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Validate a mixed update batch and enqueue it, blocking only when a
    /// target shard's queue is at capacity.  An invalid batch is rejected
    /// in full before anything is enqueued, exactly like the synchronous
    /// path.  Routing happens against the mirrored table under the queue
    /// lock; if a rebalance lands while the submitter sleeps on
    /// backpressure, the not-yet-enqueued remainder is re-routed against
    /// the new table (per-key op order is unaffected: all ops on one key
    /// travel in one sub-batch).
    pub fn submit(&self, batch: &UpdateBatch) -> Result<()> {
        if batch.is_empty() {
            return Err(LsmError::EmptyBatch);
        }
        if batch.len() > self.shared.service.batch_size() {
            return Err(LsmError::BatchTooLarge {
                supplied: batch.len(),
                batch_size: self.shared.service.batch_size(),
            });
        }
        if let Some(op) = batch.ops().iter().find(|op| op.key() > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: op.key() });
        }
        let mut enqueued = 0u64;
        {
            let mut state = self.shared.state.lock().expect("admission lock");
            let mut parts = route_parts(&state.router, batch);
            'parts: while let Some((s, part)) = parts.pop_front() {
                loop {
                    if state.queues[s].queue.len() < self.shared.config.queue_capacity {
                        // The admission timestamp is taken *after* any
                        // backpressure wait: queue-wait measures time spent
                        // in the queue itself, while a blocked submit is
                        // visible to the client's own clock.
                        state.queues[s].queue.push_back(QueuedBatch {
                            batch: part,
                            admitted_at: Instant::now(),
                        });
                        state.queued += 1;
                        state.queues[s].enqueued_seq += 1;
                        enqueued += 1;
                        continue 'parts;
                    }
                    let epoch = state.epoch;
                    state = self.shared.space.wait(state).expect("admission lock");
                    if state.epoch != epoch {
                        // The routing table changed while we slept:
                        // re-route this part and everything not yet
                        // enqueued against the new router.
                        let rest_len =
                            part.len() + parts.iter().map(|(_, p)| p.len()).sum::<usize>();
                        let mut rest = UpdateBatch::with_capacity(rest_len);
                        for op in part.ops() {
                            rest.push(*op);
                        }
                        for (_, p) in &parts {
                            for op in p.ops() {
                                rest.push(*op);
                            }
                        }
                        parts = route_parts(&state.router, &rest);
                        continue 'parts;
                    }
                }
            }
        }
        self.shared
            .submitted_batches
            .fetch_add(1, Ordering::Relaxed);
        self.shared
            .submitted_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.shared
            .enqueued_sub_batches
            .fetch_add(enqueued, Ordering::Relaxed);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Enqueue key–value insertions (at most `b`).
    pub fn insert(&self, pairs: &[(Key, Value)]) -> Result<()> {
        self.submit(&UpdateBatch::from_pairs(pairs))
    }

    /// Enqueue deletions (at most `b`).
    pub fn delete(&self, keys: &[Key]) -> Result<()> {
        self.submit(&UpdateBatch::from_deletions(keys))
    }

    /// Drain barrier: returns once every batch enqueued **before the
    /// call** has been applied to the shards.  The wait is against
    /// per-queue (id, enqueued) pairs snapshotted at entry, so concurrent
    /// submitters can keep the queues busy without starving the barrier
    /// (each queue is FIFO, so `applied >= snapshot` proves the snapshot
    /// prefix is durable).  A queue id that disappears was drained by a
    /// rebalance handoff before removal, satisfying its target.
    pub fn flush(&self) {
        let mut state = self.shared.state.lock().expect("admission lock");
        let targets: Vec<(u64, u64)> = state
            .queues
            .iter()
            .map(|q| (q.id, q.enqueued_seq))
            .collect();
        while targets.iter().any(|&(id, target)| {
            state
                .queues
                .iter()
                .find(|q| q.id == id)
                .is_some_and(|q| q.applied_seq < target)
        }) {
            state = self.shared.drained.wait(state).expect("admission lock");
        }
        drop(state);
        self.shared.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Flush, then run the service's cleanup on every shard.
    pub fn cleanup(&self) -> CleanupReport {
        self.flush();
        self.shared.service.cleanup()
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    /// Ask the applier to split shard `s` at a service-fitted key (see
    /// [`ShardedLsm::split_shard`]), draining the shard's queue first.
    /// Blocks until the handoff completes; returns the action taken.
    pub fn trigger_split(&self, s: usize) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Split(s))
    }

    /// Ask the applier to split shard `s` at an explicit `key` (see
    /// [`ShardedLsm::split_shard_at`]), draining the shard's queue first.
    pub fn trigger_split_at(&self, s: usize, key: Key) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::SplitAt(s, key))
    }

    /// Ask the applier to merge shards `s` and `s + 1` (see
    /// [`ShardedLsm::merge_shards`]), draining both queues first.
    pub fn trigger_merge(&self, s: usize) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Merge(s))
    }

    /// Ask the applier to run hot/cold-shard detection now and execute its
    /// decision, if any.  Returns the action taken (`Ok(None)` when no
    /// threshold tripped).
    pub fn trigger_rebalance_check(&self) -> Result<Option<RebalanceAction>> {
        self.request_rebalance(RebalanceCmd::Plan)
    }

    /// Enqueue a rebalance request and block until the applier executed it.
    fn request_rebalance(&self, cmd: RebalanceCmd) -> Result<Option<RebalanceAction>> {
        let mut state = self.shared.state.lock().expect("admission lock");
        let seq = state.next_rebalance_seq;
        state.next_rebalance_seq += 1;
        state.pending_rebalances.push_back((Some(seq), cmd));
        self.shared.work.notify_all();
        loop {
            if let Some(result) = state.rebalance_results.remove(&seq) {
                return result;
            }
            state = self.shared.rebalanced.wait(state).expect("admission lock");
        }
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Bulk point lookups.  In read-your-writes mode the pending queues are
    /// overlaid in front of the applied state (newest pending batch wins);
    /// otherwise only applied state is visible.
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        if !self.shared.config.read_your_writes {
            return self.shared.service.lookup(queries);
        }
        // Decide what the pending (queued + in-flight) ops say about each
        // query under one short lock; undecided keys fall through to the
        // applied state.  Each touched shard's pending batches are folded
        // into one key → decision map in a single pass, so the lock is
        // held for O(pending ops + queries), not their product.  Routing
        // uses the mirrored router so the overlay matches the enqueue
        // layout even across rebalances.
        let overlay: Vec<Option<Option<Value>>> = {
            let state = self.shared.state.lock().expect("admission lock");
            let mut maps: Vec<Option<HashMap<Key, Option<Value>>>> = vec![None; state.queues.len()];
            queries
                .iter()
                .map(|&q| {
                    let s = state.router.shard_of(q.min(MAX_KEY));
                    maps[s]
                        .get_or_insert_with(|| pending_decisions(&state, s))
                        .get(&q)
                        .copied()
                })
                .collect()
        };
        let undecided: Vec<Key> = queries
            .iter()
            .zip(&overlay)
            .filter(|(_, o)| o.is_none())
            .map(|(&q, _)| q)
            .collect();
        let applied = self.shared.service.lookup(&undecided);
        let mut applied_iter = applied.into_iter();
        overlay
            .into_iter()
            .map(|o| match o {
                Some(decided) => decided,
                None => applied_iter.next().expect("one applied answer per miss"),
            })
            .collect()
    }

    /// Bulk count queries (read-your-writes mode drains first).
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        if self.shared.config.read_your_writes {
            self.flush();
        }
        self.shared.service.count(queries)
    }

    /// Bulk range queries (read-your-writes mode drains first).
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        if self.shared.config.read_your_writes {
            self.flush();
        }
        self.shared.service.range(queries)
    }

    /// Bulk successor queries (read-your-writes mode drains first).
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        if self.shared.config.read_your_writes {
            self.flush();
        }
        self.shared.service.successor(queries)
    }

    /// Bulk predecessor queries (read-your-writes mode drains first).
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        if self.shared.config.read_your_writes {
            self.flush();
        }
        self.shared.service.predecessor(queries)
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Admission-layer counters and queue gauges.
    pub fn admission_stats(&self) -> AdmissionStats {
        let (queued, in_flight) = {
            let state = self.shared.state.lock().expect("admission lock");
            (state.queued, state.in_flight)
        };
        AdmissionStats {
            queued_batches: queued,
            in_flight_batches: in_flight,
            submitted_batches: self.shared.submitted_batches.load(Ordering::Relaxed),
            submitted_ops: self.shared.submitted_ops.load(Ordering::Relaxed),
            enqueued_sub_batches: self.shared.enqueued_sub_batches.load(Ordering::Relaxed),
            applied_batches: self.shared.applied_batches.load(Ordering::Relaxed),
            applied_ops: self.shared.applied_ops.load(Ordering::Relaxed),
            coalesced_batches: self.shared.coalesced_batches.load(Ordering::Relaxed),
            flushes: self.shared.flushes.load(Ordering::Relaxed),
            rebalances: self.shared.rebalances.load(Ordering::Relaxed),
        }
    }

    /// Microsecond percentile summaries of the pipeline's queue-wait and
    /// apply-time histograms.
    pub fn latency_stats(&self) -> AdmissionLatencyStats {
        let latency = self.shared.latency.lock().expect("latency lock");
        AdmissionLatencyStats {
            queue_wait: latency.queue_wait.snapshot_us(),
            apply: latency.apply.snapshot_us(),
        }
    }

    /// Clones of the full queue-wait and apply-time histograms (nanosecond
    /// samples), for callers that need quantiles beyond the snapshot.
    pub fn latency_histograms(&self) -> (LatencyHistogram, LatencyHistogram) {
        let latency = self.shared.latency.lock().expect("latency lock");
        (latency.queue_wait.clone(), latency.apply.clone())
    }

    /// Service-wide statistics with the admission gauges folded in.
    pub fn stats(&self) -> ShardedStats {
        let mut stats = self.shared.service.stats();
        let admission = self.admission_stats();
        stats.admission_queued_batches = admission.queued_batches as u64;
        stats.admission_coalesced_batches = admission.coalesced_batches;
        stats.admission_applied_batches = admission.applied_batches;
        let latency = self.latency_stats();
        stats.admission_queue_wait = latency.queue_wait;
        stats.admission_apply = latency.apply;
        stats
    }

    /// Flush, then check every shard's invariants.
    pub fn check_invariants(&self) -> std::result::Result<(), InvariantViolation> {
        self.flush();
        self.shared.service.check_invariants()
    }
}

/// Split a batch by shard and keep the non-empty parts in shard order.
fn route_parts(router: &ShardRouter, batch: &UpdateBatch) -> VecDeque<(usize, UpdateBatch)> {
    router
        .split_updates(batch)
        .into_iter()
        .enumerate()
        .filter(|(_, p)| !p.is_empty())
        .collect()
}

/// Fold shard `s`'s pending batches — in-flight first (older), then the
/// queue oldest-to-newest — into one key → visible-outcome map: per batch
/// any deletion of a key shadows its insertions (rule 6) else the first
/// insertion wins (rule 4), and later batches overwrite earlier ones
/// (newest batch decides).
fn pending_decisions(state: &QueueState, s: usize) -> HashMap<Key, Option<Value>> {
    let mut decisions = HashMap::new();
    for batch in state.queues[s]
        .applying
        .iter()
        .chain(state.queues[s].queue.iter().map(|q| &q.batch))
    {
        for op in resolve_batch(batch) {
            let outcome = match op {
                Op::Insert(_, v) => Some(v),
                Op::Delete(_) => None,
            };
            decisions.insert(op.key(), outcome);
        }
    }
    decisions
}

/// The background applier: drain queues round-robin, coalesce, apply;
/// execute rebalance handoffs between windows.
fn applier_loop(shared: &Arc<Shared>) {
    loop {
        // Pop one shard's coalescing window under the lock; rebalance
        // requests take priority and run entirely under the lock (they
        // are a barrier for the affected shards by design).  With
        // read-your-writes on, the popped batches stay visible to the
        // overlay via `applying` until they are applied; otherwise nothing
        // reads `applying` and the clone is skipped.
        let (shard, window) = {
            let mut state = shared.state.lock().expect("admission lock");
            loop {
                if let Some((seq, cmd)) = state.pending_rebalances.pop_front() {
                    let result = execute_rebalance(shared, &mut state, cmd);
                    if let Some(seq) = seq {
                        state.rebalance_results.insert(seq, result);
                        shared.rebalanced.notify_all();
                    }
                    continue;
                }
                if state.queued > 0 {
                    break;
                }
                if state.shutdown {
                    return; // queues fully drained: drop implies flush
                }
                state = shared.work.wait(state).expect("admission lock");
            }
            let num_shards = state.queues.len();
            let mut s = state.next_shard % num_shards;
            while state.queues[s].queue.is_empty() {
                s = (s + 1) % num_shards;
            }
            state.next_shard = (s + 1) % num_shards;
            let take = if shared.config.coalesce {
                COALESCE_WINDOW.min(state.queues[s].queue.len())
            } else {
                1
            };
            let window: Vec<QueuedBatch> = state.queues[s].queue.drain(..take).collect();
            state.queued -= take;
            state.in_flight += take;
            if shared.config.read_your_writes {
                state.queues[s].applying = window.iter().map(|q| q.batch.clone()).collect();
            }
            (s, window)
        };
        shared.space.notify_all();

        let taken = apply_window(shared, shard, window);

        let mut state = shared.state.lock().expect("admission lock");
        state.queues[shard].applying.clear();
        state.in_flight -= taken;
        state.queues[shard].applied_seq += taken as u64;
        // Every completed window can release a flush barrier (barriers
        // wait on per-queue epochs, not on full quiescence).
        shared.drained.notify_all();
        // Automatic hot/cold detection: piggybacked on the applier cadence
        // so it needs no extra thread and naturally sees applied traffic.
        let rebalance_cfg = &shared.service.config().rebalance;
        if rebalance_cfg.enabled {
            state.windows_since_check += 1;
            if state.windows_since_check >= rebalance_cfg.check_interval {
                state.windows_since_check = 0;
                // Planning failure (e.g. a lost race) is not fatal: the
                // next window plans again.
                let _ = execute_rebalance(shared, &mut state, RebalanceCmd::Plan);
            }
        }
    }
}

/// Coalesce (per config) and apply one popped window to `shard`, recording
/// the queue-wait and apply-time histograms and the lifetime counters.
/// Returns the number of batches consumed from the queue.
fn apply_window(shared: &Shared, shard: usize, window: Vec<QueuedBatch>) -> usize {
    // Queue-wait ends when the applier takes ownership of the window.
    let popped_at = Instant::now();
    let mut waits_ns: Vec<u64> = Vec::with_capacity(window.len());
    let mut batches: Vec<UpdateBatch> = Vec::with_capacity(window.len());
    for q in window {
        let wait = popped_at.saturating_duration_since(q.admitted_at);
        waits_ns.push(u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX));
        batches.push(q.batch);
    }

    let taken = batches.len();
    let to_apply = if shared.config.coalesce {
        coalesce_batches(&batches, shared.service.batch_size())
    } else {
        batches // replay mode applies the popped batch as-is
    };
    shared
        .coalesced_batches
        .fetch_add((taken - to_apply.len()) as u64, Ordering::Relaxed);
    let mut applies_ns: Vec<u64> = Vec::with_capacity(to_apply.len());
    for part in &to_apply {
        // Sub-batches were validated at submit time and coalescing keeps
        // them non-empty and within `b`; the apply holds the service's
        // table read lock so it cannot interleave with a table swap.
        let apply_start = Instant::now();
        shared
            .service
            .apply_routed(shard, part)
            .expect("validated admitted batch cannot be rejected");
        applies_ns.push(u64::try_from(apply_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        shared.applied_batches.fetch_add(1, Ordering::Relaxed);
        shared
            .applied_ops
            .fetch_add(part.len() as u64, Ordering::Relaxed);
    }
    {
        // One short lock per window keeps recording off the hot loop.
        let mut latency = shared.latency.lock().expect("latency lock");
        for ns in waits_ns {
            latency.queue_wait.record(ns);
        }
        for ns in applies_ns {
            latency.apply.record(ns);
        }
    }
    taken
}

/// Execute one rebalance handoff on the applier thread, with the queue
/// state lock held throughout: drain the affected shards' queues (a
/// targeted flush barrier), perform the structural change on the service,
/// then re-layout the queues against the new routing table.
fn execute_rebalance(
    shared: &Shared,
    state: &mut QueueState,
    cmd: RebalanceCmd,
) -> Result<Option<RebalanceAction>> {
    let action = match cmd {
        RebalanceCmd::Plan => match shared.service.plan_rebalance() {
            Some(action) => action,
            None => return Ok(None),
        },
        RebalanceCmd::Split(s) | RebalanceCmd::SplitAt(s, _) => RebalanceAction::Split(s),
        RebalanceCmd::Merge(s) => RebalanceAction::Merge(s),
    };
    let affected: Vec<usize> = match action {
        RebalanceAction::Split(s) => vec![s],
        RebalanceAction::Merge(s) => vec![s, s + 1],
    };
    if let Some(&bad) = affected.iter().find(|&&s| s >= state.queues.len()) {
        return Err(LsmError::InvalidRebalance {
            reason: format!("shard {bad} out of range for {} shards", state.queues.len()),
        });
    }
    // Targeted drain: every batch admitted for the affected shards must be
    // applied before the rebuild snapshots their contents.
    for &s in &affected {
        if state.queues[s].queue.is_empty() {
            continue;
        }
        let drained: Vec<QueuedBatch> = state.queues[s].queue.drain(..).collect();
        state.queued -= drained.len();
        let taken = apply_window(shared, s, drained);
        state.queues[s].applied_seq += taken as u64;
    }
    match cmd {
        RebalanceCmd::SplitAt(s, key) => shared.service.split_shard_at(s, key)?,
        RebalanceCmd::Split(s) => {
            shared.service.split_shard(s)?;
        }
        RebalanceCmd::Merge(s) => shared.service.merge_shards(s)?,
        RebalanceCmd::Plan => shared.service.apply_rebalance(action)?,
    }
    // Re-layout against the new table: surviving ids keep their queues and
    // flush counters, replacement shards start fresh.  The dropped queues
    // were just drained, so no admitted batch is lost.
    let table = shared.service.table_snapshot();
    let mut old: HashMap<u64, ShardQueue> = state.queues.drain(..).map(|q| (q.id, q)).collect();
    state.queues = table
        .ids
        .iter()
        .map(|&id| old.remove(&id).unwrap_or_else(|| ShardQueue::new(id)))
        .collect();
    debug_assert!(old.values().all(|q| q.queue.is_empty()));
    state.router = table.router.clone();
    state.epoch = table.epoch;
    state.queued = state.queues.iter().map(|q| q.queue.len()).sum();
    state.next_shard %= state.queues.len().max(1);
    shared.rebalances.fetch_add(1, Ordering::Relaxed);
    // Wake sleeping submitters (they must re-route) and flush barriers
    // (drained ids satisfy their targets).
    shared.space.notify_all();
    shared.drained.notify_all();
    Ok(Some(action))
}

/// Replace a run of adjacent batches with visibly equivalent coalesced
/// batches of at most `batch_size` ops each: for every key the **last**
/// batch touching it decides (a deletion anywhere in that batch deletes,
/// otherwise its first insertion wins), and a new output batch starts
/// whenever the accumulated distinct keys would exceed `batch_size` —
/// so each output batch is exactly equivalent to a contiguous sub-run.
fn coalesce_batches(window: &[UpdateBatch], batch_size: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut acc: Vec<Op> = Vec::new();
    let mut index: HashMap<Key, usize> = HashMap::new();
    for batch in window {
        let resolved = resolve_batch(batch);
        let new_keys = resolved
            .iter()
            .filter(|op| !index.contains_key(&op.key()))
            .count();
        if !acc.is_empty() && acc.len() + new_keys > batch_size {
            let mut flushed = UpdateBatch::with_capacity(acc.len());
            for op in acc.drain(..) {
                flushed.push(op);
            }
            index.clear();
            out.push(flushed);
        }
        for op in resolved {
            match index.entry(op.key()) {
                std::collections::hash_map::Entry::Occupied(slot) => acc[*slot.get()] = op,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(acc.len());
                    acc.push(op);
                }
            }
        }
    }
    if !acc.is_empty() {
        let mut flushed = UpdateBatch::with_capacity(acc.len());
        for op in acc {
            flushed.push(op);
        }
        out.push(flushed);
    }
    out
}

/// One batch reduced to a single op per key, per the batch semantics: any
/// deletion of a key shadows the batch's insertions of it (rule 6), among
/// insertions the first wins (rule 4).  Op order follows first appearance,
/// keeping the reduction deterministic.
fn resolve_batch(batch: &UpdateBatch) -> Vec<Op> {
    let mut order: Vec<Key> = Vec::with_capacity(batch.len());
    let mut decision: HashMap<Key, Op> = HashMap::with_capacity(batch.len());
    for op in batch.ops() {
        match decision.entry(op.key()) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                order.push(op.key());
                slot.insert(*op);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                if matches!(op, Op::Delete(_)) {
                    slot.insert(Op::Delete(op.key()));
                }
            }
        }
    }
    order.into_iter().map(|k| decision[&k]).collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use super::*;
    use crate::config::{LsmConfig, RebalanceConfig};

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    fn admitted(batch_size: usize, shards: usize, config: AdmissionConfig) -> AdmittedLsm {
        AdmittedLsm::with_config(
            ShardedLsm::new(device(), batch_size, shards).unwrap(),
            config,
        )
    }

    fn config(coalesce: bool, ryw: bool) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 8,
            coalesce,
            read_your_writes: ryw,
        }
    }

    #[test]
    fn submit_flush_query_round_trip() {
        let lsm = admitted(8, 2, config(true, false));
        lsm.insert(&[(1, 10), (1 << 30, 20)]).unwrap();
        lsm.delete(&[1 << 30]).unwrap();
        lsm.flush();
        assert_eq!(lsm.lookup(&[1, 1 << 30]), vec![Some(10), None]);
        let stats = lsm.admission_stats();
        assert_eq!(stats.submitted_batches, 2);
        assert_eq!(stats.queued_batches, 0);
        assert!(stats.applied_batches >= 1);
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn validation_rejects_before_enqueueing() {
        let lsm = admitted(2, 2, config(true, false));
        assert_eq!(
            lsm.submit(&UpdateBatch::new()).unwrap_err(),
            LsmError::EmptyBatch
        );
        assert!(matches!(
            lsm.insert(&[(1, 1), (2, 2), (3, 3)]).unwrap_err(),
            LsmError::BatchTooLarge { .. }
        ));
        let mut batch = UpdateBatch::new();
        batch.insert(MAX_KEY + 1, 0);
        assert_eq!(
            lsm.submit(&batch).unwrap_err(),
            LsmError::KeyOutOfRange { key: MAX_KEY + 1 }
        );
        lsm.flush();
        assert_eq!(lsm.admission_stats().submitted_batches, 0);
        assert_eq!(lsm.stats().total_elements, 0);
    }

    #[test]
    fn read_your_writes_sees_queued_state() {
        let lsm = admitted(4, 1, config(true, true));
        // Stall nothing: even before any flush, the overlay answers.
        lsm.insert(&[(5, 50), (6, 60)]).unwrap();
        assert_eq!(lsm.lookup(&[5, 6, 7]), vec![Some(50), Some(60), None]);
        lsm.delete(&[5]).unwrap();
        assert_eq!(lsm.lookup(&[5]), vec![None]);
        lsm.insert(&[(5, 51)]).unwrap();
        assert_eq!(lsm.lookup(&[5]), vec![Some(51)]);
        // Interval queries drain first in this mode.
        assert_eq!(lsm.count(&[(0, 100)]), vec![2]);
        assert_eq!(lsm.admission_stats().queued_batches, 0);
    }

    #[test]
    fn coalescing_preserves_rules_4_and_6() {
        // Same submissions through a coalescing and a replaying layer must
        // give identical answers (insert-after-delete, delete-after-insert,
        // duplicate inserts across and within batches).
        let a = admitted(8, 1, config(true, false));
        let b = admitted(8, 1, config(false, false));
        for lsm in [&a, &b] {
            lsm.insert(&[(1, 1), (2, 1), (3, 1)]).unwrap();
            lsm.delete(&[2]).unwrap();
            lsm.insert(&[(2, 7), (4, 7)]).unwrap();
            let mut mixed = UpdateBatch::new();
            mixed.insert(5, 9).delete(3).insert(5, 8).delete(5);
            lsm.submit(&mixed).unwrap();
            lsm.insert(&[(5, 42)]).unwrap();
            lsm.flush();
        }
        let queries: Vec<u32> = (0..8).collect();
        assert_eq!(a.lookup(&queries), b.lookup(&queries));
        assert_eq!(a.count(&[(0, 100)]), b.count(&[(0, 100)]));
        assert_eq!(a.range(&[(0, 100)]), b.range(&[(0, 100)]));
        // The coalescing side actually coalesced something.
        assert!(a.admission_stats().coalesced_batches > 0);
        assert_eq!(b.admission_stats().coalesced_batches, 0);
    }

    #[test]
    fn coalesce_batches_respects_capacity_and_semantics() {
        let mut b1 = UpdateBatch::new();
        b1.insert(1, 10).insert(2, 20).delete(3);
        let mut b2 = UpdateBatch::new();
        b2.insert(3, 30).delete(1).insert(4, 40);
        let out = coalesce_batches(&[b1.clone(), b2.clone()], 8);
        assert_eq!(out.len(), 1);
        let ops = out[0].ops();
        // Last batch wins per key: 1 deleted, 3 re-inserted; 2 and 4 kept.
        assert!(ops.contains(&Op::Delete(1)));
        assert!(ops.contains(&Op::Insert(2, 20)));
        assert!(ops.contains(&Op::Insert(3, 30)));
        assert!(ops.contains(&Op::Insert(4, 40)));
        assert_eq!(ops.len(), 4);
        // A tight capacity splits instead of overflowing.
        let out = coalesce_batches(&[b1, b2], 3);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|b| b.len() <= 3));
    }

    #[test]
    fn resolve_batch_applies_rule_6() {
        let mut batch = UpdateBatch::new();
        batch
            .insert(7, 1)
            .insert(7, 2)
            .delete(8)
            .insert(8, 3)
            .delete(7);
        let resolved = resolve_batch(&batch);
        assert_eq!(resolved, vec![Op::Delete(7), Op::Delete(8)]);
    }

    #[test]
    fn backpressure_blocks_then_drains() {
        let lsm = admitted(
            4,
            1,
            AdmissionConfig {
                queue_capacity: 2,
                coalesce: true,
                read_your_writes: false,
            },
        );
        // Many more batches than the queue holds: submitters must block on
        // backpressure and still drain to a consistent end state.
        for i in 0..64u32 {
            lsm.insert(&[(i % 16, i)]).unwrap();
        }
        lsm.flush();
        let got = lsm.lookup(&(0..16u32).collect::<Vec<_>>());
        for (k, v) in got.into_iter().enumerate() {
            // Key k was last written by batch 48 + k.
            assert_eq!(v, Some(48 + k as u32), "key {k}");
        }
    }

    #[test]
    fn drop_drains_pending_work() {
        let service = ShardedLsm::new(device(), 4, 2).unwrap();
        {
            let lsm = AdmittedLsm::with_config(service.clone(), config(true, false));
            for i in 0..20u32 {
                lsm.insert(&[(i, i), ((1 << 30) + i, i)]).unwrap();
            }
            // No flush: dropping the last handle must drain the queues.
        }
        assert_eq!(
            service.lookup(&[19, (1 << 30) + 19]),
            vec![Some(19), Some(19)]
        );
    }

    #[test]
    fn clones_share_queues_and_counters() {
        let lsm = admitted(4, 1, config(true, false));
        let clone = lsm.clone();
        lsm.insert(&[(1, 1)]).unwrap();
        clone.flush();
        assert_eq!(clone.lookup(&[1]), vec![Some(1)]);
        assert_eq!(clone.admission_stats().submitted_batches, 1);
    }

    #[test]
    fn triggered_split_and_merge_preserve_admitted_state() {
        let lsm = admitted(8, 1, config(true, false));
        for i in 0..8u32 {
            lsm.insert(&[(i * 100, i), (i * 100 + 1, i)]).unwrap();
        }
        // Split mid-stream, without flushing first: the handoff drains the
        // affected queue itself.
        let action = lsm.trigger_split_at(0, 350).unwrap();
        assert_eq!(action, Some(RebalanceAction::Split(0)));
        assert_eq!(lsm.service().num_shards(), 2);
        assert_eq!(lsm.admission_stats().rebalances, 1);
        // Traffic keeps flowing on both sides of the new boundary.
        lsm.insert(&[(349, 99), (351, 99)]).unwrap();
        lsm.flush();
        let keys: Vec<u32> = (0..8).map(|i| i * 100).collect();
        assert_eq!(
            lsm.lookup(&keys),
            (0..8).map(Some).collect::<Vec<Option<u32>>>()
        );
        assert_eq!(lsm.lookup(&[349, 351]), vec![Some(99), Some(99)]);
        lsm.check_invariants().unwrap();
        // Merge back; answers unchanged.
        let action = lsm.trigger_merge(0).unwrap();
        assert_eq!(action, Some(RebalanceAction::Merge(0)));
        assert_eq!(lsm.service().num_shards(), 1);
        lsm.flush();
        assert_eq!(
            lsm.lookup(&keys),
            (0..8).map(Some).collect::<Vec<Option<u32>>>()
        );
        // Invalid requests surface the service's error to the caller.
        assert!(lsm.trigger_merge(5).is_err());
        assert!(lsm.trigger_split_at(0, 0).is_err());
        lsm.check_invariants().unwrap();
    }

    #[test]
    fn auto_rebalance_splits_hot_shard_behind_admission() {
        let lsm_config = LsmConfig::default().rebalance(RebalanceConfig {
            enabled: true,
            min_ops: 32,
            hot_fraction: 0.5,
            cold_fraction: 0.0,
            max_shards: 4,
            min_shards: 1,
            check_interval: 1,
        });
        let service = ShardedLsm::with_config(device(), 16, 1, lsm_config).unwrap();
        let lsm = AdmittedLsm::with_config(service, config(true, false));
        for round in 0..16u32 {
            let pairs: Vec<(u32, u32)> = (0..16u32).map(|i| (round * 16 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        lsm.flush();
        assert!(
            lsm.service().num_shards() > 1,
            "hot shard should have been split behind admission, still at {}",
            lsm.service().num_shards()
        );
        assert!(lsm.stats().rebalance_splits >= 1);
        lsm.check_invariants().unwrap();
        assert_eq!(lsm.count(&[(0, MAX_KEY)]), vec![256]);
    }
}
