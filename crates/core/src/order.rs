//! Order-based point queries: successor and predecessor.
//!
//! The paper notes (footnote 1) that beyond LOOKUP, COUNT and RANGE "it is
//! straightforward to support other order-based queries such as finding a
//! successor or a predecessor of a certain key"; this module provides them.
//!
//! A successor query must return the smallest *valid* key strictly greater
//! than the query key — skipping tombstoned keys and seeing through replaced
//! duplicates — so the search alternates between "find the next candidate
//! key across all levels" (one lower-bound per level) and "is that candidate
//! still live?" (the lookup rule: the newest instance decides).  Each
//! rejected candidate advances the search key, so the cost is
//! O((1 + s) · levels · log n) where `s` is the number of stale keys skipped,
//! which cleanup keeps small.

use rayon::prelude::*;

use gpu_sim::AccessPattern;

use crate::key::{original_key, Key, Value, MAX_KEY};
use crate::lsm::GpuLsm;

impl GpuLsm {
    /// For each query key, the smallest valid key strictly greater than it,
    /// with its value; `None` if no such key exists.
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        self.record_order_traffic("lsm_successor", queries.len());
        self.device().timer().time("successor", || {
            queries.par_iter().map(|&q| self.successor_one(q)).collect()
        })
    }

    /// For each query key, the largest valid key strictly smaller than it,
    /// with its value; `None` if no such key exists.
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        self.record_order_traffic("lsm_predecessor", queries.len());
        self.device().timer().time("predecessor", || {
            queries
                .par_iter()
                .map(|&q| self.predecessor_one(q))
                .collect()
        })
    }

    /// Successor of a single key.
    pub fn successor_one(&self, query: Key) -> Option<(Key, Value)> {
        if query > MAX_KEY {
            // No storable key exceeds the 31-bit domain, so nothing is
            // strictly greater than an out-of-domain query (probing with
            // it would wrap `query << 1` and select arbitrary keys).
            return None;
        }
        let mut probe = query;
        loop {
            // Smallest key strictly greater than `probe` in any level.  A
            // level whose max fence key is <= probe cannot contribute a
            // candidate and is skipped without a search.
            let mut candidate: Option<Key> = None;
            for (_, level) in self.levels().iter_occupied() {
                if level.max_key() <= probe {
                    continue;
                }
                let keys = level.keys();
                let idx = level.upper_bound(probe);
                if idx < keys.len() {
                    let k = original_key(keys[idx]);
                    candidate = Some(candidate.map_or(k, |c: Key| c.min(k)));
                }
            }
            let next = candidate?;
            // A placebo (MAX_KEY tombstone) can be the only remaining key.
            if let Some(v) = self.lookup_one(next) {
                return Some((next, v));
            }
            if next == MAX_KEY {
                return None;
            }
            probe = next; // stale key: keep walking upward
        }
    }

    /// Predecessor of a single key.
    pub fn predecessor_one(&self, query: Key) -> Option<(Key, Value)> {
        if query > MAX_KEY {
            // Every storable key is strictly below an out-of-domain query,
            // so MAX_KEY itself is a candidate (the in-domain loop below
            // only ever looks strictly below its probe; shifting the raw
            // query would wrap and miss keys instead).
            if let Some(v) = self.lookup_one(MAX_KEY) {
                return Some((MAX_KEY, v));
            }
            return self.predecessor_one(MAX_KEY);
        }
        let mut probe = query;
        loop {
            // Largest key strictly smaller than `probe` in any level.  A
            // level whose min fence key is >= probe cannot contribute a
            // candidate and is skipped without a search.
            let mut candidate: Option<Key> = None;
            for (_, level) in self.levels().iter_occupied() {
                if level.min_key() >= probe {
                    continue;
                }
                let keys = level.keys();
                let idx = level.lower_bound(probe);
                if idx > 0 {
                    let k = original_key(keys[idx - 1]);
                    candidate = Some(candidate.map_or(k, |c: Key| c.max(k)));
                }
            }
            let prev = candidate?;
            if let Some(v) = self.lookup_one(prev) {
                return Some((prev, v));
            }
            if prev == 0 {
                return None;
            }
            probe = prev; // stale key: keep walking downward
        }
    }

    fn record_order_traffic(&self, kernel: &str, num_queries: usize) {
        self.device().metrics().record_launch(kernel);
        // Static one-round estimate: the walk may skip levels via the
        // min/max fences (fewer probes) or need extra rounds to step over
        // stale keys (more); one fence-narrowed search per level per query
        // is the expected-case middle ground.
        let probes: u64 = self
            .levels()
            .iter_occupied()
            .map(|(_, level)| u64::from(level.search_probe_depth()))
            .sum();
        self.device().metrics().record_scattered_probes(
            kernel,
            2 * probes * num_queries as u64,
            std::mem::size_of::<Key>() as u64,
        );
        self.device().metrics().record_read(
            kernel,
            (num_queries * std::mem::size_of::<Key>()) as u64,
            AccessPattern::Coalesced,
        );
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::batch::UpdateBatch;
    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn successor_and_predecessor_on_simple_set() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(10, 1), (20, 2), (30, 3), (40, 4)]).unwrap();
        assert_eq!(lsm.successor_one(10), Some((20, 2)));
        assert_eq!(lsm.successor_one(15), Some((20, 2)));
        assert_eq!(lsm.successor_one(40), None);
        assert_eq!(lsm.predecessor_one(40), Some((30, 3)));
        assert_eq!(lsm.predecessor_one(35), Some((30, 3)));
        assert_eq!(lsm.predecessor_one(10), None);
        assert_eq!(lsm.successor(&[0, 25]), vec![Some((10, 1)), Some((30, 3))]);
        assert_eq!(lsm.predecessor(&[100, 5]), vec![Some((40, 4)), None]);
    }

    #[test]
    fn successor_skips_deleted_keys() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(10, 1), (20, 2), (30, 3), (40, 4)]).unwrap();
        lsm.delete(&[20, 30]).unwrap();
        assert_eq!(lsm.successor_one(10), Some((40, 4)));
        assert_eq!(lsm.predecessor_one(40), Some((10, 1)));
        assert_eq!(lsm.successor_one(40), None);
    }

    #[test]
    fn successor_sees_latest_value_of_replaced_key() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        lsm.insert(&[(5, 1), (9, 1)]).unwrap();
        lsm.insert(&[(9, 2), (12, 1)]).unwrap();
        assert_eq!(lsm.successor_one(5), Some((9, 2)));
    }

    #[test]
    fn empty_structure_has_no_neighbours() {
        let lsm = GpuLsm::new(device(), 4).unwrap();
        assert_eq!(lsm.successor_one(0), None);
        assert_eq!(lsm.predecessor_one(100), None);
        assert!(lsm.successor(&[]).is_empty());
    }

    #[test]
    fn order_queries_match_btreemap_on_random_workload() {
        let mut rng = StdRng::seed_from_u64(321);
        let b = 32;
        let mut lsm = GpuLsm::new(device(), b).unwrap();
        let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
        for _ in 0..8 {
            let mut batch = UpdateBatch::new();
            let mut used = std::collections::HashSet::new();
            while used.len() < b {
                let key = rng.gen_range(0..400u32);
                if !used.insert(key) {
                    continue;
                }
                if rng.gen_bool(0.3) {
                    batch.delete(key);
                    reference.remove(&key);
                } else {
                    let v = rng.gen();
                    batch.insert(key, v);
                    reference.insert(key, v);
                }
            }
            lsm.update(&batch).unwrap();
        }
        for q in (0..450).step_by(3) {
            let expected_succ = reference.range(q + 1..).next().map(|(&k, &v)| (k, v));
            assert_eq!(lsm.successor_one(q), expected_succ, "successor({q})");
            let expected_pred = reference.range(..q).next_back().map(|(&k, &v)| (k, v));
            assert_eq!(lsm.predecessor_one(q), expected_pred, "predecessor({q})");
        }
        // Cleanup must not change order-query answers.
        let before: Vec<_> = (0..450).map(|q| lsm.successor_one(q)).collect();
        lsm.cleanup();
        let after: Vec<_> = (0..450).map(|q| lsm.successor_one(q)).collect();
        assert_eq!(before, after);
    }
}
