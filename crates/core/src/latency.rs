//! Dependency-free log-bucketed latency recording (HdrHistogram-style).
//!
//! A service carrying mixed traffic lives and dies by its tail latency,
//! which a throughput number cannot show.  [`LatencyHistogram`] records
//! non-negative integer samples (the service layers record nanoseconds)
//! into **log-linear buckets**: the first 2⁶ = 64 values get unit-width
//! buckets, and every subsequent power-of-two octave is split into 32
//! linear sub-buckets, so the relative quantization error is bounded by
//! 1/32 ≈ 3.1 % at any magnitude while the whole `u64` range fits in 1 920
//! fixed buckets.  Recording is O(1) (a shift and two adds), extraction of
//! any quantile is one pass over the buckets, and histograms **merge** by
//! bucket-wise addition — so every client thread records locally without
//! synchronisation and the driver folds the results afterwards.
//!
//! [`LatencySnapshot`] is the compact microsecond-unit summary (count,
//! p50/p99/p999, max) embedded in the service statistics structs, which
//! need `Eq` and small copies rather than the full bucket array.

/// Width in bits of the unit-resolution region: values `0..64` get exact
/// buckets, and each octave above is split into `2^(SUB_BITS-1) = 32`
/// sub-buckets.
const SUB_BITS: u32 = 6;
/// Number of unit-resolution buckets (64).
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Sub-buckets per octave above the unit region (32).
const HALF: u64 = SUB_COUNT / 2;
/// Octaves needed to cover the full `u64` range above the unit region.
const NUM_OCTAVES: u64 = 64 - SUB_BITS as u64;
/// Total bucket count covering every `u64` value exactly once.
pub const NUM_BUCKETS: usize = (SUB_COUNT + NUM_OCTAVES * HALF) as usize;

/// Bucket index of a value (total order preserving: `a <= b` implies
/// `index(a) <= index(b)`).
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        // Highest set bit is at position `msb >= SUB_BITS`; the octave's
        // values span `[2^msb, 2^(msb+1))` in HALF linear sub-buckets of
        // width `2^octave` each.
        let msb = 63 - v.leading_zeros() as u64;
        let octave = msb - SUB_BITS as u64 + 1;
        let offset = (v >> octave) - HALF;
        (SUB_COUNT + (octave - 1) * HALF + offset) as usize
    }
}

/// Largest value mapping to `index` (the inverse of [`bucket_index`];
/// quantiles report this conservative upper edge).
fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_COUNT {
        index
    } else {
        let i = index - SUB_COUNT;
        let octave = i / HALF + 1;
        let offset = i % HALF;
        // The top bucket's exclusive end is 2^64, which wraps to 0; the
        // wrapping subtraction turns it into exactly u64::MAX.
        ((HALF + offset + 1) << octave).wrapping_sub(1)
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// Units are the caller's choice (the service layers use nanoseconds); all
/// quantile answers are in the recorded unit.  Quantiles return the upper
/// edge of the target bucket clamped to the observed maximum, so they
/// over-estimate by at most 1/32 relative and are **exact** when every
/// sample in the tail bucket is equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` equal samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact, not bucketed; 0.0
    /// when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest bucket edge `v`
    /// such that at least `ceil(q · count)` samples are `<= v`, clamped to
    /// the observed min/max.  Returns 0 on an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Fold another histogram into this one (bucket-wise addition).
    /// Merging is associative and commutative, so per-thread histograms
    /// can be combined in any order with identical results.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact microsecond summary of a histogram recorded in
    /// **nanoseconds** (the service layers' unit).
    pub fn snapshot_us(&self) -> LatencySnapshot {
        let us = |ns: u64| ns / 1_000;
        LatencySnapshot {
            count: self.total,
            p50_us: us(self.p50()),
            p99_us: us(self.p99()),
            p999_us: us(self.p999()),
            max_us: us(self.max()),
        }
    }
}

/// A compact, `Eq`-comparable percentile summary in microseconds, embedded
/// in the service statistics structs (see
/// [`crate::ShardedStats::admission_queue_wait`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// Observed maximum, µs.
    pub max_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        // Unit region: identity mapping.
        for v in 0..SUB_COUNT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
        // First octave: [64, 128) in 32 sub-buckets of width 2.
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64);
        assert_eq!(bucket_index(66), 65);
        assert_eq!(bucket_index(127), 95);
        assert_eq!(bucket_high(64), 65);
        assert_eq!(bucket_high(95), 127);
        // Octave starts land on fresh buckets; bucket_high inverts.
        for msb in SUB_BITS..64 {
            let v = 1u64 << msb;
            let i = bucket_index(v);
            assert_eq!(bucket_index(v - 1) + 1, i, "octave start {v}");
            assert!(bucket_high(i) >= v);
            assert!(i == 0 || bucket_high(i - 1) < v);
        }
        // The top bucket ends exactly at u64::MAX.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded_error() {
        let probes: Vec<u64> = (0..1000u64)
            .map(|i| i * 7919)
            .chain((0..63).map(|s| 1u64 << s))
            .chain([u64::MAX, u64::MAX - 1])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]));
        }
        for &v in &probes {
            let hi = bucket_high(bucket_index(v));
            assert!(hi >= v);
            // Conservative edge over-estimates by at most 1/32 relative.
            assert!(hi as f64 <= v as f64 * (1.0 + 1.0 / HALF as f64) + 1.0);
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.snapshot_us(), LatencySnapshot::default());
    }

    #[test]
    fn all_equal_samples_report_exactly() {
        let mut h = LatencyHistogram::new();
        h.record_n(10_000, 1000);
        // Every quantile is clamped to the single observed value.
        assert_eq!(h.p50(), 10_000);
        assert_eq!(h.p99(), 10_000);
        assert_eq!(h.p999(), 10_000);
        assert_eq!(h.min(), 10_000);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.mean(), 10_000.0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(777);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.value_at_quantile(q), 777);
        }
    }

    #[test]
    fn snapshot_converts_to_microseconds() {
        let mut h = LatencyHistogram::new();
        h.record_n(2_000_000, 99); // 2 ms
        h.record(50_000_000); // 50 ms outlier
        let s = h.snapshot_us();
        assert_eq!(s.count, 100);
        // Within one conservative bucket edge (≤ 1/32 relative) of 2 ms.
        assert!(s.p50_us >= 2_000 && s.p50_us <= 2_000 + 2_000 / 32 + 1);
        assert!(s.p99_us >= 2_000);
        assert!((s.max_us as i64 - 50_000).unsigned_abs() < 50_000 / 32 + 1);
    }
}
