//! The [`GpuLsm`] structure: construction, bulk build and the batched
//! insertion / deletion path.
//!
//! Insertion (paper §III-B, Fig. 3): the incoming batch is radix-sorted by
//! its full encoded key (status bit included), then merged with full levels
//! from level 0 upward — comparing *original keys only* and letting the more
//! recent buffer win ties — until an empty level receives the result.  With
//! `r` resident batches this is exactly a binary-counter increment: the
//! occupied levels are the set bits of `r`.
//!
//! Deletion is the insertion of tombstones, so a mixed batch of insertions
//! and deletions costs the same as a pure-insert batch.
//!
//! The carry chain itself lives in [`crate::compaction`], split into a
//! planner (which levels participate, where the output lands, which
//! acceleration structures it needs — all computed before any data moves)
//! and an executor that maintains fences and filters *incrementally*
//! across the merges.

use std::sync::Arc;

use gpu_primitives::radix_sort::sort_pairs;
use gpu_sim::Device;

use crate::arena::Arena;
use crate::batch::UpdateBatch;
use crate::error::{LsmError, Result};
use crate::key::{encode_regular, placebo, EncodedKey, Key, Value, MAX_KEY};
use crate::level::{Level, LevelSet};

/// Lenient env fallback for the arena master switch (`LSM_ARENA`; default
/// on).  The strict, erroring parse of the same knob lives in
/// [`crate::LsmConfig::from_env`]; this per-module fallback follows the
/// repo convention of ignoring unparsable values.
fn arena_enabled_from_env() -> bool {
    match std::env::var("LSM_ARENA") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

/// Lenient env fallback for the arena chunk size in words
/// (`LSM_ARENA_CHUNK`; 0 = the built-in default).
fn arena_chunk_words_from_env() -> usize {
    std::env::var("LSM_ARENA_CHUNK")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// The GPU LSM: a dynamic dictionary with batched updates and parallel
/// queries.
#[derive(Debug, Clone)]
pub struct GpuLsm {
    device: Arc<Device>,
    batch_size: usize,
    pub(crate) num_batches: usize,
    pub(crate) levels: LevelSet,
    /// Lifetime filter hit/skip counters (shared across clones, reported by
    /// [`crate::stats::LsmStats`]).
    pub(crate) filter_activity: Arc<crate::stats::FilterActivity>,
    /// Lifetime carry-merge counters (shared across clones): how often the
    /// write path maintained fences/filters incrementally vs. rebuilt.
    pub(crate) merge_activity: Arc<crate::stats::MergeActivity>,
    /// Lifetime update/lookup operation counters (shared across clones);
    /// feeds the sharded service's hot-shard detection.
    pub(crate) op_activity: Arc<crate::stats::OpActivity>,
    /// Per-instance override of the bulk-lookup dispatch fraction; `None`
    /// falls back to `LSM_BULK_LOOKUP_FRAC` and then the cost model.
    pub(crate) bulk_lookup_frac: Option<f64>,
    /// Per-instance override of the warp-style bulk-get group size; `None`
    /// falls back to `LSM_BULK_GROUP` and then the built-in default.
    pub(crate) bulk_group: Option<usize>,
    /// The slab arena backing carry-chain level storage (`None` = arena
    /// disabled, levels own plain vectors).  Shared across clones of the
    /// handle; cloned levels deep-copy out of the arena.
    pub(crate) arena: Option<Arc<Arena>>,
    /// Reusable batch-encode buffers: [`GpuLsm::update`] encodes into these
    /// and the carry chain hands the consumed buffer back after its first
    /// merge step, so steady-state submits re-encode into the same
    /// allocation instead of a fresh pair of vectors per batch.
    pub(crate) encode_scratch: (Vec<EncodedKey>, Vec<Value>),
}

impl GpuLsm {
    /// Create an empty GPU LSM with batch size `b` on `device`.
    ///
    /// The batch size is fixed for the lifetime of the structure (paper
    /// §III-A rule 1) and trades update against query performance: larger
    /// batches mean fewer occupied levels for the same number of elements.
    pub fn new(device: Arc<Device>, batch_size: usize) -> Result<Self> {
        if batch_size == 0 {
            return Err(LsmError::InvalidBatchSize { batch_size });
        }
        Ok(GpuLsm {
            device,
            batch_size,
            num_batches: 0,
            levels: LevelSet::new(),
            filter_activity: Arc::default(),
            merge_activity: Arc::default(),
            op_activity: Arc::default(),
            bulk_lookup_frac: None,
            bulk_group: None,
            arena: arena_enabled_from_env().then(|| Arena::new(arena_chunk_words_from_env())),
            encode_scratch: (Vec::new(), Vec::new()),
        })
    }

    /// Create an empty GPU LSM configured by an explicit [`crate::LsmConfig`]
    /// instead of the `LSM_*` env fallbacks.  Per-instance knobs
    /// (`bulk_lookup_frac`) apply only to this structure; the process-wide
    /// knobs the config carries (`bloom_bits`, `par_cutoff`) are installed
    /// globally — see [`crate::LsmConfig::apply_process_overrides`].
    pub fn with_config(
        device: Arc<Device>,
        batch_size: usize,
        config: &crate::config::LsmConfig,
    ) -> Result<Self> {
        config.apply_process_overrides();
        let mut lsm = GpuLsm::new(device, batch_size)?;
        lsm.apply_instance_config(config);
        Ok(lsm)
    }

    /// Apply a config's per-instance knobs to this structure, overriding
    /// the env-derived defaults `GpuLsm::new` installed.  Also used when a
    /// sharded LSM rebuilds a shard (split/merge/rebalance), so replacement
    /// shards keep the parent table's configuration instead of silently
    /// reverting to the env knobs.
    pub(crate) fn apply_instance_config(&mut self, config: &crate::config::LsmConfig) {
        self.bulk_lookup_frac = config.bulk_lookup_frac;
        self.bulk_group = config.bulk_group;
        match (config.arena, config.arena_chunk_words) {
            // Explicitly disabled: drop the env-derived arena.
            (Some(false), _) => self.arena = None,
            // Explicitly enabled and/or explicitly sized: build fresh so
            // the configured chunk size wins over the env fallback.
            (Some(true), chunk) => self.arena = Some(Arena::new(chunk.unwrap_or(0))),
            (None, Some(chunk)) => {
                if self.arena.is_some() {
                    self.arena = Some(Arena::new(chunk));
                }
            }
            (None, None) => {}
        }
    }

    /// Bulk-build an LSM from an arbitrary set of key–value pairs
    /// (paper §V-B "bulk build"): one device-wide radix sort, padding with
    /// placebo elements up to a multiple of `b`, then slicing the sorted
    /// array into levels according to the binary representation of the
    /// number of batches.
    pub fn bulk_build(
        device: Arc<Device>,
        batch_size: usize,
        pairs: &[(Key, Value)],
    ) -> Result<Self> {
        if batch_size == 0 {
            return Err(LsmError::InvalidBatchSize { batch_size });
        }
        if let Some(&(k, _)) = pairs.iter().find(|(k, _)| *k > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: k });
        }
        let mut lsm = GpuLsm::new(device, batch_size)?;
        if pairs.is_empty() {
            return Ok(lsm);
        }

        let mut keys: Vec<EncodedKey> = pairs.iter().map(|&(k, _)| encode_regular(k)).collect();
        let mut values: Vec<Value> = pairs.iter().map(|&(_, v)| v).collect();
        sort_pairs(&lsm.device, &mut keys, &mut values);

        // Pad to a multiple of b with placebos (max-key tombstones); they
        // sort to the very end by construction, so appending keeps the array
        // sorted by original key.
        let padded_len = pairs.len().div_ceil(batch_size) * batch_size;
        keys.resize(padded_len, placebo());
        values.resize(padded_len, 0);

        lsm.num_batches = padded_len / batch_size;
        lsm.distribute_sorted(keys, values);
        Ok(lsm)
    }

    /// Slice an already-sorted array into levels following the set bits of
    /// `self.num_batches`, smallest level first (smaller keys end up in
    /// smaller levels, as in the paper's cleanup).
    ///
    /// Levels placed here come from a bulk rebuild and are long-lived, so
    /// they get the full query-acceleration treatment (fences + filters,
    /// see [`Level::from_sorted`]).
    fn distribute_sorted(&mut self, keys: Vec<EncodedKey>, values: Vec<Value>) {
        debug_assert_eq!(keys.len(), self.num_batches * self.batch_size);
        self.levels.clear();
        let mut offset = 0usize;
        for bit in 0..usize::BITS {
            if self.num_batches & (1 << bit) != 0 {
                let len = self.batch_size << bit;
                let level_keys = keys[offset..offset + len].to_vec();
                let level_values = values[offset..offset + len].to_vec();
                let level = Level::from_sorted(level_keys, level_values);
                self.record_accel_build(&level);
                self.levels.place(bit as usize, level);
                offset += len;
            }
        }
        debug_assert_eq!(offset, keys.len());
    }

    /// Account the one-time construction traffic of a level's
    /// query-acceleration structures: one coalesced read pass over the
    /// level's keys and coalesced writes of the filter + fence arrays.
    pub(crate) fn record_accel_build(&self, level: &Level) {
        let (filter_bytes, fence_bytes) = level.accel_bytes();
        if filter_bytes + fence_bytes == 0 {
            return;
        }
        let kernel = "lsm_accel_build";
        let metrics = self.device.metrics();
        metrics.record_launch(kernel);
        metrics.record_read(
            kernel,
            (level.len() * std::mem::size_of::<EncodedKey>()) as u64,
            gpu_sim::AccessPattern::Coalesced,
        );
        metrics.record_write(
            kernel,
            (filter_bytes + fence_bytes) as u64,
            gpu_sim::AccessPattern::Coalesced,
        );
    }

    /// Apply a mixed batch of insertions and deletions (at most `b`
    /// operations; shorter batches are padded, see [`UpdateBatch`]).
    pub fn update(&mut self, batch: &UpdateBatch) -> Result<()> {
        // Encode into the reusable scratch pair; the carry chain returns
        // the buffer after its first merge step consumes it, so repeated
        // updates stop allocating here once warm.
        let (mut keys, mut values) = std::mem::take(&mut self.encode_scratch);
        batch.encode_padded_into(self.batch_size, &mut keys, &mut values)?;
        self.op_activity.record_updates(batch.len() as u64);
        self.sort_and_push(keys, values, None);
        Ok(())
    }

    /// Sort an encoded batch and push it down the carry chain.
    ///
    /// The sort is by the full encoded key, status bit included (Fig. 3
    /// line 9): tombstones precede same-key insertions from the same
    /// batch, implementing semantics rule 6.  `known_sorted` carries a
    /// caller's sortedness knowledge (the insert path probes during
    /// encoding); when `None`, a cheap monotonicity probe runs here.
    /// Either way a pre-sorted batch (sorted bulk loads, replayed runs,
    /// the duplicate-padded tail of a short batch) skips the sort outright
    /// — a stable sort of already-sorted data is the identity.
    fn sort_and_push(
        &mut self,
        mut keys: Vec<EncodedKey>,
        mut values: Vec<Value>,
        known_sorted: Option<bool>,
    ) {
        self.device.timer().time("insert::sort_batch", || {
            let sorted = known_sorted.unwrap_or_else(|| keys.windows(2).all(|w| w[0] <= w[1]));
            if !sorted {
                sort_pairs(&self.device, &mut keys, &mut values);
            }
        });
        self.push_sorted_buffer(keys, values);
    }

    /// Insert key–value pairs (at most `b`).
    ///
    /// Encodes directly from the pair slice (no intermediate op vector) —
    /// the hot path for small-batch workloads.
    pub fn insert(&mut self, pairs: &[(Key, Value)]) -> Result<()> {
        let (keys, values, sorted) = UpdateBatch::encode_pairs_padded(pairs, self.batch_size)?;
        self.op_activity.record_updates(pairs.len() as u64);
        // The sortedness probe rode along with the encode loop, so pass it
        // as a known fact instead of re-probing.
        self.sort_and_push(keys, values, Some(sorted));
        Ok(())
    }

    /// Delete keys (at most `b`) by inserting tombstones.
    pub fn delete(&mut self, keys: &[Key]) -> Result<()> {
        self.update(&UpdateBatch::from_deletions(keys))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The fixed batch size `b`.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of resident batches `r` (including stale elements).
    pub fn num_batches(&self) -> usize {
        self.num_batches
    }

    /// Total number of resident elements (`r · b`), including stale
    /// elements, tombstones and placebos.
    pub fn num_resident_elements(&self) -> usize {
        self.num_batches * self.batch_size
    }

    /// Whether the structure holds no elements at all.
    pub fn is_empty(&self) -> bool {
        self.num_batches == 0
    }

    /// Number of occupied levels (the popcount of `r`).
    pub fn num_occupied_levels(&self) -> usize {
        self.levels.num_occupied()
    }

    /// The modelled device this LSM runs on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Read-only access to the level set (used by queries, validation and
    /// the differential test suites inspecting per-level acceleration
    /// structures).
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Replace the entire contents from an already-sorted, already-padded
    /// array (used by cleanup).
    pub(crate) fn replace_contents(&mut self, keys: Vec<EncodedKey>, values: Vec<Value>) {
        debug_assert_eq!(keys.len() % self.batch_size, 0);
        self.num_batches = keys.len() / self.batch_size;
        if self.num_batches == 0 {
            self.levels.clear();
        } else {
            self.distribute_sorted(keys, values);
        }
    }

    /// Reassemble an LSM from persisted level dumps (crash recovery): each
    /// `(index, encoded keys, values)` triple becomes level `index`
    /// verbatim, so the recovered structure is element-identical to the
    /// snapshotted one.  Acceleration structures (filters, fences) are
    /// derived data and rebuilt; `num_batches` follows from the occupied
    /// level indices (level `i` holds `b·2^i` elements, §III-A).
    pub(crate) fn from_levels(
        device: Arc<Device>,
        batch_size: usize,
        levels: Vec<(usize, Vec<EncodedKey>, Vec<Value>)>,
    ) -> Result<Self> {
        let mut lsm = GpuLsm::new(device, batch_size)?;
        let mut num_batches = 0usize;
        for (i, keys, values) in levels {
            let expected = batch_size
                .checked_shl(i as u32)
                .filter(|&len| len == keys.len() && len == values.len());
            if expected.is_none() {
                return Err(LsmError::Durability {
                    context: format!(
                        "level {i} run holds {} keys / {} values, expected {} for b = {batch_size}",
                        keys.len(),
                        values.len(),
                        batch_size << i
                    ),
                });
            }
            if lsm.levels.get(i).is_some() {
                return Err(LsmError::Durability {
                    context: format!("level {i} appears twice in the snapshot"),
                });
            }
            let level = Level::from_sorted(keys, values);
            lsm.record_accel_build(&level);
            lsm.levels.place(i, level);
            num_batches += 1 << i;
        }
        lsm.num_batches = num_batches;
        Ok(lsm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(gpu_sim::DeviceConfig::small()))
    }

    #[test]
    fn new_rejects_zero_batch_size() {
        assert_eq!(
            GpuLsm::new(device(), 0).unwrap_err(),
            LsmError::InvalidBatchSize { batch_size: 0 }
        );
    }

    #[test]
    fn empty_lsm_has_no_levels() {
        let lsm = GpuLsm::new(device(), 16).unwrap();
        assert!(lsm.is_empty());
        assert_eq!(lsm.num_resident_elements(), 0);
        assert_eq!(lsm.num_occupied_levels(), 0);
    }

    #[test]
    fn occupancy_follows_binary_counter() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        for batch_idx in 0..7u32 {
            let pairs: Vec<(u32, u32)> = (0..4).map(|i| (batch_idx * 4 + i, i)).collect();
            lsm.insert(&pairs).unwrap();
            let r = batch_idx as usize + 1;
            assert_eq!(lsm.num_batches(), r);
            assert_eq!(lsm.num_occupied_levels(), r.count_ones() as usize);
            // Level i occupied iff bit i of r is set, and holds b·2^i elements.
            for bit in 0..4 {
                let expected = r & (1 << bit) != 0;
                assert_eq!(lsm.levels().is_full(bit), expected, "r = {r}, level {bit}");
                if expected {
                    assert_eq!(lsm.levels().get(bit).unwrap().len(), 4 << bit);
                }
            }
        }
    }

    #[test]
    fn short_batch_is_padded_to_full_size() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        lsm.insert(&[(1, 10), (2, 20)]).unwrap();
        assert_eq!(lsm.num_resident_elements(), 8);
        assert_eq!(lsm.levels().get(0).unwrap().len(), 8);
    }

    #[test]
    fn levels_stay_sorted_by_original_key() {
        let mut lsm = GpuLsm::new(device(), 32).unwrap();
        for b in 0..5u32 {
            let pairs: Vec<(u32, u32)> = (0..32).map(|i| ((i * 37 + b * 13) % 1000, i)).collect();
            lsm.insert(&pairs).unwrap();
        }
        for (_, level) in lsm.levels().iter_occupied() {
            let keys = level.keys();
            assert!(keys.windows(2).all(|w| (w[0] >> 1) <= (w[1] >> 1)));
        }
    }

    #[test]
    fn bulk_build_matches_incremental_occupancy() {
        let pairs: Vec<(u32, u32)> = (0..100).map(|k| (k, k + 1)).collect();
        let lsm = GpuLsm::bulk_build(device(), 16, &pairs).unwrap();
        // 100 elements pad to 112 = 7 batches of 16: levels 0, 1, 2 occupied.
        assert_eq!(lsm.num_batches(), 7);
        assert_eq!(lsm.num_occupied_levels(), 3);
        assert_eq!(lsm.num_resident_elements(), 112);
    }

    #[test]
    fn bulk_build_empty_and_invalid() {
        let lsm = GpuLsm::bulk_build(device(), 16, &[]).unwrap();
        assert!(lsm.is_empty());
        assert!(GpuLsm::bulk_build(device(), 0, &[(1, 1)]).is_err());
        assert_eq!(
            GpuLsm::bulk_build(device(), 4, &[(MAX_KEY + 1, 0)]).unwrap_err(),
            LsmError::KeyOutOfRange { key: MAX_KEY + 1 }
        );
    }

    #[test]
    fn oversized_batch_is_rejected_without_mutation() {
        let mut lsm = GpuLsm::new(device(), 2).unwrap();
        let err = lsm.insert(&[(1, 1), (2, 2), (3, 3)]).unwrap_err();
        assert!(matches!(err, LsmError::BatchTooLarge { .. }));
        assert!(lsm.is_empty());
    }

    #[test]
    fn mixed_update_batch_counts_as_one_batch() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(1, 10).delete(2).insert(3, 30).delete(4);
        lsm.update(&batch).unwrap();
        assert_eq!(lsm.num_batches(), 1);
        assert_eq!(lsm.num_resident_elements(), 4);
    }
}
