//! A thread-safe wrapper enforcing the paper's phase semantics.
//!
//! The GPU LSM's batch semantics (§III-A rule 2) require that "updates and
//! queries are performed in separate phases": queries are read-only and may
//! run concurrently with each other, while an update batch must be exclusive.
//! [`ConcurrentGpuLsm`] encodes exactly that with a reader–writer lock:
//! any number of host threads can issue query batches simultaneously (each
//! query batch is itself internally parallel), and update/cleanup batches
//! serialise against everything else — the same guarantee the GPU gets from
//! launching update and query kernels in separate phases.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::batch::UpdateBatch;
use crate::cleanup::CleanupReport;
use crate::error::Result;
use crate::key::{Key, Value};
use crate::lsm::GpuLsm;
use crate::range::RangeResult;
use crate::stats::LsmStats;

/// A shareable, thread-safe GPU LSM handle.
///
/// Cloning the handle is cheap (it is an `Arc`); all clones refer to the
/// same underlying structure.
#[derive(Debug, Clone)]
pub struct ConcurrentGpuLsm {
    inner: Arc<RwLock<GpuLsm>>,
}

impl ConcurrentGpuLsm {
    /// Wrap an existing LSM.
    pub fn new(lsm: GpuLsm) -> Self {
        ConcurrentGpuLsm {
            inner: Arc::new(RwLock::new(lsm)),
        }
    }

    /// Create an empty LSM with the given device and batch size.
    pub fn create(device: Arc<gpu_sim::Device>, batch_size: usize) -> Result<Self> {
        Ok(Self::new(GpuLsm::new(device, batch_size)?))
    }

    /// Apply a mixed update batch (exclusive phase).
    pub fn update(&self, batch: &UpdateBatch) -> Result<()> {
        self.inner.write().update(batch)
    }

    /// Insert key–value pairs (exclusive phase).
    pub fn insert(&self, pairs: &[(Key, Value)]) -> Result<()> {
        self.inner.write().insert(pairs)
    }

    /// Delete keys (exclusive phase).
    pub fn delete(&self, keys: &[Key]) -> Result<()> {
        self.inner.write().delete(keys)
    }

    /// Remove stale elements and rebuild the levels (exclusive phase).
    pub fn cleanup(&self) -> CleanupReport {
        self.inner.write().cleanup()
    }

    /// Bulk lookups (shared phase: may run concurrently with other queries).
    pub fn lookup(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.inner.read().lookup(queries)
    }

    /// Warp-style bulk lookups (shared phase) — see [`GpuLsm::bulk_get`].
    pub fn bulk_get(&self, queries: &[Key]) -> Vec<Option<Value>> {
        self.inner.read().bulk_get(queries)
    }

    /// Bulk count queries (shared phase).
    pub fn count(&self, queries: &[(Key, Key)]) -> Vec<u32> {
        self.inner.read().count(queries)
    }

    /// Bulk range queries (shared phase).
    pub fn range(&self, queries: &[(Key, Key)]) -> RangeResult {
        self.inner.read().range(queries)
    }

    /// Bulk successor queries (shared phase).
    pub fn successor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        self.inner.read().successor(queries)
    }

    /// Bulk predecessor queries (shared phase).
    pub fn predecessor(&self, queries: &[Key]) -> Vec<Option<(Key, Value)>> {
        self.inner.read().predecessor(queries)
    }

    /// Structure statistics (shared phase).
    pub fn stats(&self) -> LsmStats {
        self.inner.read().stats()
    }

    /// Run an arbitrary read-only closure against the structure (shared
    /// phase) — an escape hatch for queries not covered by the wrapper.
    pub fn with_read<R>(&self, f: impl FnOnce(&GpuLsm) -> R) -> R {
        f(&self.inner.read())
    }

    /// Consume the wrapper and return the inner LSM (fails if other handles
    /// still exist).
    pub fn try_into_inner(self) -> std::result::Result<GpuLsm, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner()),
            Err(arc) => Err(ConcurrentGpuLsm { inner: arc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceConfig};

    fn handle(batch_size: usize) -> ConcurrentGpuLsm {
        let device = Arc::new(Device::new(DeviceConfig::small()));
        ConcurrentGpuLsm::create(device, batch_size).unwrap()
    }

    #[test]
    fn basic_operations_through_the_wrapper() {
        let lsm = handle(8);
        lsm.insert(&(0..8u32).map(|k| (k, k * 2)).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(lsm.lookup(&[3]), vec![Some(6)]);
        assert_eq!(lsm.count(&[(0, 7)]), vec![8]);
        assert_eq!(lsm.range(&[(2, 4)]).query(0).0, &[2, 3, 4]);
        assert_eq!(lsm.successor(&[3]), vec![Some((4, 8))]);
        assert_eq!(lsm.predecessor(&[3]), vec![Some((2, 4))]);
        lsm.delete(&[3]).unwrap();
        assert_eq!(lsm.lookup(&[3]), vec![None]);
        let report = lsm.cleanup();
        assert_eq!(report.valid_elements, 7);
        assert_eq!(lsm.stats().valid_elements, 7);
        assert_eq!(lsm.with_read(|l| l.num_occupied_levels()), 1);
    }

    #[test]
    fn concurrent_readers_with_interleaved_writer() {
        let lsm = handle(64);
        lsm.insert(&(0..64u32).map(|k| (k, k)).collect::<Vec<_>>())
            .unwrap();

        let mut readers = Vec::new();
        for t in 0..4 {
            let lsm = lsm.clone();
            readers.push(std::thread::spawn(move || {
                let queries: Vec<u32> = (0..64).collect();
                for _ in 0..50 {
                    let results = lsm.lookup(&queries);
                    // Key 0 is never touched by the writer: always visible.
                    assert_eq!(results[0], Some(0), "reader {t}");
                    // Counts never exceed the full key range.
                    assert!(lsm.count(&[(0, 200)])[0] as usize <= 200);
                }
            }));
        }
        let writer = {
            let lsm = lsm.clone();
            std::thread::spawn(move || {
                for round in 1..10u32 {
                    let pairs: Vec<(u32, u32)> = (64..128).map(|k| (k, round)).collect();
                    lsm.insert(&pairs).unwrap();
                    if round % 3 == 0 {
                        lsm.cleanup();
                    }
                }
            })
        };
        for r in readers {
            r.join().unwrap();
        }
        writer.join().unwrap();
        // Final state is consistent.
        assert_eq!(lsm.lookup(&[100]), vec![Some(9)]);
        assert_eq!(lsm.count(&[(0, 63)]), vec![64]);
    }

    #[test]
    fn try_into_inner_requires_unique_handle() {
        let lsm = handle(4);
        let clone = lsm.clone();
        let back = lsm.try_into_inner();
        assert!(back.is_err());
        drop(clone);
        let lsm = back.unwrap_err();
        assert!(lsm.try_into_inner().is_ok());
    }
}
