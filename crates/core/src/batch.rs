//! Update batches: mixed insertions and deletions presented to the LSM as
//! one unit of size at most `b`.
//!
//! The paper's batch semantics (§III-A) are implemented here and in the
//! insertion path:
//!
//! * rule 3 — across batches the most recent insertion of a key wins;
//! * rule 4 — within a batch, one of several same-key insertions is chosen
//!   (deterministically, the earliest pushed, because the radix sort is
//!   stable and lookups take the first match);
//! * rule 5 — deleting a key tombstones every earlier instance;
//! * rule 6 — a key inserted and deleted in the same batch is deleted,
//!   because the tombstone's zero status bit sorts it before the same-key
//!   regular element.
//!
//! A batch smaller than `b` is padded by duplicating its last element
//! (paper §IV-A), so exactly one of the duplicates stays visible.

use crate::error::{LsmError, Result};
use crate::key::{encode_regular, encode_tombstone, EncodedKey, Key, Value, MAX_KEY};

/// A single update operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert (or replace) `key` with `value`.
    Insert(Key, Value),
    /// Delete `key` (tombstone).
    Delete(Key),
}

impl Op {
    /// The logical key this operation refers to.
    pub fn key(&self) -> Key {
        match self {
            Op::Insert(k, _) => *k,
            Op::Delete(k) => *k,
        }
    }

    /// Encode this operation as an (encoded key, value) pair.
    pub fn encode(&self) -> (EncodedKey, Value) {
        match self {
            Op::Insert(k, v) => (encode_regular(*k), *v),
            Op::Delete(k) => (encode_tombstone(*k), 0),
        }
    }
}

/// A mixed batch of insertions and deletions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    ops: Vec<Op>,
}

impl UpdateBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a batch with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        UpdateBatch {
            ops: Vec::with_capacity(capacity),
        }
    }

    /// Queue an insertion.
    pub fn insert(&mut self, key: Key, value: Value) -> &mut Self {
        self.ops.push(Op::Insert(key, value));
        self
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: Key) -> &mut Self {
        self.ops.push(Op::Delete(key));
        self
    }

    /// Queue an arbitrary operation.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Build a batch of insertions from key–value pairs.
    pub fn from_pairs(pairs: &[(Key, Value)]) -> Self {
        UpdateBatch {
            ops: pairs.iter().map(|&(k, v)| Op::Insert(k, v)).collect(),
        }
    }

    /// Build a batch of deletions from keys.
    pub fn from_deletions(keys: &[Key]) -> Self {
        UpdateBatch {
            ops: keys.iter().map(|&k| Op::Delete(k)).collect(),
        }
    }

    /// Validate the batch against the LSM's fixed batch size and key domain,
    /// then encode it into `(encoded_keys, values)` arrays of exactly
    /// `batch_size` elements, padding with duplicates of the last operation.
    pub fn encode_padded(&self, batch_size: usize) -> Result<(Vec<EncodedKey>, Vec<Value>)> {
        let mut keys = Vec::new();
        let mut values = Vec::new();
        self.encode_padded_into(batch_size, &mut keys, &mut values)?;
        Ok((keys, values))
    }

    /// [`UpdateBatch::encode_padded`] into caller-provided buffers: the
    /// vectors are cleared and refilled, so a submit loop that threads the
    /// same pair of scratch vectors through every batch encodes with zero
    /// steady-state heap allocations.  On error the buffers are left
    /// cleared.
    pub fn encode_padded_into(
        &self,
        batch_size: usize,
        keys: &mut Vec<EncodedKey>,
        values: &mut Vec<Value>,
    ) -> Result<()> {
        keys.clear();
        values.clear();
        if self.ops.is_empty() {
            return Err(LsmError::EmptyBatch);
        }
        if self.ops.len() > batch_size {
            return Err(LsmError::BatchTooLarge {
                supplied: self.ops.len(),
                batch_size,
            });
        }
        if let Some(op) = self.ops.iter().find(|op| op.key() > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: op.key() });
        }

        keys.reserve(batch_size);
        values.reserve(batch_size);
        for op in &self.ops {
            let (k, v) = op.encode();
            keys.push(k);
            values.push(v);
        }
        // Pad by duplicating the last element (paper §IV-A): duplicates of a
        // regular element are stale copies behind the visible one; duplicates
        // of a tombstone are redundant tombstones.  Either way queries are
        // unaffected.
        let (last_k, last_v) = (*keys.last().unwrap(), *values.last().unwrap());
        keys.resize(batch_size, last_k);
        values.resize(batch_size, last_v);
        Ok(())
    }

    /// Insert-only fast path: validate and encode key–value pairs straight
    /// into `(encoded_keys, values)` arrays without materializing an [`Op`]
    /// vector first.  Semantically identical to
    /// `UpdateBatch::from_pairs(pairs).encode_padded(batch_size)`, minus
    /// one allocation and pass — measurable on small hot batches.
    ///
    /// The returned flag is `true` when the encoded keys came out already
    /// non-decreasing (sorted bulk loads, replayed runs); it is computed
    /// inside the encode loop, where the comparison is free, so the caller
    /// can skip its batch sort without a second pass over the keys.
    pub fn encode_pairs_padded(
        pairs: &[(Key, Value)],
        batch_size: usize,
    ) -> Result<(Vec<EncodedKey>, Vec<Value>, bool)> {
        if pairs.is_empty() {
            return Err(LsmError::EmptyBatch);
        }
        if pairs.len() > batch_size {
            return Err(LsmError::BatchTooLarge {
                supplied: pairs.len(),
                batch_size,
            });
        }
        if let Some(&(k, _)) = pairs.iter().find(|&&(k, _)| k > MAX_KEY) {
            return Err(LsmError::KeyOutOfRange { key: k });
        }
        let mut keys = Vec::with_capacity(batch_size);
        let mut values = Vec::with_capacity(batch_size);
        let mut sorted = true;
        let mut prev = 0u32;
        for &(k, v) in pairs {
            let enc = encode_regular(k);
            sorted &= prev <= enc;
            prev = enc;
            keys.push(enc);
            values.push(v);
        }
        // Padding duplicates the last element, which keeps a sorted batch
        // sorted.
        let (last_k, last_v) = (*keys.last().unwrap(), *values.last().unwrap());
        keys.resize(batch_size, last_k);
        values.resize(batch_size, last_v);
        Ok((keys, values, sorted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{is_regular, is_tombstone, original_key};

    #[test]
    fn builder_accumulates_ops() {
        let mut batch = UpdateBatch::new();
        batch.insert(1, 10).delete(2).insert(3, 30);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.ops()[1], Op::Delete(2));
        assert!(!batch.is_empty());
    }

    #[test]
    fn from_pairs_and_deletions() {
        let b = UpdateBatch::from_pairs(&[(1, 10), (2, 20)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.ops()[0], Op::Insert(1, 10));
        let d = UpdateBatch::from_deletions(&[7, 8]);
        assert_eq!(d.ops()[1], Op::Delete(8));
    }

    #[test]
    fn encode_padded_pads_with_last_element() {
        let mut batch = UpdateBatch::new();
        batch.insert(5, 50).insert(6, 60);
        let (keys, values) = batch.encode_padded(4).unwrap();
        assert_eq!(keys.len(), 4);
        assert_eq!(values.len(), 4);
        assert_eq!(original_key(keys[2]), 6);
        assert_eq!(original_key(keys[3]), 6);
        assert_eq!(values[3], 60);
    }

    #[test]
    fn encode_marks_tombstones() {
        let mut batch = UpdateBatch::new();
        batch.insert(1, 10).delete(2);
        let (keys, _) = batch.encode_padded(2).unwrap();
        assert!(is_regular(keys[0]));
        assert!(is_tombstone(keys[1]));
    }

    #[test]
    fn oversized_batch_rejected() {
        let batch = UpdateBatch::from_pairs(&[(1, 1), (2, 2), (3, 3)]);
        assert_eq!(
            batch.encode_padded(2),
            Err(LsmError::BatchTooLarge {
                supplied: 3,
                batch_size: 2
            })
        );
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(
            UpdateBatch::new().encode_padded(4),
            Err(LsmError::EmptyBatch)
        );
    }

    #[test]
    fn out_of_range_key_rejected() {
        let batch = UpdateBatch::from_pairs(&[(MAX_KEY + 1, 0)]);
        assert_eq!(
            batch.encode_padded(4),
            Err(LsmError::KeyOutOfRange { key: MAX_KEY + 1 })
        );
    }

    #[test]
    fn op_key_and_encode() {
        assert_eq!(Op::Insert(3, 4).key(), 3);
        assert_eq!(Op::Delete(9).key(), 9);
        let (k, v) = Op::Insert(3, 4).encode();
        assert!(is_regular(k));
        assert_eq!((original_key(k), v), (3, 4));
        let (k, _) = Op::Delete(9).encode();
        assert!(is_tombstone(k));
    }
}
