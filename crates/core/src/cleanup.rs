//! The cleanup operation: remove every stale element (tombstones, deleted
//! elements and replaced duplicates) and rebuild the level structure.
//!
//! Following §IV-E, cleanup proceeds in five bulk steps:
//!
//! 1. **Iterative merge** of all occupied levels from the smallest (most
//!    recent) to the largest, comparing original keys only and letting the
//!    smaller (newer) side win ties, so temporal order within each key is
//!    preserved.
//! 2. **Stale marking** — in the merged array the first instance of each key
//!    is the most recent; it is valid iff it is a regular element.  Every
//!    other instance, and every tombstone, has its status bit overwritten to
//!    "stale".
//! 3. **Compaction** with a two-bucket multisplit on the (re-written) status
//!    bit, collecting all valid elements at the front while preserving their
//!    key order.
//! 4. **Placebo padding** — enough max-key tombstones are appended to make
//!    the element count a multiple of `b` again.
//! 5. **Redistribution** — the compacted, sorted array is sliced back into
//!    levels according to the binary representation of the new batch count
//!    (smaller keys end up in smaller levels).

use gpu_primitives::merge::merge_pairs_by;
use gpu_primitives::multisplit::multisplit_pairs_in_place;
use gpu_sim::AccessPattern;
use rayon::prelude::*;

use crate::key::{is_regular, key_less, placebo, EncodedKey, Value};
use crate::lsm::GpuLsm;

/// Summary of what a cleanup pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanupReport {
    /// Elements resident before cleanup (including stale and placebos).
    pub elements_before: usize,
    /// Valid elements kept.
    pub valid_elements: usize,
    /// Stale elements removed (tombstones, deleted, replaced, old placebos).
    pub removed_elements: usize,
    /// Placebo elements added to pad to a multiple of `b`.
    pub placebos_added: usize,
    /// Occupied levels before cleanup.
    pub levels_before: usize,
    /// Occupied levels after cleanup.
    pub levels_after: usize,
}

impl GpuLsm {
    /// Remove all stale elements and rebuild the level structure.
    /// Returns a report of how much was removed.
    pub fn cleanup(&mut self) -> CleanupReport {
        let elements_before = self.num_resident_elements();
        let levels_before = self.num_occupied_levels();
        if elements_before == 0 {
            return CleanupReport {
                elements_before: 0,
                valid_elements: 0,
                removed_elements: 0,
                placebos_added: 0,
                levels_before: 0,
                levels_after: 0,
            };
        }
        let kernel = "lsm_cleanup";
        self.device().metrics().record_launch(kernel);

        // Step 1: iterative merge, smallest level first so the newer side is
        // always the first merge argument (tie priority).
        let occupied = self.levels.drain_occupied();
        let mut merged_keys: Vec<EncodedKey> = Vec::new();
        let mut merged_values: Vec<Value> = Vec::new();
        for (_, level) in occupied {
            let (lk, lv) = level.into_parts();
            if merged_keys.is_empty() {
                merged_keys = lk;
                merged_values = lv;
            } else {
                let (k, v) = self.device().timer().time("cleanup::merge", || {
                    merge_pairs_by(
                        self.device(),
                        &merged_keys,
                        &merged_values,
                        &lk,
                        &lv,
                        key_less,
                    )
                });
                merged_keys = k;
                merged_values = v;
            }
        }

        // Step 2: overwrite status bits so that exactly the valid elements
        // (newest instance of a key, and regular) keep a set bit.
        let n = merged_keys.len();
        self.device()
            .metrics()
            .record_read(kernel, (n * 8) as u64, AccessPattern::Coalesced);
        self.device()
            .metrics()
            .record_write(kernel, (n * 4) as u64, AccessPattern::Coalesced);
        let valid_flags: Vec<bool> = (0..n)
            .into_par_iter()
            .map(|i| {
                let key = merged_keys[i] >> 1;
                let newest_of_key = i == 0 || (merged_keys[i - 1] >> 1) != key;
                newest_of_key && is_regular(merged_keys[i])
            })
            .collect();
        merged_keys
            .par_iter_mut()
            .zip(valid_flags.par_iter())
            .for_each(|(k, &valid)| {
                *k = if valid { *k | 1 } else { *k & !1 };
            });

        // Step 3: two-bucket multisplit on the rewritten status bit.
        let valid_count = self.device().timer().time("cleanup::multisplit", || {
            multisplit_pairs_in_place(self.device(), &mut merged_keys, &mut merged_values, |k| {
                k & 1 == 1
            })
        });
        merged_keys.truncate(valid_count);
        merged_values.truncate(valid_count);

        // Step 4: pad with placebos to a multiple of b.
        let padded_len = valid_count.div_ceil(self.batch_size()) * self.batch_size();
        let placebos_added = padded_len - valid_count;
        merged_keys.resize(padded_len, placebo());
        merged_values.resize(padded_len, 0);

        // Step 5: redistribute into levels for the new batch count.
        self.replace_contents(merged_keys, merged_values);

        CleanupReport {
            elements_before,
            valid_elements: valid_count,
            removed_elements: elements_before - valid_count,
            placebos_added,
            levels_before,
            levels_after: self.num_occupied_levels(),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpu_sim::{Device, DeviceConfig};

    use crate::lsm::GpuLsm;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::small()))
    }

    #[test]
    fn cleanup_on_empty_lsm_is_a_noop() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        let report = lsm.cleanup();
        assert_eq!(report.elements_before, 0);
        assert_eq!(report.valid_elements, 0);
        assert!(lsm.is_empty());
    }

    #[test]
    fn cleanup_removes_tombstones_and_duplicates() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 10), (2, 20), (3, 30), (4, 40)]).unwrap();
        lsm.insert(&[(2, 21), (5, 50), (6, 60), (7, 70)]).unwrap();
        lsm.delete(&[3, 5, 6, 7]).unwrap();
        // Valid keys: 1, 2(=21), 4.
        let before_elements = lsm.num_resident_elements();
        let report = lsm.cleanup();
        assert_eq!(report.elements_before, before_elements);
        assert_eq!(report.valid_elements, 3);
        assert_eq!(report.placebos_added, 1);
        assert_eq!(lsm.num_resident_elements(), 4);
        assert_eq!(lsm.num_batches(), 1);
        // Queries still produce the same answers.
        assert_eq!(
            lsm.lookup(&[1, 2, 3, 4, 5, 6, 7]),
            vec![Some(10), Some(21), None, Some(40), None, None, None]
        );
        assert_eq!(lsm.count(&[(0, 100)]), vec![3]);
    }

    #[test]
    fn cleanup_preserves_query_answers_on_random_workload() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let b = 64usize;
        let mut lsm = GpuLsm::new(device(), b).unwrap();
        let mut reference = std::collections::BTreeMap::new();
        for _ in 0..9 {
            let mut batch = crate::batch::UpdateBatch::new();
            // Keys are distinct within a batch so the sequential reference
            // map and the batch semantics (rules 4 and 6) agree.
            let mut used = std::collections::HashSet::new();
            while used.len() < b {
                let key = rng.gen_range(0..500u32);
                if !used.insert(key) {
                    continue;
                }
                if rng.gen_bool(0.3) {
                    batch.delete(key);
                    reference.remove(&key);
                } else {
                    let value = rng.gen::<u32>();
                    batch.insert(key, value);
                    reference.insert(key, value);
                }
            }
            lsm.update(&batch).unwrap();
        }
        let queries: Vec<u32> = (0..500).collect();
        let before = lsm.lookup(&queries);
        let report = lsm.cleanup();
        let after = lsm.lookup(&queries);
        assert_eq!(before, after);
        assert_eq!(report.valid_elements, reference.len());
        // Answers also match the reference map.
        for (q, got) in queries.iter().zip(after.iter()) {
            assert_eq!(*got, reference.get(q).copied(), "key {q}");
        }
        // Levels cannot increase and usually shrink.
        assert!(report.levels_after <= report.levels_before || report.levels_before == 0);
    }

    #[test]
    fn cleanup_of_everything_deleted_empties_structure() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        lsm.delete(&[1, 2, 3, 4]).unwrap();
        let report = lsm.cleanup();
        assert_eq!(report.valid_elements, 0);
        assert!(lsm.is_empty());
        assert_eq!(lsm.lookup(&[1, 2, 3, 4]), vec![None; 4]);
    }

    #[test]
    fn cleanup_reduces_memory_footprint() {
        let mut lsm = GpuLsm::new(device(), 8).unwrap();
        let pairs: Vec<(u32, u32)> = (0..8).map(|k| (k, k)).collect();
        for _ in 0..7 {
            lsm.insert(&pairs).unwrap(); // same keys re-inserted: all but last stale
        }
        let before = lsm.num_resident_elements();
        lsm.cleanup();
        assert!(lsm.num_resident_elements() < before);
        assert_eq!(lsm.num_resident_elements(), 8);
        assert_eq!(lsm.count(&[(0, 7)]), vec![8]);
    }

    #[test]
    fn repeated_cleanup_is_idempotent() {
        let mut lsm = GpuLsm::new(device(), 4).unwrap();
        lsm.insert(&[(1, 1), (2, 2), (3, 3), (4, 4)]).unwrap();
        lsm.delete(&[2]).unwrap();
        lsm.cleanup();
        let first = lsm.lookup(&[1, 2, 3, 4]);
        let report = lsm.cleanup();
        assert_eq!(report.removed_elements, report.placebos_added); // only placebos churn
        assert_eq!(lsm.lookup(&[1, 2, 3, 4]), first);
    }
}
