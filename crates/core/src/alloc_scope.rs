//! Thread-local marker for the carry-chain merge inner loop, so an external
//! counting allocator (the `alloc_free_merge` integration test) can assert
//! the steady-state merge path performs **zero heap allocations**: region
//! reservation recycles free-list spans and the merge writes straight into
//! them, so once every size class is warm nothing in the scope allocates.
//!
//! The flag is const-initialized (no lazy allocation on first access — the
//! observing allocator reads it on every allocation) and only meaningful on
//! the thread running the merge; the allocation-freedom claim is asserted
//! under a forced-sequential cutoff where the whole merge runs on one
//! thread.

use std::cell::Cell;

thread_local! {
    static MERGE_SCOPE: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is inside the carry-chain merge inner loop.
/// Read by external counting allocators; never alter behavior based on it.
pub fn merge_scope_active() -> bool {
    MERGE_SCOPE.with(Cell::get)
}

/// RAII guard marking the merge inner loop (reservation + merge-into).
/// Nested guards restore the outer state on drop.
pub(crate) struct MergeScopeGuard {
    prev: bool,
}

impl MergeScopeGuard {
    pub(crate) fn enter() -> Self {
        MergeScopeGuard {
            prev: MERGE_SCOPE.with(|c| c.replace(true)),
        }
    }
}

impl Drop for MergeScopeGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        MERGE_SCOPE.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_sets_and_restores_the_flag() {
        assert!(!merge_scope_active());
        {
            let _outer = MergeScopeGuard::enter();
            assert!(merge_scope_active());
            {
                let _inner = MergeScopeGuard::enter();
                assert!(merge_scope_active());
            }
            assert!(merge_scope_active(), "nested drop keeps the outer scope");
        }
        assert!(!merge_scope_active());
    }
}
