//! # gpu-lsm — a dynamic dictionary data structure for the (modelled) GPU
//!
//! This crate is the Rust reproduction of *GPU LSM: A Dynamic Dictionary
//! Data Structure for the GPU* (Ashkiani, Li, Farach-Colton, Amenta, Owens —
//! IPDPS 2018).  The GPU LSM combines the level structure of the
//! Log-Structured Merge tree with the COLA's sorted-array levels: updates
//! arrive in fixed-size batches of `b` key–value pairs, level `i` holds
//! exactly `b·2^i` elements and is either full or empty, and inserting a
//! batch is a binary-counter carry chain of stable merges.  Deletions insert
//! *tombstones*; queries (lookup, count, range) tolerate the resulting stale
//! elements, and a [`GpuLsm::cleanup`] pass removes them.
//!
//! All bulk work is expressed with the primitives of [`gpu_primitives`]
//! (radix sort, merge, scan, segmented sort, compaction, multisplit) running
//! on the [`gpu_sim`] substrate, mirroring the paper's use of CUB and
//! moderngpu on a Tesla K40c.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use gpu_sim::Device;
//! use gpu_lsm::{GpuLsm, UpdateBatch};
//!
//! let device = Arc::new(Device::k40c());
//! let mut lsm = GpuLsm::new(device, 1024).unwrap();
//!
//! // Insert one full batch of key–value pairs.
//! let pairs: Vec<(u32, u32)> = (0..1024).map(|k| (k, k * 10)).collect();
//! lsm.insert(&pairs).unwrap();
//!
//! // Point lookups.
//! let results = lsm.lookup(&[5, 2000]);
//! assert_eq!(results, vec![Some(50), None]);
//!
//! // Delete a key (tombstone) and look it up again.
//! let mut batch = UpdateBatch::new();
//! batch.delete(5);
//! lsm.update(&batch).unwrap();
//! assert_eq!(lsm.lookup(&[5]), vec![None]);
//!
//! // Count and range queries.
//! assert_eq!(lsm.count(&[(0, 9)]), vec![9]); // key 5 deleted
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod alloc_scope;
pub mod arena;
pub mod batch;
pub mod cleanup;
pub mod compaction;
pub mod concurrent;
pub mod config;
pub mod count;
pub mod error;
pub mod key;
pub mod latency;
pub mod level;
pub mod lookup;
pub mod lsm;
pub mod order;
pub mod range;
pub mod router;
pub mod shard;
pub mod stats;
pub mod validate;
pub mod vfs;
pub mod wal;

pub use admission::{AdmissionConfig, AdmissionLatencyStats, AdmissionStats, AdmittedLsm};
pub use arena::{Arena, ArenaRegion, ArenaStats, RegionSpan};
pub use batch::{Op, UpdateBatch};
pub use cleanup::CleanupReport;
pub use compaction::CompactionPlan;
pub use concurrent::ConcurrentGpuLsm;
pub use config::{LsmConfig, RebalanceConfig};
pub use error::{LsmError, Result};
pub use key::{Entry, Key, Value, MAX_KEY};
pub use latency::{LatencyHistogram, LatencySnapshot};
pub use lsm::GpuLsm;
pub use range::RangeResult;
pub use router::{RouterKind, ShardRouter, SubQuery};
pub use shard::{RebalanceAction, ShardedLsm, ShardedStats};
pub use stats::{LsmStats, MergeCounters};
pub use vfs::{Fault, FaultKind, FaultOp, FaultVfs, RealVfs, Vfs, VfsFile};
pub use wal::{DegradeMode, DurabilityConfig, DurabilityStats, RecoveryReport, RetryPolicy};
