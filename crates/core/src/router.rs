//! Key-range routing for the sharded LSM service.
//!
//! The 31-bit key domain is partitioned into `N` contiguous ranges.  Two
//! partition shapes are supported:
//!
//! * **Uniform** (the original mask router): `N` equal ranges for a
//!   power-of-two `N`; shard `s` owns `[s · 2^(31-log2 N),
//!   (s+1) · 2^(31-log2 N) − 1]` and routing is a single shift.
//! * **Learned**: an ordered array of `N − 1` split-point keys fitted from
//!   observed data (fence samples of the resident levels plus recent batch
//!   keys); shard `s` owns `[boundary[s-1], boundary[s] − 1]` and routing is
//!   a binary search over the boundaries.  This is what lets a zipfian
//!   workload spread its hot range across shards instead of melting one.
//!
//! Range partitioning — rather than hashing — preserves the *global* key
//! order across shards, which is what keeps `count` answers summable and
//! `range` answers concatenable in shard order (see
//! [`crate::shard::ShardedLsm`]).
//!
//! Routing an update batch is a stable `N`-bucket multisplit over the
//! operations: one counting pass over the shard ids, an exclusive scan of
//! the per-shard counts, and an order-preserving scatter — the same
//! histogram/scan/scatter structure as the multisplit primitive the cleanup
//! uses, specialised to the routing function.  Stability matters: the
//! paper's within-batch semantics (rules 4 and 6 of §III-A) are
//! order-dependent, and every same-key operation routes to the same shard,
//! so a stable split preserves them exactly.

use crate::batch::UpdateBatch;
use crate::error::{LsmError, Result};
use crate::key::{Key, MAX_KEY};

/// Which partition shape a [`ShardRouter`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Equal power-of-two ranges; routing is `key >> shift`.
    Uniform,
    /// Learned split points; routing is a binary search over the boundaries.
    Learned,
}

/// The internal partition representation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Partition {
    /// Right-shift that maps a key to its shard index: `31 - log2(N)`.
    Uniform { shift: u32 },
    /// Strictly increasing interior boundaries; shard `s` starts at
    /// `boundaries[s - 1]` (shard 0 starts at key 0).
    Learned { boundaries: Vec<Key> },
}

/// Routes keys, update batches and interval queries to key-range shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
    partition: Partition,
}

/// One clamped sub-interval of a cross-shard query: the target shard, the
/// originating query index, and the query bounds restricted to that shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubQuery {
    /// Index of the shard this piece routes to.
    pub shard: usize,
    /// Index of the original query in the caller's batch.
    pub query: usize,
    /// Lower bound, clamped into the shard's key range.
    pub lo: Key,
    /// Upper bound, clamped into the shard's key range.
    pub hi: Key,
}

impl ShardRouter {
    /// Create a uniform router over `num_shards` key-range shards.  The
    /// shard count must be a power of two between 1 and 2³¹ so ranges
    /// divide evenly.
    pub fn new(num_shards: usize) -> Result<Self> {
        if num_shards == 0 || !num_shards.is_power_of_two() || num_shards > 1 << 31 {
            return Err(LsmError::InvalidShardCount { num_shards });
        }
        Ok(ShardRouter {
            num_shards,
            partition: Partition::Uniform {
                shift: 31 - num_shards.trailing_zeros(),
            },
        })
    }

    /// Create a learned router from `N − 1` interior split points.  Shard
    /// `s` owns `[boundaries[s-1], boundaries[s] − 1]` (shard 0 starts at
    /// key 0, the last shard ends at [`MAX_KEY`]).  Boundaries must be
    /// strictly increasing keys in `1..=MAX_KEY`; an empty vector yields a
    /// single shard owning the whole domain.  Any shard count — not just
    /// powers of two — is representable.
    pub fn learned(boundaries: Vec<Key>) -> Result<Self> {
        for (i, &b) in boundaries.iter().enumerate() {
            if b == 0 || b > MAX_KEY {
                return Err(LsmError::InvalidSplitPoints {
                    reason: format!("boundary {b} is outside 1..=MAX_KEY"),
                });
            }
            if i > 0 && boundaries[i - 1] >= b {
                return Err(LsmError::InvalidSplitPoints {
                    reason: format!(
                        "boundaries must be strictly increasing, got {} then {b}",
                        boundaries[i - 1]
                    ),
                });
            }
        }
        Ok(ShardRouter {
            num_shards: boundaries.len() + 1,
            partition: Partition::Learned { boundaries },
        })
    }

    /// Fit a learned router with `num_shards` shards from a key sample:
    /// boundaries are placed at the sample's quantiles so each shard sees
    /// roughly the same number of sampled keys.  Duplicate quantiles (heavy
    /// hitters) are nudged upward to keep boundaries strictly increasing;
    /// if the sample has too few distinct keys for `num_shards` ranges the
    /// router degrades to fewer shards rather than failing.
    pub fn fit(num_shards: usize, sample: &[Key]) -> Result<Self> {
        if num_shards == 0 {
            return Err(LsmError::InvalidShardCount { num_shards });
        }
        let mut keys: Vec<Key> = sample.iter().map(|&k| k.min(MAX_KEY)).collect();
        keys.sort_unstable();
        let mut boundaries = Vec::with_capacity(num_shards.saturating_sub(1));
        for q in 1..num_shards {
            if keys.is_empty() {
                break;
            }
            let idx = (q * keys.len()) / num_shards;
            let candidate = keys[idx.min(keys.len() - 1)].max(1);
            // Nudge past the previous boundary so ranges stay non-empty.
            let candidate = match boundaries.last() {
                Some(&prev) if candidate <= prev => prev + 1,
                _ => candidate,
            };
            if candidate > MAX_KEY {
                break;
            }
            boundaries.push(candidate);
        }
        ShardRouter::learned(boundaries)
    }

    /// Which partition shape this router uses.
    pub fn kind(&self) -> RouterKind {
        match self.partition {
            Partition::Uniform { .. } => RouterKind::Uniform,
            Partition::Learned { .. } => RouterKind::Learned,
        }
    }

    /// Number of shards this router partitions the key domain into.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `key`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        debug_assert!(key <= MAX_KEY);
        match &self.partition {
            Partition::Uniform { shift } => (key >> shift) as usize,
            Partition::Learned { boundaries } => boundaries.partition_point(|&b| b <= key),
        }
    }

    /// The inclusive key range `[lo, hi]` owned by shard `s`.
    pub fn shard_bounds(&self, s: usize) -> (Key, Key) {
        debug_assert!(s < self.num_shards);
        match &self.partition {
            Partition::Uniform { shift } => {
                let lo = (s as u64) << shift;
                let hi = ((s as u64 + 1) << shift) - 1;
                (lo as Key, hi as Key)
            }
            Partition::Learned { boundaries } => {
                let lo = if s == 0 { 0 } else { boundaries[s - 1] };
                let hi = if s + 1 == self.num_shards {
                    MAX_KEY
                } else {
                    boundaries[s] - 1
                };
                (lo, hi)
            }
        }
    }

    /// The `N − 1` interior split points: the smallest key of every shard
    /// except shard 0.  Useful for boundary-straddling tests and for
    /// reporting the partition.
    pub fn split_points(&self) -> Vec<Key> {
        match &self.partition {
            Partition::Uniform { .. } => (1..self.num_shards)
                .map(|s| self.shard_bounds(s).0)
                .collect(),
            Partition::Learned { boundaries } => boundaries.clone(),
        }
    }

    /// A router identical to this one except that shard `s` is split in two
    /// at `key`: the left half keeps `[lo, key − 1]`, the right half gets
    /// `[key, hi]`.  `key` must lie strictly inside shard `s`'s range.
    /// The result is always a learned router.
    pub fn with_split(&self, s: usize, key: Key) -> Result<Self> {
        if s >= self.num_shards {
            return Err(LsmError::InvalidRebalance {
                reason: format!("shard {s} out of range for {} shards", self.num_shards),
            });
        }
        let (lo, hi) = self.shard_bounds(s);
        if key <= lo || key > hi {
            return Err(LsmError::InvalidRebalance {
                reason: format!("split key {key} is not strictly inside shard {s} ({lo}..={hi})"),
            });
        }
        let mut boundaries = self.split_points();
        boundaries.insert(s, key);
        ShardRouter::learned(boundaries)
    }

    /// A router identical to this one except that shards `s` and `s + 1`
    /// are merged into one range.  The result is always a learned router.
    pub fn with_merge(&self, s: usize) -> Result<Self> {
        if self.num_shards < 2 || s + 1 >= self.num_shards {
            return Err(LsmError::InvalidRebalance {
                reason: format!(
                    "cannot merge shards {s} and {} of {}",
                    s + 1,
                    self.num_shards
                ),
            });
        }
        let mut boundaries = self.split_points();
        boundaries.remove(s);
        ShardRouter::learned(boundaries)
    }

    /// Stable multisplit of an update batch into one (possibly empty)
    /// sub-batch per shard.  The relative order of operations within each
    /// shard is the order they were pushed, so per-batch semantics are
    /// preserved shard-locally.
    ///
    /// The caller is expected to have validated keys (≤ [`MAX_KEY`]);
    /// this routine only routes.
    pub fn split_updates(&self, batch: &UpdateBatch) -> Vec<UpdateBatch> {
        let ops = batch.ops();
        if self.num_shards == 1 {
            return vec![batch.clone()];
        }
        // Pass 1: shard ids + histogram.
        let mut counts = vec![0usize; self.num_shards];
        let shard_ids: Vec<usize> = ops
            .iter()
            .map(|op| {
                let s = self.shard_of(op.key());
                counts[s] += 1;
                s
            })
            .collect();
        // Allocate exactly; scatter in order (stable by construction:
        // operations are visited in batch order and appended).
        let mut out: Vec<UpdateBatch> = counts
            .iter()
            .map(|&c| UpdateBatch::with_capacity(c))
            .collect();
        for (op, &s) in ops.iter().zip(shard_ids.iter()) {
            out[s].push(*op);
        }
        out
    }

    /// Split point-lookup keys by shard, remembering each key's position in
    /// the input so answers can be reassembled in input order.  Returns, per
    /// shard, the routed keys and their original positions (both in input
    /// order, preserving duplicates).
    pub fn split_lookups(&self, queries: &[Key]) -> Vec<(Vec<Key>, Vec<usize>)> {
        let mut out: Vec<(Vec<Key>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); self.num_shards];
        for (i, &q) in queries.iter().enumerate() {
            let s = self.shard_of(q.min(MAX_KEY));
            out[s].0.push(q);
            out[s].1.push(i);
        }
        out
    }

    /// Decompose interval queries `(k1, k2)` into per-shard sub-queries.
    ///
    /// * Inverted bounds (`k1 > k2`) produce no sub-queries (the query is
    ///   empty by definition).
    /// * Bounds above [`MAX_KEY`] are clamped to it — no stored key can
    ///   exceed the 31-bit domain, so the clamp never changes an answer.
    /// * A query spanning `k` shards contributes `k` sub-queries, each
    ///   clamped to its shard's range; sub-queries are emitted query-major,
    ///   shard-ascending, so concatenating a query's per-shard answers in
    ///   emission order yields a globally key-sorted result.
    pub fn split_intervals(&self, queries: &[(Key, Key)]) -> Vec<SubQuery> {
        let mut out = Vec::with_capacity(queries.len());
        for (qi, &(k1, k2)) in queries.iter().enumerate() {
            let k2 = k2.min(MAX_KEY);
            if k1 > k2 {
                continue;
            }
            let first = self.shard_of(k1);
            let last = self.shard_of(k2);
            for s in first..=last {
                let (lo, hi) = self.shard_bounds(s);
                out.push(SubQuery {
                    shard: s,
                    query: qi,
                    lo: k1.max(lo),
                    hi: k2.min(hi),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Op;

    #[test]
    fn rejects_non_power_of_two_shard_counts() {
        for bad in [0usize, 3, 6, 12, 100] {
            assert_eq!(
                ShardRouter::new(bad).unwrap_err(),
                LsmError::InvalidShardCount { num_shards: bad }
            );
        }
        for good in [1usize, 2, 4, 8, 1 << 10] {
            assert!(ShardRouter::new(good).is_ok());
        }
    }

    #[test]
    fn single_shard_owns_the_whole_domain() {
        let r = ShardRouter::new(1).unwrap();
        assert_eq!(r.kind(), RouterKind::Uniform);
        assert_eq!(r.shard_bounds(0), (0, MAX_KEY));
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(MAX_KEY), 0);
        assert!(r.split_points().is_empty());
    }

    #[test]
    fn shard_bounds_tile_the_domain_exactly() {
        for n in [2usize, 4, 8, 64] {
            let r = ShardRouter::new(n).unwrap();
            let mut expected_lo = 0u32;
            for s in 0..n {
                let (lo, hi) = r.shard_bounds(s);
                assert_eq!(lo, expected_lo, "{n} shards, shard {s}");
                assert_eq!(r.shard_of(lo), s);
                assert_eq!(r.shard_of(hi), s);
                if s + 1 < n {
                    assert_eq!(r.shard_of(hi + 1), s + 1);
                }
                expected_lo = hi.wrapping_add(1);
            }
            assert_eq!(r.shard_bounds(n - 1).1, MAX_KEY);
            assert_eq!(r.split_points().len(), n - 1);
        }
    }

    #[test]
    fn learned_router_validates_boundaries() {
        assert!(matches!(
            ShardRouter::learned(vec![0]).unwrap_err(),
            LsmError::InvalidSplitPoints { .. }
        ));
        assert!(matches!(
            ShardRouter::learned(vec![MAX_KEY + 1]).unwrap_err(),
            LsmError::InvalidSplitPoints { .. }
        ));
        assert!(matches!(
            ShardRouter::learned(vec![10, 10]).unwrap_err(),
            LsmError::InvalidSplitPoints { .. }
        ));
        assert!(matches!(
            ShardRouter::learned(vec![20, 10]).unwrap_err(),
            LsmError::InvalidSplitPoints { .. }
        ));
        let r = ShardRouter::learned(vec![100, 2000, 30000]).unwrap();
        assert_eq!(r.kind(), RouterKind::Learned);
        assert_eq!(r.num_shards(), 4);
        // Non-power-of-two counts are fine for learned routers.
        assert_eq!(ShardRouter::learned(vec![5, 9]).unwrap().num_shards(), 3);
    }

    #[test]
    fn learned_bounds_tile_the_domain_exactly() {
        let r = ShardRouter::learned(vec![100, 2000, 30000]).unwrap();
        assert_eq!(r.shard_bounds(0), (0, 99));
        assert_eq!(r.shard_bounds(1), (100, 1999));
        assert_eq!(r.shard_bounds(2), (2000, 29999));
        assert_eq!(r.shard_bounds(3), (30000, MAX_KEY));
        assert_eq!(r.split_points(), vec![100, 2000, 30000]);
        let mut expected_lo = 0u32;
        for s in 0..4 {
            let (lo, hi) = r.shard_bounds(s);
            assert_eq!(lo, expected_lo);
            assert_eq!(r.shard_of(lo), s);
            assert_eq!(r.shard_of(hi), s);
            expected_lo = hi.wrapping_add(1);
        }
    }

    #[test]
    fn fit_places_boundaries_at_sample_quantiles() {
        // A skewed sample: most keys tiny, a few huge.
        let mut sample: Vec<u32> = (0..900u32).collect();
        sample.extend((0..100).map(|i| (1 << 30) + i));
        let r = ShardRouter::fit(4, &sample).unwrap();
        assert_eq!(r.num_shards(), 4);
        // All boundaries land inside the dense low region, unlike the
        // uniform router whose first split point would be 2^29.
        for b in r.split_points() {
            assert!(b < 1000, "boundary {b} should be in the dense region");
        }
        // Degenerate sample: still a valid router, possibly fewer shards.
        let r = ShardRouter::fit(8, &[42; 100]).unwrap();
        assert!(r.num_shards() <= 8);
        assert!(ShardRouter::fit(4, &[]).unwrap().num_shards() >= 1);
        // Heavy duplicate sample: boundaries get nudged but stay valid.
        let r = ShardRouter::fit(4, &[7; 1000]).unwrap();
        let pts = r.split_points();
        for w in pts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn split_and_merge_produce_adjacent_ranges() {
        let r = ShardRouter::new(4).unwrap();
        let (lo, hi) = r.shard_bounds(2);
        let mid = lo + (hi - lo) / 2 + 1;
        let split = r.with_split(2, mid).unwrap();
        assert_eq!(split.num_shards(), 5);
        assert_eq!(split.kind(), RouterKind::Learned);
        assert_eq!(split.shard_bounds(2), (lo, mid - 1));
        assert_eq!(split.shard_bounds(3), (mid, hi));
        // Shards outside the split keep their ranges.
        assert_eq!(split.shard_bounds(0), r.shard_bounds(0));
        assert_eq!(split.shard_bounds(4), r.shard_bounds(3));
        // Merging the two halves back restores the original partition.
        let merged = split.with_merge(2).unwrap();
        assert_eq!(merged.num_shards(), 4);
        for s in 0..4 {
            assert_eq!(merged.shard_bounds(s), r.shard_bounds(s));
        }
        // Invalid requests are rejected.
        assert!(r.with_split(9, 1).is_err());
        assert!(r.with_split(2, lo).is_err());
        assert!(r.with_merge(3).is_err());
        assert!(ShardRouter::new(1).unwrap().with_merge(0).is_err());
    }

    #[test]
    fn split_updates_is_a_stable_partition() {
        let r = ShardRouter::new(4).unwrap();
        let quarter = 1u32 << 29;
        let mut batch = UpdateBatch::new();
        batch
            .insert(3 * quarter, 1) // shard 3
            .insert(1, 2) // shard 0
            .delete(3 * quarter + 5) // shard 3
            .insert(2, 3) // shard 0
            .delete(1); // shard 0
        let parts = r.split_updates(&batch);
        assert_eq!(parts.len(), 4);
        assert_eq!(
            parts[0].ops(),
            &[Op::Insert(1, 2), Op::Insert(2, 3), Op::Delete(1)]
        );
        assert!(parts[1].is_empty());
        assert!(parts[2].is_empty());
        assert_eq!(
            parts[3].ops(),
            &[Op::Insert(3 * quarter, 1), Op::Delete(3 * quarter + 5)]
        );
        // Total operations conserved.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, batch.len());
    }

    #[test]
    fn learned_split_updates_routes_by_boundaries() {
        let r = ShardRouter::learned(vec![10, 100]).unwrap();
        let mut batch = UpdateBatch::new();
        batch
            .insert(9, 1) // shard 0
            .insert(10, 2) // shard 1
            .delete(99) // shard 1
            .insert(100, 3) // shard 2
            .insert(0, 4); // shard 0
        let parts = r.split_updates(&batch);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].ops(), &[Op::Insert(9, 1), Op::Insert(0, 4)]);
        assert_eq!(parts[1].ops(), &[Op::Insert(10, 2), Op::Delete(99)]);
        assert_eq!(parts[2].ops(), &[Op::Insert(100, 3)]);
    }

    #[test]
    fn split_lookups_remembers_positions() {
        let r = ShardRouter::new(2).unwrap();
        let half = 1u32 << 30;
        let queries = [half + 1, 0, half + 2, 7];
        let parts = r.split_lookups(&queries);
        assert_eq!(parts[0].0, vec![0, 7]);
        assert_eq!(parts[0].1, vec![1, 3]);
        assert_eq!(parts[1].0, vec![half + 1, half + 2]);
        assert_eq!(parts[1].1, vec![0, 2]);
    }

    #[test]
    fn split_intervals_clamps_and_orders() {
        let r = ShardRouter::new(4).unwrap();
        let q = 1u32 << 29; // shard width
        let subs = r.split_intervals(&[(q - 10, 2 * q + 5), (5, 2), (0, u32::MAX)]);
        // Query 0 spans shards 0, 1 and 2.
        assert_eq!(
            &subs[..3],
            &[
                SubQuery {
                    shard: 0,
                    query: 0,
                    lo: q - 10,
                    hi: q - 1
                },
                SubQuery {
                    shard: 1,
                    query: 0,
                    lo: q,
                    hi: 2 * q - 1
                },
                SubQuery {
                    shard: 2,
                    query: 0,
                    lo: 2 * q,
                    hi: 2 * q + 5
                },
            ]
        );
        // Query 1 is inverted: contributes nothing.  Query 2 is clamped to
        // the domain and spans all four shards.
        assert_eq!(subs.len(), 3 + 4);
        for (i, sub) in subs[3..].iter().enumerate() {
            assert_eq!(sub.query, 2);
            assert_eq!(sub.shard, i);
            assert_eq!((sub.lo, sub.hi), r.shard_bounds(i));
        }
    }

    #[test]
    fn interval_on_a_single_shard_stays_unsplit() {
        let r = ShardRouter::new(8).unwrap();
        let (lo, hi) = r.shard_bounds(5);
        let subs = r.split_intervals(&[(lo + 1, hi - 1)]);
        assert_eq!(
            subs,
            vec![SubQuery {
                shard: 5,
                query: 0,
                lo: lo + 1,
                hi: hi - 1
            }]
        );
    }
}
