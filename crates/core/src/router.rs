//! Key-range routing for the sharded LSM service.
//!
//! The 31-bit key domain is partitioned into `N` equal, contiguous ranges
//! (`N` a power of two): shard `s` owns `[s · 2^(31-log2 N),
//! (s+1) · 2^(31-log2 N) − 1]`.  Range partitioning — rather than hashing —
//! preserves the *global* key order across shards, which is what keeps
//! `count` answers summable and `range` answers concatenable in shard order
//! (see [`crate::shard::ShardedLsm`]).
//!
//! Routing an update batch is a stable `N`-bucket multisplit over the
//! operations: one counting pass over the shard ids, an exclusive scan of
//! the per-shard counts, and an order-preserving scatter — the same
//! histogram/scan/scatter structure as the multisplit primitive the cleanup
//! uses, specialised to the power-of-two bucket function `key >> shift`.
//! Stability matters: the paper's within-batch semantics (rules 4 and 6 of
//! §III-A) are order-dependent, and every same-key operation routes to the
//! same shard, so a stable split preserves them exactly.

use crate::batch::UpdateBatch;
use crate::error::{LsmError, Result};
use crate::key::{Key, MAX_KEY};

/// Routes keys, update batches and interval queries to key-range shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
    /// Right-shift that maps a key to its shard index: `31 - log2(N)`.
    shift: u32,
}

/// One clamped sub-interval of a cross-shard query: the target shard, the
/// originating query index, and the query bounds restricted to that shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubQuery {
    /// Index of the shard this piece routes to.
    pub shard: usize,
    /// Index of the original query in the caller's batch.
    pub query: usize,
    /// Lower bound, clamped into the shard's key range.
    pub lo: Key,
    /// Upper bound, clamped into the shard's key range.
    pub hi: Key,
}

impl ShardRouter {
    /// Create a router over `num_shards` key-range shards.  The shard count
    /// must be a power of two between 1 and 2³¹ so ranges divide evenly.
    pub fn new(num_shards: usize) -> Result<Self> {
        if num_shards == 0 || !num_shards.is_power_of_two() || num_shards > 1 << 31 {
            return Err(LsmError::InvalidShardCount { num_shards });
        }
        Ok(ShardRouter {
            num_shards,
            shift: 31 - num_shards.trailing_zeros(),
        })
    }

    /// Number of shards this router partitions the key domain into.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `key`.
    #[inline]
    pub fn shard_of(&self, key: Key) -> usize {
        debug_assert!(key <= MAX_KEY);
        (key >> self.shift) as usize
    }

    /// The inclusive key range `[lo, hi]` owned by shard `s`.
    pub fn shard_bounds(&self, s: usize) -> (Key, Key) {
        debug_assert!(s < self.num_shards);
        let lo = (s as u64) << self.shift;
        let hi = ((s as u64 + 1) << self.shift) - 1;
        (lo as Key, hi as Key)
    }

    /// The `N − 1` interior split points: the smallest key of every shard
    /// except shard 0.  Useful for boundary-straddling tests and for
    /// reporting the partition.
    pub fn split_points(&self) -> Vec<Key> {
        (1..self.num_shards)
            .map(|s| self.shard_bounds(s).0)
            .collect()
    }

    /// Stable multisplit of an update batch into one (possibly empty)
    /// sub-batch per shard.  The relative order of operations within each
    /// shard is the order they were pushed, so per-batch semantics are
    /// preserved shard-locally.
    ///
    /// The caller is expected to have validated keys (≤ [`MAX_KEY`]);
    /// this routine only routes.
    pub fn split_updates(&self, batch: &UpdateBatch) -> Vec<UpdateBatch> {
        let ops = batch.ops();
        if self.num_shards == 1 {
            return vec![batch.clone()];
        }
        // Pass 1: shard ids + histogram.
        let mut counts = vec![0usize; self.num_shards];
        let shard_ids: Vec<usize> = ops
            .iter()
            .map(|op| {
                let s = self.shard_of(op.key());
                counts[s] += 1;
                s
            })
            .collect();
        // Allocate exactly; scatter in order (stable by construction:
        // operations are visited in batch order and appended).
        let mut out: Vec<UpdateBatch> = counts
            .iter()
            .map(|&c| UpdateBatch::with_capacity(c))
            .collect();
        for (op, &s) in ops.iter().zip(shard_ids.iter()) {
            out[s].push(*op);
        }
        out
    }

    /// Split point-lookup keys by shard, remembering each key's position in
    /// the input so answers can be reassembled in input order.  Returns, per
    /// shard, the routed keys and their original positions (both in input
    /// order, preserving duplicates).
    pub fn split_lookups(&self, queries: &[Key]) -> Vec<(Vec<Key>, Vec<usize>)> {
        let mut out: Vec<(Vec<Key>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); self.num_shards];
        for (i, &q) in queries.iter().enumerate() {
            let s = self.shard_of(q.min(MAX_KEY));
            out[s].0.push(q);
            out[s].1.push(i);
        }
        out
    }

    /// Decompose interval queries `(k1, k2)` into per-shard sub-queries.
    ///
    /// * Inverted bounds (`k1 > k2`) produce no sub-queries (the query is
    ///   empty by definition).
    /// * Bounds above [`MAX_KEY`] are clamped to it — no stored key can
    ///   exceed the 31-bit domain, so the clamp never changes an answer.
    /// * A query spanning `k` shards contributes `k` sub-queries, each
    ///   clamped to its shard's range; sub-queries are emitted query-major,
    ///   shard-ascending, so concatenating a query's per-shard answers in
    ///   emission order yields a globally key-sorted result.
    pub fn split_intervals(&self, queries: &[(Key, Key)]) -> Vec<SubQuery> {
        let mut out = Vec::with_capacity(queries.len());
        for (qi, &(k1, k2)) in queries.iter().enumerate() {
            let k2 = k2.min(MAX_KEY);
            if k1 > k2 {
                continue;
            }
            let first = self.shard_of(k1);
            let last = self.shard_of(k2);
            for s in first..=last {
                let (lo, hi) = self.shard_bounds(s);
                out.push(SubQuery {
                    shard: s,
                    query: qi,
                    lo: k1.max(lo),
                    hi: k2.min(hi),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Op;

    #[test]
    fn rejects_non_power_of_two_shard_counts() {
        for bad in [0usize, 3, 6, 12, 100] {
            assert_eq!(
                ShardRouter::new(bad).unwrap_err(),
                LsmError::InvalidShardCount { num_shards: bad }
            );
        }
        for good in [1usize, 2, 4, 8, 1 << 10] {
            assert!(ShardRouter::new(good).is_ok());
        }
    }

    #[test]
    fn single_shard_owns_the_whole_domain() {
        let r = ShardRouter::new(1).unwrap();
        assert_eq!(r.shard_bounds(0), (0, MAX_KEY));
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of(MAX_KEY), 0);
        assert!(r.split_points().is_empty());
    }

    #[test]
    fn shard_bounds_tile_the_domain_exactly() {
        for n in [2usize, 4, 8, 64] {
            let r = ShardRouter::new(n).unwrap();
            let mut expected_lo = 0u32;
            for s in 0..n {
                let (lo, hi) = r.shard_bounds(s);
                assert_eq!(lo, expected_lo, "{n} shards, shard {s}");
                assert_eq!(r.shard_of(lo), s);
                assert_eq!(r.shard_of(hi), s);
                if s + 1 < n {
                    assert_eq!(r.shard_of(hi + 1), s + 1);
                }
                expected_lo = hi.wrapping_add(1);
            }
            assert_eq!(r.shard_bounds(n - 1).1, MAX_KEY);
            assert_eq!(r.split_points().len(), n - 1);
        }
    }

    #[test]
    fn split_updates_is_a_stable_partition() {
        let r = ShardRouter::new(4).unwrap();
        let quarter = 1u32 << 29;
        let mut batch = UpdateBatch::new();
        batch
            .insert(3 * quarter, 1) // shard 3
            .insert(1, 2) // shard 0
            .delete(3 * quarter + 5) // shard 3
            .insert(2, 3) // shard 0
            .delete(1); // shard 0
        let parts = r.split_updates(&batch);
        assert_eq!(parts.len(), 4);
        assert_eq!(
            parts[0].ops(),
            &[Op::Insert(1, 2), Op::Insert(2, 3), Op::Delete(1)]
        );
        assert!(parts[1].is_empty());
        assert!(parts[2].is_empty());
        assert_eq!(
            parts[3].ops(),
            &[Op::Insert(3 * quarter, 1), Op::Delete(3 * quarter + 5)]
        );
        // Total operations conserved.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, batch.len());
    }

    #[test]
    fn split_lookups_remembers_positions() {
        let r = ShardRouter::new(2).unwrap();
        let half = 1u32 << 30;
        let queries = [half + 1, 0, half + 2, 7];
        let parts = r.split_lookups(&queries);
        assert_eq!(parts[0].0, vec![0, 7]);
        assert_eq!(parts[0].1, vec![1, 3]);
        assert_eq!(parts[1].0, vec![half + 1, half + 2]);
        assert_eq!(parts[1].1, vec![0, 2]);
    }

    #[test]
    fn split_intervals_clamps_and_orders() {
        let r = ShardRouter::new(4).unwrap();
        let q = 1u32 << 29; // shard width
        let subs = r.split_intervals(&[(q - 10, 2 * q + 5), (5, 2), (0, u32::MAX)]);
        // Query 0 spans shards 0, 1 and 2.
        assert_eq!(
            &subs[..3],
            &[
                SubQuery {
                    shard: 0,
                    query: 0,
                    lo: q - 10,
                    hi: q - 1
                },
                SubQuery {
                    shard: 1,
                    query: 0,
                    lo: q,
                    hi: 2 * q - 1
                },
                SubQuery {
                    shard: 2,
                    query: 0,
                    lo: 2 * q,
                    hi: 2 * q + 5
                },
            ]
        );
        // Query 1 is inverted: contributes nothing.  Query 2 is clamped to
        // the domain and spans all four shards.
        assert_eq!(subs.len(), 3 + 4);
        for (i, sub) in subs[3..].iter().enumerate() {
            assert_eq!(sub.query, 2);
            assert_eq!(sub.shard, i);
            assert_eq!((sub.lo, sub.hi), r.shard_bounds(i));
        }
    }

    #[test]
    fn interval_on_a_single_shard_stays_unsplit() {
        let r = ShardRouter::new(8).unwrap();
        let (lo, hi) = r.shard_bounds(5);
        let subs = r.split_intervals(&[(lo + 1, hi - 1)]);
        assert_eq!(
            subs,
            vec![SubQuery {
                shard: 5,
                query: 0,
                lo: lo + 1,
                hi: hi - 1
            }]
        );
    }
}
