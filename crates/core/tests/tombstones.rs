//! Tombstone semantics for `count` and `range` (§III-A rules 2–3): deleted
//! keys must not be counted and must not appear in range results, stale
//! (shadowed) duplicates must be skipped, and delete-then-reinsert must
//! resurrect a key with its newest value — including when the carry chain
//! has merged the tombstone and both versions into the same level.

use std::sync::Arc;

use gpu_lsm::{GpuLsm, UpdateBatch};
use gpu_sim::{Device, DeviceConfig};

fn device() -> Arc<Device> {
    Arc::new(Device::new(DeviceConfig::small()))
}

/// Insert keys `0..b`, then delete the even ones: counts and ranges must
/// see exactly the odd keys.
#[test]
fn deleted_keys_are_not_counted_and_not_returned() {
    let b = 16u32;
    let mut lsm = GpuLsm::new(device(), b as usize).unwrap();
    let pairs: Vec<(u32, u32)> = (0..b).map(|k| (k, k + 100)).collect();
    lsm.insert(&pairs).unwrap();
    let evens: Vec<u32> = (0..b).filter(|k| k % 2 == 0).collect();
    lsm.delete(&evens).unwrap();
    lsm.check_invariants().unwrap();

    // Count over the whole domain and over a window that contains only
    // deleted keys' even endpoints.
    assert_eq!(lsm.count(&[(0, b - 1)]), vec![b / 2]);
    assert_eq!(lsm.count(&[(0, 0)]), vec![0], "deleted key must count 0");
    assert_eq!(lsm.count(&[(1, 1)]), vec![1]);

    // Range must return exactly the surviving odd keys with their values.
    let result = lsm.range(&[(0, b - 1)]);
    let got: Vec<(u32, u32)> = result.iter_query(0).collect();
    let expected: Vec<(u32, u32)> = (0..b)
        .filter(|k| k % 2 == 1)
        .map(|k| (k, k + 100))
        .collect();
    assert_eq!(got, expected);
}

/// A key deleted and later reinserted must reappear with the new value —
/// while the interleaved batches force carry-chain merges that put the
/// tombstone, the old version and the new version through shared levels.
#[test]
fn delete_then_reinsert_across_level_merges() {
    let b = 8usize;
    let target = 3u32;
    let mut lsm = GpuLsm::new(device(), b).unwrap();

    // Batch 1: insert the target among fillers.
    let mut batch = UpdateBatch::new();
    batch.insert(target, 1111);
    for k in 0..(b as u32 - 1) {
        batch.insert(1000 + k, k);
    }
    lsm.update(&batch).unwrap();

    // Batch 2: delete the target (levels 1+2 merge: r = 1 -> 10).
    let mut batch = UpdateBatch::new();
    batch.delete(target);
    for k in 0..(b as u32 - 1) {
        batch.insert(2000 + k, k);
    }
    lsm.update(&batch).unwrap();
    assert_eq!(lsm.lookup(&[target]), vec![None]);
    assert_eq!(lsm.count(&[(0, 999)]), vec![0]);
    assert!(lsm.range(&[(0, 999)]).is_empty(0));

    // Batch 3: reinsert the target with a new value (r = 10 -> 11).
    let mut batch = UpdateBatch::new();
    batch.insert(target, 2222);
    for k in 0..(b as u32 - 1) {
        batch.insert(3000 + k, k);
    }
    lsm.update(&batch).unwrap();

    // Batch 4 triggers the long carry 11 -> 100: tombstone, old and new
    // version all meet in one merged level.
    let filler: Vec<(u32, u32)> = (0..b as u32).map(|k| (4000 + k, k)).collect();
    lsm.insert(&filler).unwrap();
    lsm.check_invariants().unwrap();
    assert_eq!(
        lsm.num_occupied_levels(),
        1,
        "carry chain should leave one level"
    );

    assert_eq!(lsm.lookup(&[target]), vec![Some(2222)]);
    assert_eq!(
        lsm.count(&[(0, 999)]),
        vec![1],
        "reinserted key counts once"
    );
    assert_eq!(lsm.count(&[(target, target)]), vec![1]);
    let result = lsm.range(&[(0, 999)]);
    let got: Vec<(u32, u32)> = result.iter_query(0).collect();
    assert_eq!(
        got,
        vec![(target, 2222)],
        "range sees only the newest version"
    );
}

/// Count and range agree with a reference model under a randomized-looking
/// but fixed interleaving of inserts, deletes and reinserts, before and
/// after `cleanup()` physically removes the stale elements.
#[test]
fn counts_and_ranges_survive_cleanup_with_tombstones() {
    let b = 16usize;
    let mut lsm = GpuLsm::new(device(), b).unwrap();
    let mut reference = std::collections::BTreeMap::new();

    // Four batches over a small key domain: overwrite, delete, reinsert.
    let script: [Vec<(u32, Option<u32>)>; 4] = [
        (0..16).map(|k| (k, Some(k * 10))).collect(),
        (0..16)
            .map(|k| (k + 8, if k % 2 == 0 { None } else { Some(k) }))
            .collect(),
        (0..16)
            .map(|k| (k, if k < 8 { None } else { Some(7 * k) }))
            .collect(),
        (0..16).map(|k| (k + 4, Some(k + 500))).collect(),
    ];
    for ops in &script {
        let mut batch = UpdateBatch::new();
        for &(k, v) in ops {
            match v {
                Some(v) => batch.insert(k, v),
                None => batch.delete(k),
            };
            match v {
                Some(v) => {
                    reference.insert(k, v);
                }
                None => {
                    reference.remove(&k);
                }
            }
        }
        lsm.update(&batch).unwrap();
    }

    let intervals = [(0u32, 7u32), (8, 15), (16, 31), (0, 31)];
    let expect_count = |(lo, hi): (u32, u32)| reference.range(lo..=hi).count() as u32;
    let expect_range = |(lo, hi): (u32, u32)| -> Vec<(u32, u32)> {
        reference.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
    };

    for pass in 0..2 {
        let counts = lsm.count(&intervals);
        let ranges = lsm.range(&intervals);
        for (qi, &iv) in intervals.iter().enumerate() {
            assert_eq!(counts[qi], expect_count(iv), "count {iv:?} (pass {pass})");
            let got: Vec<(u32, u32)> = ranges.iter_query(qi).collect();
            assert_eq!(got, expect_range(iv), "range {iv:?} (pass {pass})");
        }
        if pass == 0 {
            lsm.cleanup();
            lsm.check_invariants().unwrap();
        }
    }
}
